//! Source-level determinism lint: race detection over parallel regions.
//!
//! For every `#pragma omp parallel for` / `parallel sections` region the
//! linter classifies each accessed variable as *private* (the index
//! variable and region locals), *shared* (globals), or *reduction*
//! (shared scalars only ever updated as `g = g op …`), then checks that
//! no two harts of the ordered team can touch the same shared location
//! with at least one write:
//!
//! - Shared-scalar writes two harts both reach are definite races
//!   (`LBP-S001`), with the reduction classification called out in the
//!   hint (LBP has no atomic reduction; the paper's idiom is a per-hart
//!   partial array folded sequentially — `examples/c/reduce.c`).
//! - Array subscripts are evaluated in an affine domain `a·t + b` over
//!   the member index `t` (interprocedurally: calls are inlined to a
//!   fixed depth with the argument's affine form bound to the
//!   parameter). A *definite* collision — concrete harts `t1 ≠ t2` with
//!   `a1·t1 + b1 = a2·t2 + b2` inside the team — is reported with the
//!   hart-pair witness: write/write as `LBP-S002`, write/read (a
//!   loop-carried dependence across members) as `LBP-S003`.
//! - Subscripts the affine domain cannot represent (loop-variant
//!   locals, products of the index) degrade to warnings (`LBP-S004`),
//!   never errors: the analysis only *rejects* what it can prove racy.
//! - Stores through pointers defeat the separation argument entirely
//!   and warn as `LBP-S005`.
//!
//! Diagnostics use the shared `lbp-diag-v1` vocabulary of `lbp-verify`,
//! so `--lint` and `--verify` reports compose.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use lbp_verify::{Diag, DiagCode, Severity};

use crate::ast::*;
use crate::sema::Checked;

/// Maximum interprocedural inline depth before a call is treated as
/// opaque (and warned about).
const MAX_INLINE_DEPTH: usize = 8;

/// Lints every parallel region of a checked unit. Returned diagnostics
/// follow the severity discipline above: errors are definite races with
/// witnesses, warnings mark what the analysis cannot prove.
pub fn lint_unit(cx: &Checked) -> Vec<Diag> {
    let mut diags = Vec::new();
    for f in &cx.unit.functions {
        lint_block(&f.body, cx, &mut diags);
    }
    diags
}

fn lint_block(stmts: &[Stmt], cx: &Checked, diags: &mut Vec<Diag>) {
    for s in stmts {
        match s {
            Stmt::ParallelFor {
                var,
                count,
                body,
                line,
            } => {
                let mut linter = Linter::new(cx);
                let mut env = Env::new();
                env.insert(var.clone(), Sub::Affine { a: 1, b: 0 });
                linter.declared.insert(var.clone());
                linter.walk_block(body, &mut env);
                let declared = std::mem::take(&mut linter.declared);
                let acc = linter.finish();
                report_region(
                    &format!("parallel for over `{var}`"),
                    *line,
                    *count,
                    std::slice::from_ref(&acc),
                    &declared,
                    diags,
                );
            }
            Stmt::ParallelSections { sections, line } => {
                let mut accs = Vec::new();
                let mut declared = BTreeSet::new();
                for body in sections {
                    let mut linter = Linter::new(cx);
                    let mut env = Env::new();
                    linter.walk_block(body, &mut env);
                    declared.extend(linter.declared.iter().cloned());
                    accs.push(linter.finish());
                }
                report_region(
                    "parallel sections",
                    *line,
                    accs.len() as i64,
                    &accs,
                    &declared,
                    diags,
                );
            }
            Stmt::If { then, els, .. } => {
                lint_block(then, cx, diags);
                lint_block(els, cx, diags);
            }
            Stmt::While { body, .. } => lint_block(body, cx, diags),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(i) = init.as_ref() {
                    lint_block(std::slice::from_ref(i), cx, diags);
                }
                if let Some(st) = step.as_ref() {
                    lint_block(std::slice::from_ref(st), cx, diags);
                }
                lint_block(body, cx, diags);
            }
            _ => {}
        }
    }
}

/// A symbolic subscript: affine in the member index `t`, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sub {
    /// `a·t + b`.
    Affine { a: i64, b: i64 },
    /// Not representable in the affine domain.
    Unknown,
}

impl Sub {
    const fn constant(v: i64) -> Sub {
        Sub::Affine { a: 0, b: v }
    }

    fn map2(self, other: Sub, f: impl Fn(i64, i64) -> Option<i64>) -> Sub {
        match (self, other) {
            (Sub::Affine { a: a1, b: b1 }, Sub::Affine { a: a2, b: b2 }) => {
                match (f(a1, a2), f(b1, b2)) {
                    (Some(a), Some(b)) => Sub::Affine { a, b },
                    _ => Sub::Unknown,
                }
            }
            _ => Sub::Unknown,
        }
    }
}

type Env = HashMap<String, Sub>;

/// One recorded shared-memory access inside a region.
#[derive(Debug, Clone)]
struct Access {
    sub: Sub,
    line: usize,
}

/// Everything one hart (one `parallel for` body, or one section) does to
/// shared state.
#[derive(Debug, Default, Clone)]
struct Accesses {
    /// Shared scalar name → (read lines, write lines, all-reduction?).
    scalars: BTreeMap<String, ScalarUse>,
    /// Shared array name → accesses.
    array_reads: BTreeMap<String, Vec<Access>>,
    array_writes: BTreeMap<String, Vec<Access>>,
    /// Lines with loads/stores through pointers.
    pointer_stores: Vec<usize>,
    pointer_loads: Vec<usize>,
    /// Calls the inliner gave up on: (callee, line).
    opaque_calls: Vec<(String, usize)>,
}

#[derive(Debug, Default, Clone)]
struct ScalarUse {
    reads: Vec<usize>,
    writes: Vec<usize>,
    /// True while every write so far has the reduction shape
    /// `g = g op …` with one commutative operator.
    reduction: bool,
    reduction_op: Option<BinOp>,
}

/// The per-region walker: evaluates expressions in the affine domain and
/// records shared accesses, inlining calls.
struct Linter<'a> {
    cx: &'a Checked,
    acc: Accesses,
    /// Names declared private in the region body itself (for the
    /// classification note).
    declared: BTreeSet<String>,
    /// Inline stack (callee names), for recursion detection.
    stack: Vec<String>,
    /// Local-array names (private per hart) per frame; flat set is fine
    /// because sema enforces unique locals per scope.
    local_arrays: BTreeSet<String>,
    /// Return-value collector frames for inlined calls.
    returns: Vec<Vec<Sub>>,
}

impl<'a> Linter<'a> {
    fn new(cx: &'a Checked) -> Linter<'a> {
        Linter {
            cx,
            acc: Accesses::default(),
            declared: BTreeSet::new(),
            stack: Vec::new(),
            local_arrays: BTreeSet::new(),
            returns: Vec::new(),
        }
    }

    fn finish(self) -> Accesses {
        self.acc
    }

    fn is_shared_array(&self, name: &str, env: &Env) -> bool {
        !env.contains_key(name)
            && !self.local_arrays.contains(name)
            && self.cx.globals.get(name) == Some(&true)
    }

    fn is_shared_scalar(&self, name: &str, env: &Env) -> bool {
        !env.contains_key(name)
            && !self.local_arrays.contains(name)
            && self.cx.globals.get(name) == Some(&false)
    }

    fn walk_block(&mut self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            self.walk_stmt(s, env);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, env: &mut Env) {
        match s {
            Stmt::Decl { name, init, line } => {
                let v = init
                    .as_ref()
                    .map(|e| self.eval(e, env, *line))
                    .unwrap_or(Sub::Unknown);
                env.insert(name.clone(), v);
                if self.stack.is_empty() {
                    self.declared.insert(name.clone());
                }
            }
            Stmt::DeclArray { name, .. } => {
                self.local_arrays.insert(name.clone());
                if self.stack.is_empty() {
                    self.declared.insert(name.clone());
                }
            }
            Stmt::Assign { lhs, rhs, line } => {
                let v = self.eval(rhs, env, *line);
                match lhs {
                    Place::Var(name) => {
                        if env.contains_key(name) {
                            env.insert(name.clone(), v);
                        } else if self.is_shared_scalar(name, env) {
                            self.record_scalar_write(name, rhs, *line);
                        }
                    }
                    Place::Index(name, idx) => {
                        let isub = self.eval(idx, env, *line);
                        if self.is_shared_array(name, env) {
                            self.acc
                                .array_writes
                                .entry(name.clone())
                                .or_default()
                                .push(Access {
                                    sub: isub,
                                    line: *line,
                                });
                        } else if !self.local_arrays.contains(name) && env.contains_key(name) {
                            // Indexing a pointer-valued local/param: the
                            // separation argument cannot see the target.
                            self.acc.pointer_stores.push(*line);
                        }
                    }
                    Place::Deref(e) => {
                        self.eval(e, env, *line);
                        self.acc.pointer_stores.push(*line);
                    }
                }
            }
            Stmt::Expr(e, line) => {
                self.eval(e, env, *line);
            }
            Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                self.eval(cond, env, *line);
                let mut env_then = env.clone();
                let mut env_els = env.clone();
                self.walk_block(then, &mut env_then);
                self.walk_block(els, &mut env_els);
                // Join: keep only bindings both branches agree on.
                for (name, v) in env.iter_mut() {
                    let a = env_then.get(name).copied().unwrap_or(Sub::Unknown);
                    let b = env_els.get(name).copied().unwrap_or(Sub::Unknown);
                    *v = if a == b { a } else { Sub::Unknown };
                }
            }
            Stmt::While { cond, body, line } => {
                invalidate_assigned(body, env);
                self.eval(cond, env, *line);
                let mut benv = env.clone();
                self.walk_block(body, &mut benv);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init.as_ref() {
                    self.walk_stmt(i, env);
                }
                // Anything written by the body or step is loop-variant:
                // its affine form (if any) only holds for the first
                // iteration, so degrade it to Unknown before analyzing.
                invalidate_assigned(body, env);
                if let Some(st) = step.as_ref() {
                    invalidate_assigned(std::slice::from_ref(st), env);
                }
                if let Some(c) = cond {
                    self.eval(c, env, *line);
                }
                let mut benv = env.clone();
                self.walk_block(body, &mut benv);
                if let Some(st) = step.as_ref() {
                    self.walk_stmt(st, &mut benv);
                }
            }
            Stmt::Return(value, line) => {
                let v = value
                    .as_ref()
                    .map(|e| self.eval(e, env, *line))
                    .unwrap_or(Sub::Unknown);
                if let Some(frame) = self.returns.last_mut() {
                    frame.push(v);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
            // Nested regions are rejected by sema; nothing to do here.
            Stmt::ParallelFor { .. } | Stmt::ParallelSections { .. } => {}
        }
    }

    fn record_scalar_write(&mut self, name: &str, rhs: &Expr, line: usize) {
        // Reduction shape: `g = g op e` / `g = e op g` with a
        // commutative operator.
        let shape = match rhs {
            Expr::Binary(op, a, b) if is_commutative(*op) => {
                let hit = matches!(a.as_ref(), Expr::Var(n) if n == name)
                    || matches!(b.as_ref(), Expr::Var(n) if n == name);
                hit.then_some(*op)
            }
            _ => None,
        };
        let entry = self
            .acc
            .scalars
            .entry(name.to_owned())
            .or_insert(ScalarUse {
                reduction: true,
                ..ScalarUse::default()
            });
        entry.writes.push(line);
        match (shape, entry.reduction_op) {
            (Some(op), None) => entry.reduction_op = Some(op),
            (Some(op), Some(prev)) if op == prev => {}
            _ => entry.reduction = false,
        }
    }

    fn eval(&mut self, e: &Expr, env: &Env, line: usize) -> Sub {
        match e {
            Expr::Int(v) => Sub::constant(*v),
            Expr::Var(name) => {
                if let Some(&v) = env.get(name) {
                    v
                } else {
                    if self.is_shared_scalar(name, env) {
                        self.acc
                            .scalars
                            .entry(name.clone())
                            .or_insert(ScalarUse {
                                reduction: true,
                                ..ScalarUse::default()
                            })
                            .reads
                            .push(line);
                    }
                    // Array names decay to addresses; neither is affine
                    // in t.
                    Sub::Unknown
                }
            }
            Expr::Index(name, idx) => {
                let isub = self.eval(idx, env, line);
                if self.is_shared_array(name, env) {
                    self.acc
                        .array_reads
                        .entry(name.clone())
                        .or_default()
                        .push(Access { sub: isub, line });
                } else if !self.local_arrays.contains(name) && env.contains_key(name) {
                    self.acc.pointer_loads.push(line);
                }
                Sub::Unknown
            }
            Expr::Deref(inner) => {
                self.eval(inner, env, line);
                self.acc.pointer_loads.push(line);
                Sub::Unknown
            }
            Expr::AddrOf(place) => {
                if let Place::Index(_, idx) = place.as_ref() {
                    self.eval(idx, env, line);
                }
                Sub::Unknown
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, env, line);
                match (op, v) {
                    (UnOp::Neg, Sub::Affine { a, b }) => match (a.checked_neg(), b.checked_neg()) {
                        (Some(a), Some(b)) => Sub::Affine { a, b },
                        _ => Sub::Unknown,
                    },
                    _ => Sub::Unknown,
                }
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval(l, env, line);
                let rv = self.eval(r, env, line);
                match op {
                    BinOp::Add => lv.map2(rv, i64::checked_add),
                    BinOp::Sub => lv.map2(rv, i64::checked_sub),
                    BinOp::Mul => mul(lv, rv),
                    _ => Sub::Unknown,
                }
            }
            Expr::Call(name, args) => self.eval_call(name, args, env, line),
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], env: &Env, line: usize) -> Sub {
        let arg_subs: Vec<Sub> = args.iter().map(|a| self.eval(a, env, line)).collect();
        let Some(f) = self.cx.unit.functions.iter().find(|f| f.name == name) else {
            // A builtin (`omp_set_num_threads`): no shared-memory effect.
            return Sub::Unknown;
        };
        if self.stack.len() >= MAX_INLINE_DEPTH || self.stack.iter().any(|n| n == name) {
            self.acc.opaque_calls.push((name.to_owned(), line));
            return Sub::Unknown;
        }
        self.stack.push(name.to_owned());
        self.returns.push(Vec::new());
        let mut fenv: Env = f.params.iter().cloned().zip(arg_subs).collect();
        self.walk_block(&f.body.clone(), &mut fenv);
        let rets = self.returns.pop().unwrap_or_default();
        self.stack.pop();
        match rets.as_slice() {
            [only] => *only,
            [first, rest @ ..] if rest.iter().all(|r| r == first) => *first,
            _ => Sub::Unknown,
        }
    }
}

fn is_commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

fn mul(l: Sub, r: Sub) -> Sub {
    match (l, r) {
        // Multiplication stays affine only when one side is constant.
        (Sub::Affine { a, b }, Sub::Affine { a: 0, b: k })
        | (Sub::Affine { a: 0, b: k }, Sub::Affine { a, b }) => {
            match (a.checked_mul(k), b.checked_mul(k)) {
                (Some(a), Some(b)) => Sub::Affine { a, b },
                _ => Sub::Unknown,
            }
        }
        _ => Sub::Unknown,
    }
}

/// Degrades every local assigned (or re-declared) anywhere in `stmts` to
/// Unknown: its value is loop-variant.
fn invalidate_assigned(stmts: &[Stmt], env: &mut Env) {
    let mut names = BTreeSet::new();
    collect_assigned(stmts, &mut names);
    for n in names {
        if let Some(v) = env.get_mut(&n) {
            *v = Sub::Unknown;
        }
    }
}

fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign {
                lhs: Place::Var(n), ..
            } => {
                out.insert(n.clone());
            }
            Stmt::Decl { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If { then, els, .. } => {
                collect_assigned(then, out);
                collect_assigned(els, out);
            }
            Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(i) = init.as_ref() {
                    collect_assigned(std::slice::from_ref(i), out);
                }
                if let Some(st) = step.as_ref() {
                    collect_assigned(std::slice::from_ref(st), out);
                }
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

/// The number of harts two accesses can be distributed over: for
/// `parallel for` both come from the same body with symbolic `t`; for
/// sections each section index is the hart.
fn report_region(
    what: &str,
    line: usize,
    count: i64,
    accs: &[Accesses],
    declared: &BTreeSet<String>,
    diags: &mut Vec<Diag>,
) {
    summarize(what, line, count, accs, declared, diags);
    if count < 2 {
        return; // A 0/1-hart team cannot race with itself.
    }
    if accs.len() == 1 {
        check_team(&accs[0], count, diags);
    } else {
        check_sections(accs, diags);
    }
    for acc in accs {
        soft_warnings(acc, accs.len() == 1, diags);
    }
}

/// The classification note (Info; never affects the verdict).
fn summarize(
    what: &str,
    line: usize,
    count: i64,
    accs: &[Accesses],
    declared: &BTreeSet<String>,
    diags: &mut Vec<Diag>,
) {
    let mut shared = BTreeSet::new();
    let mut reduction = BTreeSet::new();
    for acc in accs {
        for (name, u) in &acc.scalars {
            if !u.writes.is_empty() && u.reduction && u.reduction_op.is_some() {
                reduction.insert(name.clone());
            } else {
                shared.insert(name.clone());
            }
        }
        shared.extend(acc.array_reads.keys().cloned());
        shared.extend(acc.array_writes.keys().cloned());
    }
    let fmt = |set: &BTreeSet<String>| {
        if set.is_empty() {
            "none".to_owned()
        } else {
            set.iter()
                .map(|s| format!("`{s}`"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };
    diags.push(Diag::new(
        DiagCode::CSema,
        Severity::Info,
        line,
        format!(
            "{what} ({count} harts): private {}; shared {}; reduction {}",
            fmt(declared),
            fmt(&shared),
            fmt(&reduction)
        ),
    ));
}

/// Definite-race checks for a `parallel for` team: all harts run the
/// same accesses with different `t`.
fn check_team(acc: &Accesses, count: i64, diags: &mut Vec<Diag>) {
    for (name, u) in &acc.scalars {
        if u.writes.is_empty() {
            continue;
        }
        let wline = u.writes[0];
        let mut d = Diag::new(
            DiagCode::SSharedScalar,
            Severity::Error,
            wline,
            format!(
                "shared scalar `{name}` is written by every hart of the team; \
                 the members are not ordered by a barrier, so the final value \
                 is a race"
            ),
        )
        .with_witness(format!(
            "harts t=0 and t=1 both reach the write of `{name}` at line {wline}"
        ));
        d = if u.reduction && u.reduction_op.is_some() {
            d.with_hint(format!(
                "`{name}` has the reduction shape `{name} = {name} op …`, but LBP \
                 has no atomic reduction: accumulate into a per-hart partial \
                 array and fold it sequentially after the region \
                 (the `examples/c/reduce.c` idiom)"
            ))
        } else {
            d.with_hint(format!(
                "make `{name}` private to the member (a local), or give each \
                 hart its own element of a shared array"
            ))
        };
        diags.push(d);
    }
    for (name, writes) in &acc.array_writes {
        // Write/write: every unordered pair, including a write against
        // itself on two different harts.
        for (i, w1) in writes.iter().enumerate() {
            for w2 in &writes[i..] {
                if let Some((t1, t2, elem)) = collide(w1.sub, w2.sub, count) {
                    diags.push(
                        Diag::new(
                            DiagCode::SOverlappingWrite,
                            Severity::Error,
                            w1.line,
                            format!(
                                "two harts of the team write the same element of \
                                 shared array `{name}`"
                            ),
                        )
                        .with_witness(format!(
                            "hart t={t1} (line {}) and hart t={t2} (line {}) both \
                             write `{name}[{elem}]`",
                            w1.line, w2.line
                        ))
                        .with_hint(format!(
                            "make the subscript injective in the member index \
                             (e.g. `{name}[t]`), or split the region"
                        )),
                    );
                }
            }
        }
        // Write/read across harts: a loop-carried dependence.
        for r in acc.array_reads.get(name).into_iter().flatten() {
            for w in writes {
                if let Some((t1, t2, elem)) = collide(w.sub, r.sub, count) {
                    diags.push(
                        Diag::new(
                            DiagCode::SLoopCarried,
                            Severity::Error,
                            w.line,
                            format!(
                                "loop-carried dependence: a hart reads an element \
                                 of `{name}` another hart writes"
                            ),
                        )
                        .with_witness(format!(
                            "hart t={t1} writes `{name}[{elem}]` (line {}) while \
                             hart t={t2} reads it (line {})",
                            w.line, r.line
                        ))
                        .with_hint(
                            "members of a team run concurrently: read only \
                             elements the region does not write, or compute into \
                             a second array (double-buffer) and swap after the \
                             region",
                        ),
                    );
                }
            }
        }
    }
}

/// Definite-race checks across `parallel sections`: section `i` runs on
/// hart `i`, so conflicts are between different sections.
fn check_sections(accs: &[Accesses], diags: &mut Vec<Diag>) {
    for (i, a) in accs.iter().enumerate() {
        for (j, b) in accs.iter().enumerate().skip(i + 1) {
            for (name, ua) in &a.scalars {
                let Some(ub) = b.scalars.get(name) else {
                    continue;
                };
                let a_writes = !ua.writes.is_empty();
                let b_writes = !ub.writes.is_empty();
                let conflict = (a_writes && (b_writes || !ub.reads.is_empty()))
                    || (b_writes && !ua.reads.is_empty());
                if conflict {
                    let la = *ua.writes.first().or(ua.reads.first()).unwrap_or(&0);
                    let lb = *ub.writes.first().or(ub.reads.first()).unwrap_or(&0);
                    diags.push(
                        Diag::new(
                            DiagCode::SSharedScalar,
                            Severity::Error,
                            la.min(lb),
                            format!(
                                "sections {i} and {j} conflict on shared scalar \
                                 `{name}`"
                            ),
                        )
                        .with_witness(format!(
                            "hart {i} (section {i}, line {la}) and hart {j} \
                             (section {j}, line {lb}) touch `{name}`, at least \
                             one writing"
                        ))
                        .with_hint(format!(
                            "give each section its own scalar, or make `{name}` \
                             an array indexed by section"
                        )),
                    );
                }
            }
            for (name, writes) in &a.array_writes {
                let reads_b = b.array_reads.get(name).map(Vec::as_slice).unwrap_or(&[]);
                let writes_b = b.array_writes.get(name).map(Vec::as_slice).unwrap_or(&[]);
                for w in writes {
                    for other in writes_b.iter().chain(reads_b) {
                        if let (Sub::Affine { a: 0, b: e1 }, Sub::Affine { a: 0, b: e2 }) =
                            (w.sub, other.sub)
                        {
                            if e1 == e2 {
                                diags.push(
                                    Diag::new(
                                        DiagCode::SOverlappingWrite,
                                        Severity::Error,
                                        w.line,
                                        format!(
                                            "sections {i} and {j} conflict on \
                                             `{name}[{e1}]`"
                                        ),
                                    )
                                    .with_witness(format!(
                                        "hart {i} writes `{name}[{e1}]` (line {}) \
                                         while hart {j} accesses it (line {})",
                                        w.line, other.line
                                    ))
                                    .with_hint("partition the array between the sections"),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Warnings for what the analysis cannot prove (never rejections).
fn soft_warnings(acc: &Accesses, team: bool, diags: &mut Vec<Diag>) {
    let mut seen = BTreeSet::new();
    for (name, writes) in &acc.array_writes {
        for w in writes {
            if w.sub == Sub::Unknown && seen.insert((name.clone(), w.line, true)) {
                diags.push(
                    Diag::new(
                        DiagCode::SUnprovable,
                        Severity::Warning,
                        w.line,
                        format!(
                            "subscript of the write to shared array `{name}` is not \
                             affine in the member index: hart-disjointness cannot \
                             be proved statically"
                        ),
                    )
                    .with_hint(
                        "keep subscripts of shared writes affine in the index \
                         variable (a·t + b) for a static independence proof; \
                         the dynamic lockstep checker still covers this run",
                    ),
                );
            }
        }
    }
    if team {
        for (name, reads) in &acc.array_reads {
            if !acc.array_writes.contains_key(name) {
                continue; // Read-only arrays cannot race.
            }
            for r in reads {
                if r.sub == Sub::Unknown && seen.insert((name.clone(), r.line, false)) {
                    diags.push(
                        Diag::new(
                            DiagCode::SUnprovable,
                            Severity::Warning,
                            r.line,
                            format!(
                                "shared array `{name}` is both written by the team \
                                 and read through a non-affine subscript: freedom \
                                 from loop-carried dependences cannot be proved"
                            ),
                        )
                        .with_hint(
                            "split the region, or double-buffer the array so reads \
                             and writes target different arrays",
                        ),
                    );
                }
            }
        }
    }
    for &line in &acc.pointer_stores {
        if seen.insert(("*".to_owned(), line, true)) {
            diags.push(
                Diag::new(
                    DiagCode::SPointerStore,
                    Severity::Warning,
                    line,
                    "store through a pointer inside a parallel region: the \
                     independence analysis cannot see the target",
                )
                .with_hint("write through a named shared array with an affine subscript"),
            );
        }
    }
    for (callee, line) in &acc.opaque_calls {
        if seen.insert((callee.clone(), *line, false)) {
            diags.push(
                Diag::new(
                    DiagCode::SUnprovable,
                    Severity::Warning,
                    *line,
                    format!(
                        "call to `{callee}` is recursive or exceeds the inline \
                         depth ({MAX_INLINE_DEPTH}); its shared accesses are not \
                         analyzed"
                    ),
                )
                .with_hint("flatten the call chain inside parallel regions"),
            );
        }
    }
}

/// Finds concrete harts `t1 ≠ t2` in `0..count` whose subscripts
/// collide; returns `(t1, t2, element)`. Both subscripts must be affine
/// (Unknown never produces a *definite* race).
fn collide(s1: Sub, s2: Sub, count: i64) -> Option<(i64, i64, i64)> {
    let (Sub::Affine { a: a1, b: b1 }, Sub::Affine { a: a2, b: b2 }) = (s1, s2) else {
        return None;
    };
    // Teams are capped at 256 harts by sema, so the pair space is tiny;
    // brute force keeps the witness search obviously correct.
    for t1 in 0..count {
        for t2 in 0..count {
            if t1 == t2 {
                continue;
            }
            let e1 = a1.checked_mul(t1).and_then(|v| v.checked_add(b1));
            let e2 = a2.checked_mul(t2).and_then(|v| v.checked_add(b2));
            if let (Some(e1), Some(e2)) = (e1, e2) {
                if e1 == e2 {
                    return Some((t1, t2, e1));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse;
    use crate::sema;

    fn lint_src(src: &str) -> Vec<Diag> {
        let checked = sema::check(parse(lex(src).unwrap()).unwrap()).unwrap();
        lint_unit(&checked)
    }

    fn errors(diags: &[Diag]) -> Vec<&Diag> {
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn disjoint_affine_writes_are_clean() {
        let diags = lint_src(
            "int v[8];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 8; t++) v[t] = t;
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
        assert!(lbp_verify::accepted(&diags));
    }

    #[test]
    fn interprocedural_disjoint_writes_are_clean() {
        let diags = lint_src(
            "int v[8];
void thread(int t) { v[t + 1] = t; }
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) thread(t);
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn shared_scalar_write_is_a_race_with_witness() {
        let diags = lint_src(
            "int g;
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) g = t;
}",
        );
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].code, DiagCode::SSharedScalar);
        assert!(errs[0].witness.as_deref().unwrap().contains("t=0"));
    }

    #[test]
    fn reduction_shape_is_classified_and_hinted() {
        let diags = lint_src(
            "int g;
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) g = g + t;
}",
        );
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].hint.as_deref().unwrap().contains("reduction"));
        // The classification note lists g as a reduction variable.
        let info = diags.iter().find(|d| d.severity == Severity::Info).unwrap();
        assert!(info.message.contains("reduction `g`"), "{}", info.message);
    }

    #[test]
    fn constant_subscript_write_collides() {
        let diags = lint_src(
            "int v[8];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) v[0] = t;
}",
        );
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].code, DiagCode::SOverlappingWrite);
        assert!(errs[0].witness.as_deref().unwrap().contains("v[0]"));
    }

    #[test]
    fn loop_carried_dependence_collides() {
        let diags = lint_src(
            "int v[8];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) v[t] = v[t + 1];
}",
        );
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].code, DiagCode::SLoopCarried);
        let w = errs[0].witness.as_deref().unwrap();
        assert!(w.contains("writes") && w.contains("reads"), "{w}");
    }

    #[test]
    fn same_element_read_write_on_one_hart_is_fine() {
        let diags = lint_src(
            "int v[8];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 8; t++) v[t] = v[t] + 1;
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn unprovable_subscript_warns_but_accepts() {
        let diags = lint_src(
            "int v[64];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) v[t * t] = t;
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::SUnprovable && d.severity == Severity::Warning));
        assert!(lbp_verify::accepted(&diags));
    }

    #[test]
    fn sections_conflicting_on_a_scalar_race() {
        let diags = lint_src(
            "int g;
void s0(void) { g = 1; }
void s1(void) { g = 2; }
void main(void) {
#pragma omp parallel sections
    {
#pragma omp section
        { s0(); }
#pragma omp section
        { s1(); }
    }
}",
        );
        let errs = errors(&diags);
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].code, DiagCode::SSharedScalar);
        assert!(errs[0].witness.as_deref().unwrap().contains("section"));
    }

    #[test]
    fn sections_on_disjoint_state_are_clean() {
        let diags = lint_src(
            "int a; int b;
void s0(void) { a = 1; }
void s1(void) { b = 2; }
void main(void) {
#pragma omp parallel sections
    {
#pragma omp section
        { s0(); }
#pragma omp section
        { s1(); }
    }
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn single_hart_team_cannot_race() {
        let diags = lint_src(
            "int g;
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 1; t++) g = t;
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn loop_variant_local_degrades_to_warning() {
        let diags = lint_src(
            "int v[64];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) {
        int i;
        for (i = t * 4; i < t * 4 + 4; i = i + 1) v[i] = i;
    }
}",
        );
        assert!(errors(&diags).is_empty(), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == DiagCode::SUnprovable));
    }
}
