//! Code generation: checked AST → PISC assembly.
//!
//! ## Conventions
//!
//! - Scalar locals and parameters live in registers `s4`-`s11` (so the
//!   Deterministic OpenMP team loop, which uses `s0`-`s3`, never collides
//!   with them); expression scratch is `t2`-`t6`, `a6`, `a7`.
//! - `t0`/`t1` are never touched: they carry the X_PAR identity words.
//! - Every function gets a fixed 96-byte frame: `ra` at 0, `t0`-save at 4
//!   (main only), `s4`-`s11` saves at 8..40, spill slots at 40..92.
//! - LBP has no load/store queue, so the generator tracks *pending
//!   stores* per alias class (global symbol / unknown / compiler stack)
//!   and inserts `p_syncm` before a load that might observe one. Every
//!   epilogue starts with `p_syncm`, which both protects the register
//!   restores and gives calls barrier semantics.
//! - `#pragma omp parallel for` bodies are extracted into member
//!   functions ending in `p_ret` and lowered through
//!   [`lbp_omp::emit_parallel_region`] — the paper's Fig. 2 translation.

use std::collections::{HashMap, HashSet};

use lbp_asm::Asm;
use lbp_omp::{emit_parallel_region, TeamBody};

use crate::ast::*;
use crate::sema::Checked;
use crate::{CcError, CodegenSabotage};

/// Expression scratch registers (order = allocation preference).
const SCRATCH: [&str; 7] = ["t2", "t3", "t4", "t5", "t6", "a6", "a7"];
/// Register-local pool.
const LOCALS: [&str; 8] = ["s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"];

/// Frame layout.
const FRAME: i32 = 96;
const OFF_RA: i32 = 0;
const OFF_T0: i32 = 4;
const OFF_SREG: i32 = 8; // 8 words
const OFF_SPILL: i32 = 40; // 13 words

/// Generates the complete assembly program, optionally injecting a
/// deliberate miscompilation (see [`CodegenSabotage`]) — the hook behind
/// `lbp-cc --sabotage codegen:*` that red-tests the `semantics`
/// differential oracle.
///
/// # Errors
///
/// Returns an error for constructs the generator cannot express
/// (expressions deeper than the scratch pool, unsupported builtins).
pub fn generate_with(cx: &Checked, sabotage: Option<CodegenSabotage>) -> Result<String, CcError> {
    let mut g = Gen {
        cx,
        asm: Asm::new(),
        label_n: 0,
        team_fns: Vec::new(),
        section_tables: Vec::new(),
        sabotage,
    };
    g.asm
        .comment("Compiled by lbp-cc (Deterministic OpenMP translator)");
    // main first (the boot hart starts at `main`).
    let main = cx
        .unit
        .functions
        .iter()
        .find(|f| f.name == "main")
        .expect("sema guarantees main");
    g.function(main, FnKind::Main)?;
    for f in &cx.unit.functions {
        if f.name != "main" {
            g.function(f, FnKind::Normal)?;
        }
    }
    // Extracted parallel-region member functions.
    while let Some((f, kind)) = g.team_fns.pop() {
        g.function(&f, kind)?;
    }
    // Data section.
    g.asm.blank();
    g.asm.line(".data");
    for global in &cx.unit.globals {
        g.asm.line(".align 4");
        g.asm.label(&global.name);
        match &global.fill {
            Some(Init::Uniform(v)) if *v != 0 => {
                for _ in 0..global.elems {
                    g.asm.line(format!(".word {v}"));
                }
            }
            Some(Init::List(values)) => {
                for v in values.iter().take(global.elems as usize) {
                    g.asm.line(format!(".word {v}"));
                }
                let rest = global.elems as usize - values.len().min(global.elems as usize);
                if rest > 0 {
                    g.asm.line(format!(".space {}", rest * 4));
                }
            }
            _ => {
                g.asm.line(format!(".space {}", global.elems * 4));
            }
        }
    }
    for (name, fns) in &g.section_tables {
        g.asm.line(".align 4");
        g.asm.label(name);
        for f in fns {
            g.asm.line(format!(".word {f}"));
        }
    }
    Ok(g.asm.into_text())
}

/// What kind of epilogue a function needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FnKind {
    /// The program entry: Deterministic OpenMP prologue, exits by `p_ret`.
    Main,
    /// Ordinary function: returns with `ret`.
    Normal,
    /// Parallel-region member: returns with `p_ret`.
    TeamMember,
}

/// Pending (possibly still in-flight) stores, by alias class.
#[derive(Debug, Clone, Default)]
struct Pending {
    unknown: bool,
    syms: HashSet<String>,
}

impl Pending {
    fn clear(&mut self) {
        self.unknown = false;
        self.syms.clear();
    }

    fn any(&self) -> bool {
        self.unknown || !self.syms.is_empty()
    }

    fn add(&mut self, class: &Alias) {
        match class {
            Alias::Global(s) => {
                self.syms.insert(s.clone());
            }
            Alias::Unknown => self.unknown = true,
        }
    }

    fn union(&mut self, other: &Pending) {
        self.unknown |= other.unknown;
        self.syms.extend(other.syms.iter().cloned());
    }

    fn conflicts(&self, load: &Alias) -> bool {
        match load {
            Alias::Global(s) => self.unknown || self.syms.contains(s),
            Alias::Unknown => self.any(),
        }
    }
}

/// The alias class of one memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Alias {
    Global(String),
    Unknown,
}

/// A computed value: a constant or a register (owned scratch or a
/// read-only local).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Imm(i64),
    Reg {
        name: &'static str,
        owned: bool,
    },
    /// A local register, referred by pool index (read-only).
    Local(usize),
}

struct Gen<'a> {
    cx: &'a Checked,
    asm: Asm,
    label_n: usize,
    team_fns: Vec<(Function, FnKind)>,
    section_tables: Vec<(String, Vec<String>)>,
    /// A deliberate miscompilation under test, if any.
    sabotage: Option<CodegenSabotage>,
}

impl Gen<'_> {
    fn fresh(&mut self, tag: &str) -> String {
        self.label_n += 1;
        format!("_cc_{tag}_{}", self.label_n)
    }

    fn function(&mut self, f: &Function, kind: FnKind) -> Result<(), CcError> {
        let locals = collect_locals(f);
        // Local arrays sit above the fixed header in the frame.
        let mut arrays = HashMap::new();
        let mut frame = FRAME;
        for (name, elems) in collect_local_arrays(f) {
            arrays.insert(name, frame);
            frame += (elems * 4) as i32;
        }
        frame = (frame + 7) & !7;
        let mut fx = FnGen {
            locals: locals
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i))
                .collect(),
            arrays,
            frame,
            n_locals: locals.len(),
            free_scratch: (0..SCRATCH.len()).rev().collect(),
            pending: Pending::default(),
            epilogue: String::new(),
            loop_labels: Vec::new(),
        };
        fx.epilogue = self.fresh(&format!("{}_end", f.name));
        self.asm.blank();
        self.asm.label(&f.name);
        // Prologue (a frame beyond the addi range uses li/add).
        if fx.frame <= 2048 {
            self.asm.line(format!("addi sp, sp, -{}", fx.frame));
        } else {
            self.asm.line(format!("li   t6, {}", fx.frame));
            self.asm.line("sub  sp, sp, t6");
        }
        self.asm.line(format!("sw   ra, {OFF_RA}(sp)"));
        if kind == FnKind::Main {
            self.asm.line("li   t0, -1");
            self.asm.line(format!("sw   t0, {OFF_T0}(sp)"));
            self.asm.line("p_set t0");
        }
        for (i, reg) in LOCALS.iter().enumerate().take(fx.n_locals) {
            self.asm
                .line(format!("sw   {}, {}(sp)", reg, OFF_SREG + 4 * i as i32));
        }
        // Parameters arrive in a0.. and move into their local registers.
        for (i, _p) in f.params.iter().enumerate() {
            self.asm.line(format!("mv   {}, a{i}", LOCALS[i]));
        }
        // Body.
        self.block(&f.body, &mut fx)?;
        // Epilogue.
        self.asm.label(fx.epilogue.clone());
        self.asm.line("p_syncm");
        self.asm.line(format!("lw   ra, {OFF_RA}(sp)"));
        if kind == FnKind::Main {
            self.asm.line(format!("lw   t0, {OFF_T0}(sp)"));
        }
        for (i, reg) in LOCALS.iter().enumerate().take(fx.n_locals) {
            self.asm
                .line(format!("lw   {}, {}(sp)", reg, OFF_SREG + 4 * i as i32));
        }
        // The register restores are loads from the frame this function's
        // own stores filled; a second p_syncm lets them land before the
        // control transfer reads `ra`/`t0`.
        self.asm.line("p_syncm");
        if fx.frame <= 2047 {
            self.asm.line(format!("addi sp, sp, {}", fx.frame));
        } else {
            self.asm.line(format!("li   t6, {}", fx.frame));
            self.asm.line("add  sp, sp, t6");
        }
        match kind {
            FnKind::Main | FnKind::TeamMember => self.asm.line("p_ret"),
            FnKind::Normal => self.asm.line("ret"),
        };
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt], fx: &mut FnGen) -> Result<(), CcError> {
        for s in stmts {
            self.stmt(s, fx)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, fx: &mut FnGen) -> Result<(), CcError> {
        match s {
            Stmt::DeclArray { .. } => Ok(()),
            Stmt::Decl { name, init, line } => {
                let idx = fx.locals[name];
                if let Some(e) = init {
                    let v = self.expr(e, fx, *line)?;
                    self.move_into(LOCALS[idx], v, fx);
                }
                Ok(())
            }
            Stmt::Assign { lhs, rhs, line } => {
                let v = self.expr(rhs, fx, *line)?;
                self.store_place(lhs, v, fx, *line)
            }
            Stmt::Expr(e, line) => {
                let v = self.expr(e, fx, *line)?;
                fx.release(v);
                Ok(())
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let else_l = self.fresh("else");
                let end_l = self.fresh("endif");
                self.branch_if_false(cond, &else_l, fx)?;
                let entry_pending = fx.pending.clone();
                self.block(then, fx)?;
                let then_pending = fx.pending.clone();
                if els.is_empty() {
                    self.asm.label(&else_l);
                    fx.pending.union(&then_pending);
                } else {
                    self.asm.line(format!("j    {end_l}"));
                    self.asm.label(&else_l);
                    fx.pending = entry_pending;
                    self.block(els, fx)?;
                    fx.pending.union(&then_pending);
                    self.asm.label(&end_l);
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let head = self.fresh("while");
                let end = self.fresh("wend");
                // Any iteration may observe the previous iteration's
                // stores.
                fx.pending.union(&stores_of(body, self.cx));
                self.asm.label(&head);
                self.branch_if_false(cond, &end, fx)?;
                fx.loop_labels.push((head.clone(), end.clone()));
                self.block(body, fx)?;
                fx.loop_labels.pop();
                self.asm.line(format!("j    {head}"));
                self.asm.label(&end);
                fx.pending.union(&stores_of(body, self.cx));
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init.as_ref() {
                    self.stmt(i, fx)?;
                }
                let head = self.fresh("for");
                let end = self.fresh("fend");
                let mut loop_stores = stores_of(body, self.cx);
                if let Some(st) = step.as_ref() {
                    loop_stores.union(&stores_of(std::slice::from_ref(st), self.cx));
                }
                let step_l = self.fresh("fstep");
                fx.pending.union(&loop_stores);
                self.asm.label(&head);
                if let Some(c) = cond {
                    self.branch_if_false(c, &end, fx)?;
                }
                fx.loop_labels.push((step_l.clone(), end.clone()));
                self.block(body, fx)?;
                fx.loop_labels.pop();
                self.asm.label(&step_l);
                if let Some(st) = step.as_ref() {
                    self.stmt(st, fx)?;
                }
                self.asm.line(format!("j    {head}"));
                self.asm.label(&end);
                fx.pending.union(&loop_stores);
                Ok(())
            }
            Stmt::Break(_) => {
                let (_, brk) = fx
                    .loop_labels
                    .last()
                    .cloned()
                    .expect("sema rejects break outside loops");
                self.asm.line(format!("j    {brk}"));
                Ok(())
            }
            Stmt::Continue(_) => {
                let (cont, _) = fx
                    .loop_labels
                    .last()
                    .cloned()
                    .expect("sema rejects continue outside loops");
                self.asm.line(format!("j    {cont}"));
                Ok(())
            }
            Stmt::Return(value, line) => {
                if let Some(e) = value {
                    let v = self.expr(e, fx, *line)?;
                    self.move_into("a0", v, fx);
                }
                self.asm.line(format!("j    {}", fx.epilogue));
                Ok(())
            }
            Stmt::ParallelFor {
                var,
                count,
                body,
                line,
            } => self.lower_parallel_for(var, *count, body, fx, *line),
            Stmt::ParallelSections { sections, line } => {
                self.lower_parallel_sections(sections, fx, *line)
            }
        }
    }

    fn lower_parallel_for(
        &mut self,
        var: &str,
        count: i64,
        body: &[Stmt],
        fx: &mut FnGen,
        line: usize,
    ) -> Result<(), CcError> {
        let fn_name = self.fresh("omp_fn");
        let mut member_body = body.to_vec();
        if self.sabotage == Some(CodegenSabotage::IndexShift) {
            // Each member computes with index `t + 1`: the static chunk
            // assignment every member receives is shifted by one.
            member_body.insert(
                0,
                Stmt::Assign {
                    lhs: Place::Var(var.to_owned()),
                    rhs: Expr::Binary(
                        BinOp::Add,
                        Box::new(Expr::Var(var.to_owned())),
                        Box::new(Expr::Int(1)),
                    ),
                    line,
                },
            );
        }
        self.team_fns.push((
            Function {
                name: fn_name.clone(),
                params: vec![var.to_owned()],
                returns_value: false,
                body: member_body,
                line,
            },
            FnKind::TeamMember,
        ));
        let mut emit_count = count as usize;
        if self.sabotage == Some(CodegenSabotage::ChunkBounds) && emit_count > 1 {
            // Off-by-one static chunk bounds: the last member is never
            // spawned, so its chunk of the iteration space never runs.
            emit_count -= 1;
        }
        // The region's built-in p_syncm (before each p_jalr) drains
        // main's pending stores before any member runs.
        emit_parallel_region(
            &mut self.asm,
            emit_count,
            &TeamBody::Uniform { function: fn_name },
            None,
        );
        // Members' epilogues drained their stores before the join, but
        // main cannot know which symbols they wrote.
        fx.pending.clear();
        fx.pending.unknown = true;
        Ok(())
    }

    fn lower_parallel_sections(
        &mut self,
        sections: &[Vec<Stmt>],
        fx: &mut FnGen,
        line: usize,
    ) -> Result<(), CcError> {
        let table = self.fresh("omp_sections");
        let mut fns = Vec::new();
        for body in sections {
            let fn_name = self.fresh("omp_sec");
            self.team_fns.push((
                Function {
                    name: fn_name.clone(),
                    params: Vec::new(),
                    returns_value: false,
                    body: body.to_vec(),
                    line,
                },
                FnKind::TeamMember,
            ));
            fns.push(fn_name);
        }
        let mut count = fns.len();
        self.section_tables.push((table.clone(), fns));
        if self.sabotage == Some(CodegenSabotage::ChunkBounds) && count > 1 {
            // Same off-by-one as parallel-for: the last section never runs.
            count -= 1;
        }
        emit_parallel_region(&mut self.asm, count, &TeamBody::Sections { table }, None);
        fx.pending.clear();
        fx.pending.unknown = true;
        Ok(())
    }

    // ----- places and memory -----

    /// Stores `v` into a place.
    fn store_place(
        &mut self,
        place: &Place,
        v: Val,
        fx: &mut FnGen,
        line: usize,
    ) -> Result<(), CcError> {
        match place {
            Place::Var(name) => {
                if let Some(&idx) = fx.locals.get(name) {
                    self.move_into(LOCALS[idx], v, fx);
                    return Ok(());
                }
                // Scalar global.
                let addr = fx.alloc(line)?;
                self.asm.line(format!("la   {addr}, {name}"));
                let vr = self.to_reg(v, fx, line)?;
                self.asm.line(format!("sw   {}, 0({addr})", reg_name(vr)));
                fx.release(vr);
                fx.free_scratch_reg(addr);
                fx.pending.add(&Alias::Global(name.clone()));
                Ok(())
            }
            Place::Index(name, idx_expr) => {
                let (addr, class) = self.element_addr(name, idx_expr, fx, line)?;
                let vr = self.to_reg(v, fx, line)?;
                self.asm
                    .line(format!("sw   {}, 0({})", reg_name(vr), reg_name(addr)));
                fx.release(vr);
                fx.release(addr);
                fx.pending.add(&class);
                Ok(())
            }
            Place::Deref(ptr) => {
                let p = self.expr(ptr, fx, line)?;
                let pr = self.to_reg(p, fx, line)?;
                let vr = self.to_reg(v, fx, line)?;
                self.asm
                    .line(format!("sw   {}, 0({})", reg_name(vr), reg_name(pr)));
                fx.release(vr);
                fx.release(pr);
                fx.pending.add(&Alias::Unknown);
                Ok(())
            }
        }
    }

    /// Computes the address of `name[idx]`, returning its alias class.
    fn element_addr(
        &mut self,
        name: &str,
        idx: &Expr,
        fx: &mut FnGen,
        line: usize,
    ) -> Result<(Val, Alias), CcError> {
        let scaled = Expr::Binary(BinOp::Mul, Box::new(idx.clone()), Box::new(Expr::Int(4)));
        let off = self.expr(&scaled, fx, line)?;
        if let Some(&base_off) = fx.arrays.get(name) {
            // A stack-local array: sp + frame offset + scaled index.
            let dest = self.to_owned_reg(off, fx, line)?;
            let dn = reg_name(dest);
            if base_off <= 2047 {
                self.asm.line(format!("addi {dn}, {dn}, {base_off}"));
            } else {
                let t = fx.alloc(line)?;
                self.asm.line(format!("li   {t}, {base_off}"));
                self.asm.line(format!("add  {dn}, {dn}, {t}"));
                fx.free_scratch_reg(t);
            }
            self.asm.line(format!("add  {dn}, {dn}, sp"));
            return Ok((dest, Alias::Global(format!("%frame%{name}"))));
        }
        if fx.locals.contains_key(name) {
            // Pointer variable.
            let idx_local = fx.locals[name];
            let dest = self.to_owned_reg(off, fx, line)?;
            self.asm.line(format!(
                "add  {}, {}, {}",
                reg_name(dest),
                reg_name(dest),
                LOCALS[idx_local]
            ));
            Ok((dest, Alias::Unknown))
        } else {
            // Global array (or scalar used as one-element array).
            let base = fx.alloc(line)?;
            self.asm.line(format!("la   {base}, {name}"));
            let dest = self.to_owned_reg(off, fx, line)?;
            self.asm.line(format!(
                "add  {}, {}, {base}",
                reg_name(dest),
                reg_name(dest)
            ));
            fx.free_scratch_reg(base);
            Ok((dest, Alias::Global(name.to_owned())))
        }
    }

    /// Emits a load with the pending-store fence when needed.
    fn emit_load(&mut self, dest: &str, addr: &str, class: &Alias, fx: &mut FnGen) {
        if fx.pending.conflicts(class) {
            self.asm.line("p_syncm");
            fx.pending.clear();
        }
        self.asm.line(format!("lw   {dest}, 0({addr})"));
    }

    // ----- expressions -----

    fn expr(&mut self, e: &Expr, fx: &mut FnGen, line: usize) -> Result<Val, CcError> {
        match e {
            Expr::Int(v) => Ok(Val::Imm(*v)),
            Expr::Var(name) => {
                if let Some(&base_off) = fx.arrays.get(name) {
                    // Array name decays to its frame address.
                    let r = fx.alloc(line)?;
                    self.asm.line(format!("li   {r}, {base_off}"));
                    self.asm.line(format!("add  {r}, {r}, sp"));
                    return Ok(Val::Reg {
                        name: r,
                        owned: true,
                    });
                }
                if let Some(&idx) = fx.locals.get(name) {
                    return Ok(Val::Local(idx));
                }
                let is_array = *self.cx.globals.get(name).unwrap_or(&false);
                let r = fx.alloc(line)?;
                if is_array {
                    // Array names decay to their address.
                    self.asm.line(format!("la   {r}, {name}"));
                } else {
                    self.asm.line(format!("la   {r}, {name}"));
                    let class = Alias::Global(name.clone());
                    self.emit_load(r, r, &class, fx);
                }
                Ok(Val::Reg {
                    name: r,
                    owned: true,
                })
            }
            Expr::Index(name, idx) => {
                let (addr, class) = self.element_addr(name, idx, fx, line)?;
                let ar = reg_name(addr);
                self.emit_load(ar, ar, &class, fx);
                Ok(addr)
            }
            Expr::Deref(ptr) => {
                let p = self.expr(ptr, fx, line)?;
                let pr = self.to_owned_reg(p, fx, line)?;
                let r = reg_name(pr);
                self.emit_load(r, r, &Alias::Unknown, fx);
                Ok(pr)
            }
            Expr::AddrOf(place) => match place.as_ref() {
                Place::Var(name) => {
                    let r = fx.alloc(line)?;
                    self.asm.line(format!("la   {r}, {name}"));
                    Ok(Val::Reg {
                        name: r,
                        owned: true,
                    })
                }
                Place::Index(name, idx) => {
                    let (addr, _class) = self.element_addr(name, idx, fx, line)?;
                    Ok(addr)
                }
                Place::Deref(inner) => self.expr(inner, fx, line),
            },
            Expr::Unary(op, inner) => {
                let v = self.expr(inner, fx, line)?;
                if let Val::Imm(i) = v {
                    return Ok(Val::Imm(match op {
                        UnOp::Neg => i.wrapping_neg(),
                        UnOp::Not => (i == 0) as i64,
                        UnOp::BitNot => !i,
                    }));
                }
                let r = self.to_owned_reg(v, fx, line)?;
                let rn = reg_name(r);
                match op {
                    UnOp::Neg => self.asm.line(format!("neg  {rn}, {rn}")),
                    UnOp::Not => self.asm.line(format!("seqz {rn}, {rn}")),
                    UnOp::BitNot => self.asm.line(format!("not  {rn}, {rn}")),
                };
                Ok(r)
            }
            Expr::Binary(op, a, b) => self.binary(*op, a, b, fx, line),
            Expr::Call(name, args) => self.call(name, args, fx, line),
        }
    }

    fn binary(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        fx: &mut FnGen,
        line: usize,
    ) -> Result<Val, CcError> {
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            return self.short_circuit(op, a, b, fx, line);
        }
        let va = self.expr(a, fx, line)?;
        let vb = self.expr(b, fx, line)?;
        if let (Val::Imm(x), Val::Imm(y)) = (va, vb) {
            let op = if op == BinOp::Sub && self.sabotage == Some(CodegenSabotage::ConstFold) {
                // Mis-fold constant subtraction as addition; the runtime
                // `sub` path is untouched, so only folded expressions
                // diverge from the spec interpreter.
                BinOp::Add
            } else {
                op
            };
            return Ok(Val::Imm(fold(op, x, y)));
        }
        // Immediate forms for commutative/offset-friendly operations.
        if let Val::Imm(y) = vb {
            if let Some(mn) = imm_mnemonic(op) {
                if imm_fits(op, y) {
                    let d = self.to_owned_reg(va, fx, line)?;
                    let dn = reg_name(d);
                    self.asm.line(format!("{mn} {dn}, {dn}, {y}"));
                    return Ok(d);
                }
            }
        }
        let ra = self.to_reg(va, fx, line)?;
        let rb = self.to_reg(vb, fx, line)?;
        // Destination: reuse an owned operand or allocate.
        let dest = if is_owned(ra) {
            reg_name(ra)
        } else if is_owned(rb) {
            reg_name(rb)
        } else {
            fx.alloc(line)?
        };
        let (an, bn) = (reg_name(ra), reg_name(rb));
        match op {
            BinOp::Add => self.asm.line(format!("add  {dest}, {an}, {bn}")),
            BinOp::Sub => self.asm.line(format!("sub  {dest}, {an}, {bn}")),
            BinOp::Mul => self.asm.line(format!("mul  {dest}, {an}, {bn}")),
            BinOp::Div => self.asm.line(format!("div  {dest}, {an}, {bn}")),
            BinOp::Rem => self.asm.line(format!("rem  {dest}, {an}, {bn}")),
            BinOp::And => self.asm.line(format!("and  {dest}, {an}, {bn}")),
            BinOp::Or => self.asm.line(format!("or   {dest}, {an}, {bn}")),
            BinOp::Xor => self.asm.line(format!("xor  {dest}, {an}, {bn}")),
            BinOp::Shl => self.asm.line(format!("sll  {dest}, {an}, {bn}")),
            BinOp::Shr => self.asm.line(format!("sra  {dest}, {an}, {bn}")),
            BinOp::Lt => self.asm.line(format!("slt  {dest}, {an}, {bn}")),
            BinOp::Gt => self.asm.line(format!("slt  {dest}, {bn}, {an}")),
            BinOp::Le => {
                self.asm.line(format!("slt  {dest}, {bn}, {an}"));
                self.asm.line(format!("xori {dest}, {dest}, 1"))
            }
            BinOp::Ge => {
                self.asm.line(format!("slt  {dest}, {an}, {bn}"));
                self.asm.line(format!("xori {dest}, {dest}, 1"))
            }
            BinOp::Eq => {
                self.asm.line(format!("sub  {dest}, {an}, {bn}"));
                self.asm.line(format!("seqz {dest}, {dest}"))
            }
            BinOp::Ne => {
                self.asm.line(format!("sub  {dest}, {an}, {bn}"));
                self.asm.line(format!("snez {dest}, {dest}"))
            }
            BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
        };
        // Free whichever owned operand is not the destination.
        for r in [ra, rb] {
            if is_owned(r) && reg_name(r) != dest {
                fx.free_scratch_reg(reg_name(r));
            }
        }
        Ok(Val::Reg {
            name: dest,
            owned: true,
        })
    }

    fn short_circuit(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        fx: &mut FnGen,
        line: usize,
    ) -> Result<Val, CcError> {
        let dest = fx.alloc(line)?;
        let end = self.fresh("sc");
        let va = self.expr(a, fx, line)?;
        let ra = self.to_reg(va, fx, line)?;
        self.asm.line(format!("snez {dest}, {}", reg_name(ra)));
        fx.release(ra);
        match op {
            BinOp::LAnd => self.asm.line(format!("beqz {dest}, {end}")),
            BinOp::LOr => self.asm.line(format!("bnez {dest}, {end}")),
            _ => unreachable!(),
        };
        let vb = self.expr(b, fx, line)?;
        let rb = self.to_reg(vb, fx, line)?;
        self.asm.line(format!("snez {dest}, {}", reg_name(rb)));
        fx.release(rb);
        self.asm.label(&end);
        Ok(Val::Reg {
            name: dest,
            owned: true,
        })
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        fx: &mut FnGen,
        line: usize,
    ) -> Result<Val, CcError> {
        if name == "omp_set_num_threads" {
            // Team sizes come from each region's trip count; the call is
            // accepted for source compatibility and has no effect.
            let v = self.expr(&args[0], fx, line)?;
            fx.release(v);
            return Ok(Val::Imm(0));
        }
        if name == "__roi_start" || name == "__roi_end" {
            // A region-of-interest marker: not a call at all. It lowers
            // to a label the hybrid driver targets (`lbp-run --roi`),
            // anchored on a nop so the marker owns a concrete pc even at
            // a block boundary.
            self.asm.label(name);
            self.asm.line("nop");
            return Ok(Val::Imm(0));
        }
        // Evaluate arguments into spill slots (robust against nested
        // calls), then save live scratch, reload the arguments and call.
        for (i, arg) in args.iter().enumerate() {
            let v = self.expr(arg, fx, line)?;
            let r = self.to_reg(v, fx, line)?;
            self.asm.line(format!(
                "sw   {}, {}(sp)",
                reg_name(r),
                OFF_SPILL + 4 * (SCRATCH.len() + i) as i32
            ));
            fx.release(r);
        }
        // Save the scratch registers still holding enclosing-expression
        // values.
        let live: Vec<usize> = (0..SCRATCH.len())
            .filter(|i| !fx.free_scratch.contains(i))
            .collect();
        for &i in &live {
            self.asm.line(format!(
                "sw   {}, {}(sp)",
                SCRATCH[i],
                OFF_SPILL + 4 * i as i32
            ));
        }
        // The spill stores must land before the argument reloads.
        self.asm.line("p_syncm");
        fx.pending.clear();
        for i in 0..args.len() {
            self.asm.line(format!(
                "lw   a{i}, {}(sp)",
                OFF_SPILL + 4 * (SCRATCH.len() + i) as i32
            ));
        }
        if !args.is_empty() {
            // The a-register values must be architecturally ready before
            // the callee reads them; the loads complete out of order but
            // register renaming orders them — no fence needed.
        }
        self.asm.line(format!("jal  {name}"));
        // The callee's epilogue p_syncm drained every store, including
        // our scratch saves.
        for &i in &live {
            self.asm.line(format!(
                "lw   {}, {}(sp)",
                SCRATCH[i],
                OFF_SPILL + 4 * i as i32
            ));
        }
        fx.pending.clear();
        let returns = self
            .cx
            .signatures
            .get(name)
            .map(|&(_, r)| r)
            .unwrap_or(false);
        if returns {
            let r = fx.alloc(line)?;
            self.asm.line(format!("mv   {r}, a0"));
            Ok(Val::Reg {
                name: r,
                owned: true,
            })
        } else {
            Ok(Val::Imm(0))
        }
    }

    /// Emits a branch to `target` when `cond` is false, using native
    /// branch instructions for comparisons.
    fn branch_if_false(
        &mut self,
        cond: &Expr,
        target: &str,
        fx: &mut FnGen,
    ) -> Result<(), CcError> {
        let line = 0;
        if let Expr::Binary(op, a, b) = cond {
            if let Some((mn, swap)) = inverse_branch(*op) {
                let va = self.expr(a, fx, line)?;
                let vb = self.expr(b, fx, line)?;
                let ra = self.to_reg(va, fx, line)?;
                let rb = self.to_reg(vb, fx, line)?;
                let (x, y) = if swap {
                    (reg_name(rb), reg_name(ra))
                } else {
                    (reg_name(ra), reg_name(rb))
                };
                self.asm.line(format!("{mn} {x}, {y}, {target}"));
                fx.release(ra);
                fx.release(rb);
                return Ok(());
            }
        }
        match self.expr(cond, fx, line)? {
            Val::Imm(0) => {
                self.asm.line(format!("j    {target}"));
            }
            Val::Imm(_) => {}
            v => {
                let r = self.to_reg(v, fx, line)?;
                self.asm.line(format!("beqz {}, {target}", reg_name(r)));
                fx.release(r);
            }
        }
        Ok(())
    }

    // ----- value plumbing -----

    /// Materializes a value into some register (owned or local).
    #[allow(clippy::wrong_self_convention)] // emits code; `self` is the generator
    fn to_reg(&mut self, v: Val, fx: &mut FnGen, line: usize) -> Result<Val, CcError> {
        match v {
            Val::Imm(i) => {
                let r = fx.alloc(line)?;
                self.asm.line(format!("li   {r}, {i}"));
                Ok(Val::Reg {
                    name: r,
                    owned: true,
                })
            }
            other => Ok(other),
        }
    }

    /// Materializes a value into an *owned scratch* register that may be
    /// overwritten.
    #[allow(clippy::wrong_self_convention)] // emits code; `self` is the generator
    fn to_owned_reg(&mut self, v: Val, fx: &mut FnGen, line: usize) -> Result<Val, CcError> {
        match v {
            Val::Reg { owned: true, .. } => Ok(v),
            Val::Imm(i) => {
                let r = fx.alloc(line)?;
                self.asm.line(format!("li   {r}, {i}"));
                Ok(Val::Reg {
                    name: r,
                    owned: true,
                })
            }
            Val::Local(idx) => {
                let r = fx.alloc(line)?;
                self.asm.line(format!("mv   {r}, {}", LOCALS[idx]));
                Ok(Val::Reg {
                    name: r,
                    owned: true,
                })
            }
            Val::Reg { name, owned: false } => {
                let r = fx.alloc(line)?;
                self.asm.line(format!("mv   {r}, {name}"));
                Ok(Val::Reg {
                    name: r,
                    owned: true,
                })
            }
        }
    }

    /// Moves a value into a named register and releases it.
    fn move_into(&mut self, dest: &str, v: Val, fx: &mut FnGen) {
        match v {
            Val::Imm(i) => {
                self.asm.line(format!("li   {dest}, {i}"));
            }
            Val::Local(idx) => {
                if LOCALS[idx] != dest {
                    self.asm.line(format!("mv   {dest}, {}", LOCALS[idx]));
                }
            }
            Val::Reg { name, .. } => {
                if name != dest {
                    self.asm.line(format!("mv   {dest}, {name}"));
                }
                fx.release(v);
            }
        }
    }
}

/// Per-function emission state.
struct FnGen {
    locals: HashMap<String, usize>,
    /// Local array name -> byte offset from sp.
    arrays: HashMap<String, i32>,
    /// This function's frame size (the 96-byte header + array storage).
    frame: i32,
    n_locals: usize,
    free_scratch: Vec<usize>,
    pending: Pending,
    epilogue: String,
    /// `(continue_target, break_target)` labels of enclosing loops.
    loop_labels: Vec<(String, String)>,
}

impl FnGen {
    fn alloc(&mut self, line: usize) -> Result<&'static str, CcError> {
        let i = self.free_scratch.pop().ok_or_else(|| {
            CcError::new(line, "expression too complex for the scratch register pool")
        })?;
        Ok(SCRATCH[i])
    }

    fn free_scratch_reg(&mut self, name: &str) {
        if let Some(i) = SCRATCH.iter().position(|&s| s == name) {
            debug_assert!(!self.free_scratch.contains(&i), "double free of {name}");
            self.free_scratch.push(i);
        }
    }

    fn release(&mut self, v: Val) {
        if let Val::Reg { name, owned: true } = v {
            self.free_scratch_reg(name);
        }
    }
}

/// The register a value lives in (must not be `Imm`).
fn reg_name(v: Val) -> &'static str {
    match v {
        Val::Reg { name, .. } => name,
        Val::Local(idx) => LOCALS[idx],
        Val::Imm(_) => unreachable!("immediate has no register"),
    }
}

fn is_owned(v: Val) -> bool {
    matches!(v, Val::Reg { owned: true, .. })
}

fn fold(op: BinOp, x: i64, y: i64) -> i64 {
    let (x32, y32) = (x as i32, y as i32);
    (match op {
        BinOp::Add => x32.wrapping_add(y32),
        BinOp::Sub => x32.wrapping_sub(y32),
        BinOp::Mul => x32.wrapping_mul(y32),
        BinOp::Div => {
            if y32 == 0 {
                -1
            } else {
                x32.wrapping_div(y32)
            }
        }
        BinOp::Rem => {
            if y32 == 0 {
                x32
            } else {
                x32.wrapping_rem(y32)
            }
        }
        BinOp::And => x32 & y32,
        BinOp::Or => x32 | y32,
        BinOp::Xor => x32 ^ y32,
        BinOp::Shl => x32.wrapping_shl(y32 as u32 & 31),
        BinOp::Shr => x32.wrapping_shr(y32 as u32 & 31),
        BinOp::Lt => (x32 < y32) as i32,
        BinOp::Le => (x32 <= y32) as i32,
        BinOp::Gt => (x32 > y32) as i32,
        BinOp::Ge => (x32 >= y32) as i32,
        BinOp::Eq => (x32 == y32) as i32,
        BinOp::Ne => (x32 != y32) as i32,
        BinOp::LAnd => ((x32 != 0) && (y32 != 0)) as i32,
        BinOp::LOr => ((x32 != 0) || (y32 != 0)) as i32,
    }) as i64
}

/// The `op rd, rs, imm` mnemonic for immediate-friendly operations.
fn imm_mnemonic(op: BinOp) -> Option<&'static str> {
    Some(match op {
        BinOp::Add => "addi",
        BinOp::And => "andi",
        BinOp::Or => "ori",
        BinOp::Xor => "xori",
        BinOp::Shl => "slli",
        BinOp::Shr => "srai",
        BinOp::Lt => "slti",
        _ => return None,
    })
}

fn imm_fits(op: BinOp, y: i64) -> bool {
    match op {
        BinOp::Shl | BinOp::Shr => (0..32).contains(&y),
        _ => (-2048..=2047).contains(&y),
    }
}

/// The branch mnemonic taken when `op` is FALSE, with operand swap.
fn inverse_branch(op: BinOp) -> Option<(&'static str, bool)> {
    Some(match op {
        BinOp::Lt => ("bge ", false),
        BinOp::Ge => ("blt ", false),
        BinOp::Gt => ("bge ", true),
        BinOp::Le => ("blt ", true),
        BinOp::Eq => ("bne ", false),
        BinOp::Ne => ("beq ", false),
        _ => return None,
    })
}

/// Whether an expression contains a function call.
fn expr_calls(e: &Expr) -> bool {
    match e {
        Expr::Call(..) => true,
        Expr::Int(_) | Expr::Var(_) => false,
        Expr::Index(_, inner) | Expr::Deref(inner) | Expr::Unary(_, inner) => expr_calls(inner),
        Expr::AddrOf(place) => match place.as_ref() {
            Place::Index(_, inner) | Place::Deref(inner) => expr_calls(inner),
            Place::Var(_) => false,
        },
        Expr::Binary(_, a, b) => expr_calls(a) || expr_calls(b),
    }
}

/// Collects the local arrays of a function, in declaration order.
fn collect_local_arrays(f: &Function) -> Vec<(String, u32)> {
    fn walk(stmts: &[Stmt], out: &mut Vec<(String, u32)>) {
        for s in stmts {
            match s {
                Stmt::DeclArray { name, elems, .. } => out.push((name.clone(), *elems)),
                Stmt::If { then, els, .. } => {
                    walk(then, out);
                    walk(els, out);
                }
                Stmt::While { body, .. } => walk(body, out),
                Stmt::For {
                    init, step, body, ..
                } => {
                    if let Some(i) = init.as_ref() {
                        walk(std::slice::from_ref(i), out);
                    }
                    walk(body, out);
                    if let Some(st) = step.as_ref() {
                        walk(std::slice::from_ref(st), out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&f.body, &mut out);
    out
}

/// Collects the register locals of a function: parameters first, then
/// declarations in source order.
fn collect_locals(f: &Function) -> Vec<String> {
    let mut out = f.params.clone();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Decl { name, .. } if !out.contains(name) => {
                    out.push(name.clone());
                }
                Stmt::If { then, els, .. } => {
                    walk(then, out);
                    walk(els, out);
                }
                Stmt::While { body, .. } => walk(body, out),
                Stmt::For {
                    init, step, body, ..
                } => {
                    if let Some(i) = init.as_ref() {
                        walk(std::slice::from_ref(i), out);
                    }
                    walk(body, out);
                    if let Some(st) = step.as_ref() {
                        walk(std::slice::from_ref(st), out);
                    }
                }
                // Parallel bodies become separate functions with their
                // own locals.
                _ => {}
            }
        }
    }
    walk(&f.body, &mut out);
    out
}

/// The set of alias classes a statement list may store to (used at loop
/// heads).
fn stores_of(stmts: &[Stmt], cx: &Checked) -> Pending {
    let mut p = Pending::default();
    fn walk(stmts: &[Stmt], p: &mut Pending, cx: &Checked) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, rhs, .. } => {
                    if expr_calls(rhs) {
                        p.unknown = true;
                    }
                    match lhs {
                        Place::Var(name) => {
                            if cx.globals.contains_key(name) {
                                p.syms.insert(name.clone());
                            }
                        }
                        Place::Index(name, _) => {
                            if cx.globals.contains_key(name) {
                                p.syms.insert(name.clone());
                            } else {
                                // A frame array (keyed so array-only loops
                                // stay fenceless) or an unknown pointer.
                                p.syms.insert(format!("%frame%{name}"));
                                p.unknown = true;
                            }
                        }
                        Place::Deref(_) => p.unknown = true,
                    }
                }
                // Calls drain at their epilogue, but their writes are
                // unknown to the caller (also when nested in expressions).
                Stmt::Expr(e, _) if expr_calls(e) => {
                    p.unknown = true;
                }
                Stmt::If { then, els, .. } => {
                    walk(then, p, cx);
                    walk(els, p, cx);
                }
                Stmt::While { body, .. } => walk(body, p, cx),
                Stmt::For {
                    init, step, body, ..
                } => {
                    if let Some(i) = init.as_ref() {
                        walk(std::slice::from_ref(i), p, cx);
                    }
                    walk(body, p, cx);
                    if let Some(st) = step.as_ref() {
                        walk(std::slice::from_ref(st), p, cx);
                    }
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut p, cx);
    p
}
