//! End-to-end compiler tests: compile mini-C, run on the LBP simulator,
//! check memory.

use lbp_cc::compile;
use lbp_sim::{LbpConfig, Machine};

/// Compiles, runs, and returns the machine plus the image.
fn run(cores: usize, src: &str) -> (Machine, lbp_asm::Image) {
    let compiled = compile(src).unwrap_or_else(|e| panic!("{e}"));
    let mut m = Machine::new(LbpConfig::cores(cores), &compiled.image)
        .unwrap_or_else(|e| panic!("{e}\n{}", compiled.asm));
    let report = m
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("{e}\n{}", compiled.asm));
    assert!(report.exited, "program must exit");
    (m, compiled.image)
}

fn word(m: &mut Machine, image: &lbp_asm::Image, sym: &str, idx: u32) -> i32 {
    m.peek_shared(image.symbol(sym).unwrap_or_else(|| panic!("symbol {sym}")) + 4 * idx)
        .unwrap() as i32
}

#[test]
fn arithmetic_and_globals() {
    let (mut m, img) = run(
        1,
        "int out[4];
void main(void) {
    out[0] = 2 + 3 * 4;
    out[1] = (2 + 3) * 4;
    out[2] = 17 / 5 + 17 % 5;
    out[3] = 1 << 10;
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 14);
    assert_eq!(word(&mut m, &img, "out", 1), 20);
    assert_eq!(word(&mut m, &img, "out", 2), 5);
    assert_eq!(word(&mut m, &img, "out", 3), 1024);
}

#[test]
fn control_flow() {
    let (mut m, img) = run(
        1,
        "int out[3];
int abs(int x) { if (x < 0) { return -x; } return x; }
void main(void) {
    int i; int s;
    s = 0;
    for (i = 1; i <= 10; i++) s += i;
    out[0] = s;
    out[1] = abs(-42);
    i = 0;
    while (i < 5) i++;
    out[2] = i;
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 55);
    assert_eq!(word(&mut m, &img, "out", 1), 42);
    assert_eq!(word(&mut m, &img, "out", 2), 5);
}

#[test]
fn comparisons_and_logic() {
    let (mut m, img) = run(
        1,
        "int out[8];
void main(void) {
    out[0] = 3 < 5;  out[1] = 5 < 3;
    out[2] = -1 < 0; out[3] = 3 <= 3;
    out[4] = 1 && 2; out[5] = 0 || 0;
    out[6] = !7;     out[7] = (3 == 3) + (3 != 3);
}",
    );
    let expect = [1, 0, 1, 1, 1, 0, 0, 1];
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(word(&mut m, &img, "out", i as u32), *e, "out[{i}]");
    }
}

#[test]
fn pointers_and_arrays() {
    let (mut m, img) = run(
        1,
        "int v[8];
int sum(int *p, int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}
void main(void) {
    int i;
    for (i = 0; i < 8; i++) v[i] = i * i;
    v[0] = sum(v, 8);
}",
    );
    // 0+1+4+9+16+25+36+49 = 140.
    assert_eq!(word(&mut m, &img, "v", 0), 140);
}

#[test]
fn recursion() {
    let (mut m, img) = run(
        1,
        "int out[1];
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main(void) { out[0] = fib(12); }",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 144);
}

#[test]
fn global_initializers() {
    let (mut m, img) = run(
        1,
        "int ones[4] = {[0 ... 3] = 1};
int x = 7;
int out[2];
void main(void) {
    out[0] = ones[0] + ones[3];
    out[1] = x;
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 2);
    assert_eq!(word(&mut m, &img, "out", 1), 7);
}

#[test]
fn parallel_for_basic() {
    let (mut m, img) = run(
        2,
        "#define NUM_HART 8
int v[NUM_HART];
void thread(int t) { v[t] = t * 10; }
void main(void) {
    int t;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread(t);
}",
    );
    for t in 0..8 {
        assert_eq!(word(&mut m, &img, "v", t), 10 * t as i32);
    }
}

#[test]
fn parallel_for_inline_body() {
    // The body itself is parallelized (no separate thread function).
    let (mut m, img) = run(
        2,
        "int v[8];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 8; t++) { int x; x = t + 1; v[t] = x * x; }
}",
    );
    for t in 0..8u32 {
        assert_eq!(word(&mut m, &img, "v", t), ((t + 1) * (t + 1)) as i32);
    }
}

#[test]
fn two_regions_with_barrier() {
    // The paper's Fig. 4: set then get, separated by the hardware barrier.
    let (mut m, img) = run(
        2,
        "#define NUM_HART 8
int v[NUM_HART];
int w[NUM_HART];
void thread_set(int t) { v[t] = t + 1; }
void thread_get(int t) { w[t] = v[t] * 2; }
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread_set(t);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread_get(t);
}",
    );
    for t in 0..8u32 {
        assert_eq!(word(&mut m, &img, "w", t), 2 * (t as i32 + 1));
    }
}

#[test]
fn parallel_sections() {
    let (mut m, img) = run(
        1,
        "int s[4];
void main(void) {
#pragma omp parallel sections
{
#pragma omp section
    { s[0] = 10; }
#pragma omp section
    { s[1] = 20; }
#pragma omp section
    { s[2] = 30; }
#pragma omp section
    { s[3] = 40; }
}
    s[0] = s[0] + s[1] + s[2] + s[3];
}",
    );
    assert_eq!(word(&mut m, &img, "s", 0), 100);
}

#[test]
fn paper_fig18_matmul_source_compiles_and_runs() {
    // The paper's Fig. 18 program, verbatim shape (h = 16).
    let src = "
#define NUM_HART 16
#define LINE_X 16
#define COLUMN_X 8
#define LINE_Y 8
#define COLUMN_Y 16
#define LINE_Z 16
#define COLUMN_Z 16
#include <det_omp.h>

int X[128] = {[0 ... 127] = 1};
int Y[128] = {[0 ... 127] = 1};
int Z[256];

void thread(int t) {
    int i; int j; int k; int l; int tmp;
    for (l = 0, i = t; l < 1; l++) {
        for (j = 0; j < COLUMN_Z; j++) {
            tmp = 0;
            for (k = 0; k < COLUMN_X; k++) {
                tmp += X[i * COLUMN_X + k] * Y[k * COLUMN_Y + j];
            }
            Z[i * COLUMN_Z + j] = tmp;
        }
        i++;
    }
}

void main(void) {
    int t;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread(t);
}";
    // `for (l = 0, i = t; ...)` comma-init is not in the subset; rewrite:
    let src = src.replace(
        "for (l = 0, i = t; l < 1; l++) {",
        "i = t; for (l = 0; l < 1; l++) {",
    );
    let (mut m, img) = run(4, &src);
    for e in 0..256u32 {
        assert_eq!(word(&mut m, &img, "Z", e), 8, "Z[{e}]");
    }
}

#[test]
fn syncm_inserted_for_readback() {
    // Read-after-write to the same array within one hart: the compiler
    // must fence (LBP reorders loads past stores freely).
    let (mut m, img) = run(
        1,
        "int v[2];
int out[1];
void main(void) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 100; i++) {
        v[0] = i;
        acc += v[0];
    }
    out[0] = acc;
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 4950);
}

#[test]
fn compile_errors_are_reported() {
    assert!(compile("void main(void) { undefined(); }").is_err());
    assert!(compile("int x = ;").is_err());
    assert!(compile("void f() { }").is_err()); // no main
}

#[test]
fn generated_asm_is_available() {
    let c = compile("void main(void) { }").unwrap();
    assert!(c.asm.contains("p_ret"));
    assert!(c.asm.contains("main:"));
}

#[test]
fn deterministic_compilation_and_execution() {
    let src = "int v[4];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) { v[t] = t; }
}";
    let a = compile(src).unwrap().asm;
    let b = compile(src).unwrap().asm;
    assert_eq!(a, b, "compilation is deterministic");
    let image = compile(src).unwrap().image;
    let cycles = |_| {
        let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
        m.run(10_000_000).unwrap().stats.cycles
    };
    assert_eq!(cycles(()), cycles(()));
}

#[test]
fn break_and_continue() {
    let (mut m, img) = run(
        1,
        "int out[3];
void main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 100; i++) {
        if (i == 10) break;
        s += i;
    }
    out[0] = s;                 // 0+..+9 = 45
    s = 0;
    for (i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        s += i;
    }
    out[1] = s;                 // 1+3+5+7+9 = 25
    s = 0; i = 0;
    while (1) {
        i++;
        if (i > 5) break;
        if (i == 3) continue;
        s += i;
    }
    out[2] = s;                 // 1+2+4+5 = 12
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 45);
    assert_eq!(word(&mut m, &img, "out", 1), 25);
    assert_eq!(word(&mut m, &img, "out", 2), 12);
}

#[test]
fn break_outside_loop_rejected() {
    let err = compile("void main(void) { break; }").unwrap_err();
    assert!(err.to_string().contains("outside a loop"));
}

#[test]
fn do_while_and_comma_for_init() {
    let (mut m, img) = run(
        1,
        "int out[2];
void main(void) {
    int i; int l; int s;
    s = 0; i = 5;
    do {
        s += i;
        i--;
    } while (i > 0);
    out[0] = s;                     // 5+4+3+2+1 = 15
    s = 0;
    for (l = 0, i = 10; l < 3; l++, i++) s += i;
    out[1] = s;                     // 10+11+12 = 33
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 15);
    assert_eq!(word(&mut m, &img, "out", 1), 33);
}

#[test]
fn paper_fig18_for_header_compiles_verbatim() {
    // With comma-lists in for headers, the paper's exact loop shape works.
    let (mut m, img) = run(
        1,
        "int Z[4];
void main(void) {
    int l; int i;
    for (l = 0, i = 2; l < 2; l++, i++) Z[l] = i;
}",
    );
    assert_eq!(word(&mut m, &img, "Z", 0), 2);
    assert_eq!(word(&mut m, &img, "Z", 1), 3);
}

#[test]
fn continue_in_do_while_is_rejected() {
    let err = compile(
        "void main(void) { int i; i = 0; do { i++; if (i == 1) continue; } while (i < 3); }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("do/while"));
}

#[test]
fn paper_fig16_sensor_fusion_from_c() {
    // The §6 application written as plain C: each section polls its
    // memory-mapped sensor register through a pointer; the sequential
    // part fuses the four readings and writes the actuator. Device
    // timing is jittered; the fused outputs must not change.
    use lbp_sim::{InputDevice, IoBus};
    let src = format!(
        "int s[4];
void main(void) {{
#pragma omp parallel sections
{{
#pragma omp section
    {{ int p; int v; p = {in0}; do {{ v = *p; }} while (v >= 0); s[0] = v & 2147483647; }}
#pragma omp section
    {{ int p; int v; p = {in1}; do {{ v = *p; }} while (v >= 0); s[1] = v & 2147483647; }}
#pragma omp section
    {{ int p; int v; p = {in2}; do {{ v = *p; }} while (v >= 0); s[2] = v & 2147483647; }}
#pragma omp section
    {{ int p; int v; p = {in3}; do {{ v = *p; }} while (v >= 0); s[3] = v & 2147483647; }}
}}
    {{
        int f; int q;
        f = (s[0] + s[1] + s[2] + s[3]) / 4;
        q = {out};
        *q = f;
    }}
}}",
        in0 = IoBus::input_addr(0),
        in1 = IoBus::input_addr(1),
        in2 = IoBus::input_addr(2),
        in3 = IoBus::input_addr(3),
        out = IoBus::output_addr(0),
    );
    // Braces-as-block statements are not in the subset; flatten the
    // trailing block.
    let src = src.replace("    {\n        int f; int q;", "    int f; int q;");
    let src = src.replace("        f = (", "    f = (");
    let src = src.replace("        q = ", "    q = ");
    let src = src.replace("        *q = f;\n    }", "    *q = f;");
    let compiled = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let run_with = |jitter: u64| {
        let mut m = Machine::new(LbpConfig::cores(1), &compiled.image).unwrap();
        for i in 0..4u64 {
            m.io_mut().add_input(InputDevice::scripted([(
                10 + i * jitter,
                (10 * (i + 1)) as u32,
            )]));
        }
        let out = m.io_mut().add_output();
        m.run(10_000_000)
            .unwrap_or_else(|e| panic!("{e}\n{}", compiled.asm));
        m.io_mut().output(out).values()
    };
    let fast = run_with(3);
    let slow = run_with(700);
    assert_eq!(fast, vec![25]); // (10+20+30+40)/4
    assert_eq!(fast, slow, "fusion must be timing-independent");
}

#[test]
fn local_arrays_on_the_stack() {
    let (mut m, img) = run(
        1,
        "int out[3];
int sum8(int *p) {
    int i; int s;
    s = 0;
    for (i = 0; i < 8; i++) s += p[i];
    return s;
}
void main(void) {
    int buf[8];
    int i;
    for (i = 0; i < 8; i++) buf[i] = i * i;
    out[0] = sum8(buf);          // array decays to a frame pointer
    out[1] = buf[3];
    out[2] = *(&buf[5]);
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 140);
    assert_eq!(word(&mut m, &img, "out", 1), 9);
    assert_eq!(word(&mut m, &img, "out", 2), 25);
}

#[test]
fn copy_matmul_in_c_stages_the_x_row_locally() {
    // The paper's *copy* version, straight from C: each member copies its
    // X row into a stack array before the MAC loops (h = 16).
    let (mut m, img) = run(
        4,
        "#define H 16
#define M 8
int X[128] = {[0 ... 127] = 1};
int Y[128] = {[0 ... 127] = 1};
int Z[256];
void thread(int t) {
    int row[8];
    int j; int k; int tmp;
    for (k = 0; k < M; k++) row[k] = X[t * M + k];
    for (j = 0; j < H; j++) {
        tmp = 0;
        for (k = 0; k < M; k++) {
            tmp += row[k] * Y[k * H + j];
        }
        Z[t * H + j] = tmp;
    }
}
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < H; t++) thread(t);
}",
    );
    for e in 0..256u32 {
        assert_eq!(word(&mut m, &img, "Z", e), 8, "Z[{e}]");
    }
}

#[test]
fn recursive_functions_with_arrays_keep_frames_separate() {
    let (mut m, img) = run(
        1,
        "int out[1];
int f(int depth) {
    int scratch[4];
    int i; int s;
    for (i = 0; i < 4; i++) scratch[i] = depth * 10 + i;
    if (depth > 0) {
        s = f(depth - 1);
    } else {
        s = 0;
    }
    // our frame must be intact after the recursive call
    return s + scratch[0] + scratch[3];
}
void main(void) { out[0] = f(3); }",
    );
    // depth d contributes (10d) + (10d+3); sum over d=0..3 = 60+6+60...
    // d=3: 30+33, d=2: 20+23, d=1: 10+13, d=0: 0+3 => 132.
    assert_eq!(word(&mut m, &img, "out", 0), 132);
}

#[test]
fn tiled_matmul_in_c_with_three_stack_arrays() {
    // The paper's *tiled* version from C at h = 16 (4x4 tiles): each
    // member stages an X tile and a Y tile in its frame, accumulates into
    // a zt tile, and writes one Z tile — five loop levels, three local
    // arrays, exactly the §7 kernel.
    let (mut m, img) = run(
        4,
        "#define H 16
#define M 8
#define TH 4
#define TK 2
int X[128] = {[0 ... 127] = 1};
int Y[128] = {[0 ... 127] = 1};
int Z[256];
void thread(int t) {
    int zt[16];
    int xt[8];
    int yt[8];
    int ti; int tj; int kk; int i2; int j2; int k2; int acc;
    ti = t / TH;
    tj = t % TH;
    for (i2 = 0; i2 < 16; i2++) zt[i2] = 0;
    for (kk = 0; kk < TH; kk++) {
        for (i2 = 0; i2 < TH; i2++) {
            for (k2 = 0; k2 < TK; k2++) {
                xt[i2 * TK + k2] = X[(ti * TH + i2) * M + kk * TK + k2];
                yt[k2 * TH + i2] = Y[(kk * TK + k2) * H + tj * TH + i2];
            }
        }
        for (i2 = 0; i2 < TH; i2++) {
            for (j2 = 0; j2 < TH; j2++) {
                acc = zt[i2 * TH + j2];
                for (k2 = 0; k2 < TK; k2++) {
                    acc += xt[i2 * TK + k2] * yt[k2 * TH + j2];
                }
                zt[i2 * TH + j2] = acc;
            }
        }
    }
    for (i2 = 0; i2 < TH; i2++) {
        for (j2 = 0; j2 < TH; j2++) {
            Z[(ti * TH + i2) * H + tj * TH + j2] = zt[i2 * TH + j2];
        }
    }
}
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < H; t++) thread(t);
}",
    );
    for e in 0..256u32 {
        assert_eq!(word(&mut m, &img, "Z", e), 8, "Z[{e}]");
    }
}

#[test]
fn list_initializers_fill_leading_elements() {
    let (mut m, img) = run(
        1,
        "int v[6] = {10, -20, 30};
int out[2];
void main(void) {
    out[0] = v[0] + v[1] + v[2];
    out[1] = v[3] + v[4] + v[5];   // the tail is zero
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 20);
    assert_eq!(word(&mut m, &img, "out", 1), 0);
}

#[test]
fn nested_calls_spill_live_temporaries() {
    // Calls inside expressions force the codegen to spill live scratch
    // registers around the call and reload them after it.
    let (mut m, img) = run(
        1,
        "int out[3];
int twice(int x) { return x * 2; }
int inc(int x) { return x + 1; }
void main(void) {
    out[0] = twice(1) + twice(2) + twice(3);     // 2+4+6 = 12
    out[1] = inc(twice(inc(4)));                 // ((4+1)*2)+1 = 11
    out[2] = 1000 + twice(inc(0)) - inc(1);      // 1000+2-2 = 1000
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 12);
    assert_eq!(word(&mut m, &img, "out", 1), 11);
    assert_eq!(word(&mut m, &img, "out", 2), 1000);
}

#[test]
fn six_argument_calls() {
    let (mut m, img) = run(
        1,
        "int out[1];
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + b + c + d + e + f;
}
void main(void) { out[0] = sum6(1, 2, 3, 4, 5, 6); }",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 21);
}

#[test]
fn seven_arguments_rejected() {
    let err = compile(
        "int f(int a, int b, int c, int d, int e, int g, int h) { return a; }
void main(void) { f(1,2,3,4,5,6,7); }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("at most"));
}

#[test]
fn globals_shadowed_by_locals() {
    let (mut m, img) = run(
        1,
        "int x = 100;
int out[2];
void f(void) { out[1] = x; }        // reads the global
void main(void) {
    int x;
    x = 5;
    out[0] = x;                     // reads the local
    f();
}",
    );
    assert_eq!(word(&mut m, &img, "out", 0), 5);
    assert_eq!(word(&mut m, &img, "out", 1), 100);
}

#[test]
fn deep_expressions_report_a_clean_error() {
    // Something deeper than the 7-register scratch pool must error, not
    // miscompile.
    let deep = "(((((((1+2)*(3+4))+((5+6)*(7+8)))*(((1+2)*(3+4))+((5+6)*(7+8))))+\
                 ((((1+2)*(3+4))+((5+6)*(7+8)))*(((1+2)*(3+4))+((5+6)*(7+8)))))))";
    let src = format!("int out[1];\nvoid main(void) {{ out[0] = {deep} * {deep}; }}");
    match compile(&src) {
        // Either it fits (constant folding helps) or it errors cleanly.
        Ok(c) => {
            let mut m = Machine::new(LbpConfig::cores(1), &c.image).unwrap();
            m.run(10_000_000).unwrap();
        }
        Err(e) => assert!(e.to_string().contains("too complex"), "{e}"),
    }
}
