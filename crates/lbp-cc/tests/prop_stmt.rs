//! Statement-level property test: random straight-line/branching/looping
//! mini-C programs compiled by `lbp-cc` and executed on the LBP simulator
//! produce the same final variable values as a host interpreter with RV32
//! semantics. This exercises the code generator's control flow, register
//! allocation and `p_syncm` fence inference together.

use lbp_cc::compile;
use lbp_sim::{LbpConfig, Machine};
use proptest::prelude::*;

/// The mutable program variables (`g` is a global array of 4 cells).
const VARS: [&str; 3] = ["x", "y", "z"];

#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(usize),
    Cell(usize),
    Bin(&'static str, Box<E>, Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    /// `var = expr;`
    Assign(usize, E),
    /// `g[k] = expr;`
    Store(usize, E),
    /// `if (expr) { .. } else { .. }`
    If(E, Vec<S>, Vec<S>),
    /// `for (i = 0; i < n; i++) { .. }` — the body never writes `i`.
    ForN(u8, Vec<S>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-50i32..50).prop_map(E::Const),
        (0usize..VARS.len()).prop_map(E::Var),
        (0usize..4).prop_map(E::Cell),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        (
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("/"),
                Just("%"),
                Just("<"),
                Just("=="),
                Just("&"),
                Just("^"),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b)))
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<S> {
    let assign = (0..VARS.len(), arb_expr()).prop_map(|(v, e)| S::Assign(v, e));
    let store = (0..4usize, arb_expr()).prop_map(|(k, e)| S::Store(k, e));
    if depth == 0 {
        prop_oneof![3 => assign, 2 => store].boxed()
    } else {
        let inner = move || prop::collection::vec(arb_stmt(depth - 1), 1..4);
        prop_oneof![
            3 => assign,
            2 => store,
            2 => (arb_expr(), inner(), inner()).prop_map(|(c, t, e)| S::If(c, t, e)),
            2 => (1u8..5, inner()).prop_map(|(n, b)| S::ForN(n, b)),
        ]
        .boxed()
    }
}

// ----- pretty printing to C -----

fn expr_c(e: &E) -> String {
    match e {
        E::Const(v) => {
            if *v < 0 {
                format!("(0 - {})", -(*v as i64))
            } else {
                v.to_string()
            }
        }
        E::Var(i) => VARS[*i].to_owned(),
        E::Cell(k) => format!("g[{k}]"),
        E::Bin(op, a, b) => format!("({} {op} {})", expr_c(a), expr_c(b)),
    }
}

fn stmt_c(s: &S, ind: usize, loop_depth: usize, out: &mut String) {
    let pad = "    ".repeat(ind + 1);
    match s {
        S::Assign(v, e) => out.push_str(&format!("{pad}{} = {};\n", VARS[*v], expr_c(e))),
        S::Store(k, e) => out.push_str(&format!("{pad}g[{k}] = {};\n", expr_c(e))),
        S::If(c, t, e) => {
            out.push_str(&format!("{pad}if ({}) {{\n", expr_c(c)));
            for s in t {
                stmt_c(s, ind + 1, loop_depth, out);
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for s in e {
                stmt_c(s, ind + 1, loop_depth, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        S::ForN(n, body) => {
            let i = format!("i{loop_depth}");
            out.push_str(&format!("{pad}for ({i} = 0; {i} < {n}; {i}++) {{\n"));
            for s in body {
                stmt_c(s, ind + 1, loop_depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn program_c(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        stmt_c(s, 0, 0, &mut body);
    }
    format!(
        "int g[4];
int out[7];
void main(void) {{
    int x; int y; int z; int i0; int i1;
    x = 3; y = -5; z = 40;
{body}    out[0] = x; out[1] = y; out[2] = z;
    out[3] = g[0]; out[4] = g[1]; out[5] = g[2]; out[6] = g[3];
}}"
    )
}

// ----- host interpreter with RV32 semantics -----

struct HostState {
    vars: [i32; 3],
    cells: [i32; 4],
}

fn eval_e(e: &E, st: &HostState) -> i32 {
    match e {
        E::Const(v) => *v,
        E::Var(i) => st.vars[*i],
        E::Cell(k) => st.cells[*k],
        E::Bin(op, a, b) => {
            let (x, y) = (eval_e(a, st), eval_e(b, st));
            match *op {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => {
                    if y == 0 {
                        -1
                    } else if x == i32::MIN && y == -1 {
                        x
                    } else {
                        x.wrapping_div(y)
                    }
                }
                "%" => {
                    if y == 0 {
                        x
                    } else if x == i32::MIN && y == -1 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                "<" => (x < y) as i32,
                "==" => (x == y) as i32,
                "&" => x & y,
                "^" => x ^ y,
                _ => unreachable!(),
            }
        }
    }
}

fn run_s(s: &S, st: &mut HostState) {
    match s {
        S::Assign(v, e) => st.vars[*v] = eval_e(e, st),
        S::Store(k, e) => st.cells[*k] = eval_e(e, st),
        S::If(c, t, e) => {
            let branch = if eval_e(c, st) != 0 { t } else { e };
            for s in branch {
                run_s(s, st);
            }
        }
        S::ForN(n, body) => {
            for _ in 0..*n {
                for s in body {
                    run_s(s, st);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn compiled_programs_match_host_interpreter(
        stmts in prop::collection::vec(arb_stmt(2), 1..10)
    ) {
        let src = program_c(&stmts);
        let compiled = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let mut m = Machine::new(LbpConfig::cores(1), &compiled.image).expect("machine");
        m.run(50_000_000)
            .unwrap_or_else(|e| panic!("{e}\n{src}\n{}", compiled.asm));
        let mut host = HostState { vars: [3, -5, 40], cells: [0; 4] };
        for s in &stmts {
            run_s(s, &mut host);
        }
        let out = compiled.image.symbol("out").expect("out symbol");
        let expect = [
            host.vars[0],
            host.vars[1],
            host.vars[2],
            host.cells[0],
            host.cells[1],
            host.cells[2],
            host.cells[3],
        ];
        for (i, want) in expect.iter().enumerate() {
            let got = m.peek_shared(out + 4 * i as u32).unwrap() as i32;
            prop_assert_eq!(got, *want, "slot {}\n{}", i, src);
        }
    }
}
