//! Statement-level property test: random straight-line/branching/looping
//! mini-C programs compiled by `lbp-cc` and executed on the LBP simulator
//! produce the same final variable values as a host interpreter with RV32
//! semantics. This exercises the code generator's control flow, register
//! allocation and `p_syncm` fence inference together. Deterministic
//! generation via `lbp-testutil`.

use lbp_cc::compile;
use lbp_sim::{LbpConfig, Machine};
use lbp_testutil::{check_cases, Rng};

/// The mutable program variables (`g` is a global array of 4 cells).
const VARS: [&str; 3] = ["x", "y", "z"];

#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(usize),
    Cell(usize),
    Bin(&'static str, Box<E>, Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    /// `var = expr;`
    Assign(usize, E),
    /// `g[k] = expr;`
    Store(usize, E),
    /// `if (expr) { .. } else { .. }`
    If(E, Vec<S>, Vec<S>),
    /// `for (i = 0; i < n; i++) { .. }` — the body never writes `i`.
    ForN(u8, Vec<S>),
}

const BIN_OPS: [&str; 9] = ["+", "-", "*", "/", "%", "<", "==", "&", "^"];

fn arb_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.index(3) == 0 {
        match rng.index(3) {
            0 => E::Const(rng.range_i32(-50, 49)),
            1 => E::Var(rng.index(VARS.len())),
            _ => E::Cell(rng.index(4)),
        }
    } else {
        E::Bin(
            rng.pick(&BIN_OPS),
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        )
    }
}

fn arb_stmts(rng: &mut Rng, depth: u32, lo: usize, hi: usize) -> Vec<S> {
    let n = lo + rng.index(hi - lo);
    (0..n).map(|_| arb_stmt(rng, depth)).collect()
}

fn arb_stmt(rng: &mut Rng, depth: u32) -> S {
    let assign = |rng: &mut Rng| S::Assign(rng.index(VARS.len()), arb_expr(rng, 2));
    let store = |rng: &mut Rng| S::Store(rng.index(4), arb_expr(rng, 2));
    if depth == 0 {
        match rng.weighted(&[3, 2]) {
            0 => assign(rng),
            _ => store(rng),
        }
    } else {
        match rng.weighted(&[3, 2, 2, 2]) {
            0 => assign(rng),
            1 => store(rng),
            2 => S::If(
                arb_expr(rng, 2),
                arb_stmts(rng, depth - 1, 1, 4),
                arb_stmts(rng, depth - 1, 1, 4),
            ),
            _ => S::ForN(rng.range_u32(1, 4) as u8, arb_stmts(rng, depth - 1, 1, 4)),
        }
    }
}

// ----- pretty printing to C -----

fn expr_c(e: &E) -> String {
    match e {
        E::Const(v) => {
            if *v < 0 {
                format!("(0 - {})", -(*v as i64))
            } else {
                v.to_string()
            }
        }
        E::Var(i) => VARS[*i].to_owned(),
        E::Cell(k) => format!("g[{k}]"),
        E::Bin(op, a, b) => format!("({} {op} {})", expr_c(a), expr_c(b)),
    }
}

fn stmt_c(s: &S, ind: usize, loop_depth: usize, out: &mut String) {
    let pad = "    ".repeat(ind + 1);
    match s {
        S::Assign(v, e) => out.push_str(&format!("{pad}{} = {};\n", VARS[*v], expr_c(e))),
        S::Store(k, e) => out.push_str(&format!("{pad}g[{k}] = {};\n", expr_c(e))),
        S::If(c, t, e) => {
            out.push_str(&format!("{pad}if ({}) {{\n", expr_c(c)));
            for s in t {
                stmt_c(s, ind + 1, loop_depth, out);
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for s in e {
                stmt_c(s, ind + 1, loop_depth, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        S::ForN(n, body) => {
            let i = format!("i{loop_depth}");
            out.push_str(&format!("{pad}for ({i} = 0; {i} < {n}; {i}++) {{\n"));
            for s in body {
                stmt_c(s, ind + 1, loop_depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn program_c(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        stmt_c(s, 0, 0, &mut body);
    }
    format!(
        "int g[4];
int out[7];
void main(void) {{
    int x; int y; int z; int i0; int i1;
    x = 3; y = -5; z = 40;
{body}    out[0] = x; out[1] = y; out[2] = z;
    out[3] = g[0]; out[4] = g[1]; out[5] = g[2]; out[6] = g[3];
}}"
    )
}

// ----- host interpreter with RV32 semantics -----

struct HostState {
    vars: [i32; 3],
    cells: [i32; 4],
}

fn eval_e(e: &E, st: &HostState) -> i32 {
    match e {
        E::Const(v) => *v,
        E::Var(i) => st.vars[*i],
        E::Cell(k) => st.cells[*k],
        E::Bin(op, a, b) => {
            let (x, y) = (eval_e(a, st), eval_e(b, st));
            match *op {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => {
                    if y == 0 {
                        -1
                    } else if x == i32::MIN && y == -1 {
                        x
                    } else {
                        x.wrapping_div(y)
                    }
                }
                "%" => {
                    if y == 0 {
                        x
                    } else if x == i32::MIN && y == -1 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                "<" => (x < y) as i32,
                "==" => (x == y) as i32,
                "&" => x & y,
                "^" => x ^ y,
                _ => unreachable!(),
            }
        }
    }
}

fn run_s(s: &S, st: &mut HostState) {
    match s {
        S::Assign(v, e) => st.vars[*v] = eval_e(e, st),
        S::Store(k, e) => st.cells[*k] = eval_e(e, st),
        S::If(c, t, e) => {
            let branch = if eval_e(c, st) != 0 { t } else { e };
            for s in branch {
                run_s(s, st);
            }
        }
        S::ForN(n, body) => {
            for _ in 0..*n {
                for s in body {
                    run_s(s, st);
                }
            }
        }
    }
}

#[test]
fn compiled_programs_match_host_interpreter() {
    check_cases(40, 0x57a7, |rng, case| {
        let stmts = arb_stmts(rng, 2, 1, 10);
        let src = program_c(&stmts);
        let compiled = compile(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        let mut m = Machine::new(LbpConfig::cores(1), &compiled.image).expect("machine");
        m.run(50_000_000)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}\n{}", compiled.asm));
        let mut host = HostState {
            vars: [3, -5, 40],
            cells: [0; 4],
        };
        for s in &stmts {
            run_s(s, &mut host);
        }
        let out = compiled.image.symbol("out").expect("out symbol");
        let expect = [
            host.vars[0],
            host.vars[1],
            host.vars[2],
            host.cells[0],
            host.cells[1],
            host.cells[2],
            host.cells[3],
        ];
        for (i, want) in expect.iter().enumerate() {
            let got = m.peek_shared(out + 4 * i as u32).unwrap() as i32;
            assert_eq!(got, *want, "case {case} slot {i}\n{src}");
        }
    });
}
