//! Property test: random expression trees compiled by `lbp-cc` and
//! executed on the LBP simulator produce the same values as a host-side
//! reference evaluator (with RV32 semantics: wrapping `i32` arithmetic,
//! masked shifts, RISC-V division-by-zero results). Deterministic
//! generation via `lbp-testutil`.

use lbp_cc::compile;
use lbp_sim::{LbpConfig, Machine};
use lbp_testutil::{check_cases, Rng};

/// A random expression over three variables `a`, `b`, `c`.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(usize),
    Un(&'static str, Box<E>),
    Bin(&'static str, Box<E>, Box<E>),
}

impl E {
    fn to_c(&self) -> String {
        match self {
            E::Const(v) => {
                if *v < 0 {
                    format!("(0 - {})", (*v as i64).abs())
                } else {
                    format!("{v}")
                }
            }
            E::Var(i) => ["a", "b", "c"][*i].to_owned(),
            E::Un(op, x) => format!("({op}{})", x.to_c()),
            E::Bin(op, x, y) => format!("({} {op} {})", x.to_c(), y.to_c()),
        }
    }

    fn eval(&self, vars: [i32; 3]) -> i32 {
        match self {
            E::Const(v) => *v,
            E::Var(i) => vars[*i],
            E::Un(op, x) => {
                let v = x.eval(vars);
                match *op {
                    "-" => v.wrapping_neg(),
                    "!" => (v == 0) as i32,
                    "~" => !v,
                    _ => unreachable!(),
                }
            }
            E::Bin(op, x, y) => {
                let (a, b) = (x.eval(vars), y.eval(vars));
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "/" => {
                        if b == 0 {
                            -1
                        } else if a == i32::MIN && b == -1 {
                            a
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    "%" => {
                        if b == 0 {
                            a
                        } else if a == i32::MIN && b == -1 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "<<" => a.wrapping_shl(b as u32 & 31),
                    ">>" => a.wrapping_shr(b as u32 & 31),
                    "<" => (a < b) as i32,
                    "<=" => (a <= b) as i32,
                    ">" => (a > b) as i32,
                    ">=" => (a >= b) as i32,
                    "==" => (a == b) as i32,
                    "!=" => (a != b) as i32,
                    "&&" => ((a != 0) && (b != 0)) as i32,
                    "||" => ((a != 0) || (b != 0)) as i32,
                    _ => unreachable!(),
                }
            }
        }
    }
}

const UN_OPS: [&str; 3] = ["-", "!", "~"];
const BIN_OPS: [&str; 16] = [
    "+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", ">", ">=", "==", "!=", "&&", "||",
];

/// A random expression tree of at most `depth` operator levels.
fn arb_expr(rng: &mut Rng, depth: u32) -> E {
    // At depth 0, or with leaf probability 1/3, emit a leaf.
    if depth == 0 || rng.index(3) == 0 {
        if rng.flip() {
            E::Const(rng.range_i32(-64, 63))
        } else {
            E::Var(rng.index(3))
        }
    } else if rng.index(4) == 0 {
        E::Un(rng.pick(&UN_OPS), Box::new(arb_expr(rng, depth - 1)))
    } else {
        E::Bin(
            rng.pick(&BIN_OPS),
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        )
    }
}

#[test]
fn compiled_expressions_match_reference() {
    check_cases(48, 0xe4_9123, |rng, case| {
        let e = arb_expr(rng, 3);
        let a = rng.range_i32(-100, 99);
        let b = rng.range_i32(-100, 99);
        let c = rng.range_i32(-100, 99);
        let src = format!(
            "int out[1];
void main(void) {{
    int a; int b; int c;
    a = {a}; b = {b}; c = {c};
    out[0] = {};
}}",
            e.to_c()
        );
        let compiled = compile(&src).unwrap_or_else(|err| panic!("case {case}: {err}\n{src}"));
        let mut m = Machine::new(LbpConfig::cores(1), &compiled.image).expect("machine");
        m.run(10_000_000)
            .unwrap_or_else(|err| panic!("case {case}: {err}\n{}", compiled.asm));
        let got = m
            .peek_shared(compiled.image.symbol("out").expect("symbol"))
            .expect("peek") as i32;
        let want = e.eval([a, b, c]);
        assert_eq!(
            got,
            want,
            "case {case}: expr {} with a={a} b={b} c={c}",
            e.to_c()
        );
    });
}
