//! Cross-layer property test: the disassembly text of any encodable
//! instruction re-assembles to the same binary word — the disassembler
//! (`Instr: Display`), the parser and the encoder agree.

use lbp_asm::assemble;
use lbp_isa::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, Reg, StoreKind};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn i12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

/// Instructions whose text form is position-independent (no pc-relative
/// operands, which the parser would re-base at address 0 anyway — the
/// test places each instruction at address 0, so those are fine too).
fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), 0u32..=0xfffff).prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (any_reg(), any_reg(), i12()).prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (any_reg(), (-512i32..=511).prop_map(|x| x * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (
            prop_oneof![
                Just(BranchKind::Eq),
                Just(BranchKind::Ne),
                Just(BranchKind::Lt),
                Just(BranchKind::Ge),
                Just(BranchKind::Ltu),
                Just(BranchKind::Geu)
            ],
            any_reg(),
            any_reg(),
            (-512i32..=511).prop_map(|x| x * 2),
        )
            .prop_map(|(kind, rs1, rs2, offset)| Instr::Branch {
                kind,
                rs1,
                rs2,
                offset
            }),
        (
            prop_oneof![
                Just(LoadKind::B),
                Just(LoadKind::H),
                Just(LoadKind::W),
                Just(LoadKind::Bu),
                Just(LoadKind::Hu)
            ],
            any_reg(),
            any_reg(),
            i12(),
        )
            .prop_map(|(kind, rd, rs1, offset)| Instr::Load {
                kind,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![Just(StoreKind::B), Just(StoreKind::H), Just(StoreKind::W)],
            any_reg(),
            any_reg(),
            i12(),
        )
            .prop_map(|(kind, rs1, rs2, offset)| Instr::Store {
                kind,
                rs1,
                rs2,
                offset
            }),
        (
            prop_oneof![
                Just(OpImmKind::Add),
                Just(OpImmKind::Slt),
                Just(OpImmKind::Sltu),
                Just(OpImmKind::Xor),
                Just(OpImmKind::Or),
                Just(OpImmKind::And)
            ],
            any_reg(),
            any_reg(),
            i12(),
        )
            .prop_map(|(kind, rd, rs1, imm)| Instr::OpImm { kind, rd, rs1, imm }),
        (
            prop_oneof![
                Just(OpImmKind::Sll),
                Just(OpImmKind::Srl),
                Just(OpImmKind::Sra)
            ],
            any_reg(),
            any_reg(),
            0i32..32,
        )
            .prop_map(|(kind, rd, rs1, imm)| Instr::OpImm { kind, rd, rs1, imm }),
        (
            prop_oneof![
                Just(OpKind::Add),
                Just(OpKind::Sub),
                Just(OpKind::Mul),
                Just(OpKind::Div),
                Just(OpKind::Rem),
                Just(OpKind::And),
                Just(OpKind::Or),
                Just(OpKind::Xor),
                Just(OpKind::Sll),
                Just(OpKind::Srl),
                Just(OpKind::Sra),
                Just(OpKind::Slt),
                Just(OpKind::Sltu),
                Just(OpKind::Mulh),
                Just(OpKind::Mulhu),
                Just(OpKind::Mulhsu),
                Just(OpKind::Divu),
                Just(OpKind::Remu)
            ],
            any_reg(),
            any_reg(),
            any_reg(),
        )
            .prop_map(|(kind, rd, rs1, rs2)| Instr::Op { kind, rd, rs1, rs2 }),
        any_reg().prop_map(|rd| Instr::PFc { rd }),
        any_reg().prop_map(|rd| Instr::PFn { rd }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::PSet { rd, rs1 }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::PMerge { rd, rs1, rs2 }),
        Just(Instr::PSyncm),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::PJalr { rd, rs1, rs2 }),
        (any_reg(), any_reg(), i12()).prop_map(|(rd, rs1, offset)| Instr::PJal { rd, rs1, offset }),
        (any_reg(), i12()).prop_map(|(rd, offset)| Instr::PLwcv { rd, offset }),
        (any_reg(), any_reg(), i12()).prop_map(|(rs1, rs2, offset)| Instr::PSwcv {
            rs1,
            rs2,
            offset
        }),
        (any_reg(), i12()).prop_map(|(rd, offset)| Instr::PLwre { rd, offset }),
        (any_reg(), any_reg(), i12()).prop_map(|(rs1, rs2, offset)| Instr::PSwre {
            rs1,
            rs2,
            offset
        }),
    ]
}

proptest! {
    /// assemble(display(i)) == encode(i): the textual pipeline is
    /// faithful to the binary one.
    #[test]
    fn display_reassembles_to_the_same_word(instr in any_instr()) {
        let text = instr.to_string();
        let image = assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        prop_assert_eq!(image.text.len(), 1, "`{}` produced several words", text);
        let expect = instr.encode().expect("generated instruction encodes");
        prop_assert_eq!(
            image.text[0], expect,
            "`{}`: {:#010x} != {:#010x}", text, image.text[0], expect
        );
    }
}

#[test]
fn disassembly_has_labels_and_instructions() {
    let image =
        assemble("main:\n  li a0, 5\n  jal helper\n  p_ret\nhelper:\n  add a0, a0, a0\n  ret\n")
            .unwrap();
    let d = image.disassemble();
    assert!(d.contains("main:"), "{d}");
    assert!(d.contains("helper:"), "{d}");
    assert!(d.contains("addi a0, zero, 5"), "{d}");
    assert!(d.contains("p_ret"), "{d}");
}
