//! Cross-layer property test: the disassembly text of any encodable
//! instruction re-assembles to the same binary word — the disassembler
//! (`Instr: Display`), the parser and the encoder agree. Driven by the
//! deterministic generator in `lbp-testutil`.

use lbp_asm::assemble;
use lbp_isa::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, Reg, StoreKind};
use lbp_testutil::{check_cases, Rng};

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 31) as u8).unwrap()
}

fn i12(rng: &mut Rng) -> i32 {
    rng.range_i32(-2048, 2047)
}

const BRANCH_KINDS: [BranchKind; 6] = [
    BranchKind::Eq,
    BranchKind::Ne,
    BranchKind::Lt,
    BranchKind::Ge,
    BranchKind::Ltu,
    BranchKind::Geu,
];

const LOAD_KINDS: [LoadKind; 5] = [
    LoadKind::B,
    LoadKind::H,
    LoadKind::W,
    LoadKind::Bu,
    LoadKind::Hu,
];

const STORE_KINDS: [StoreKind; 3] = [StoreKind::B, StoreKind::H, StoreKind::W];

const OP_IMM_LOGIC: [OpImmKind; 6] = [
    OpImmKind::Add,
    OpImmKind::Slt,
    OpImmKind::Sltu,
    OpImmKind::Xor,
    OpImmKind::Or,
    OpImmKind::And,
];

const OP_IMM_SHIFT: [OpImmKind; 3] = [OpImmKind::Sll, OpImmKind::Srl, OpImmKind::Sra];

const OP_KINDS: [OpKind; 18] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Div,
    OpKind::Rem,
    OpKind::And,
    OpKind::Or,
    OpKind::Xor,
    OpKind::Sll,
    OpKind::Srl,
    OpKind::Sra,
    OpKind::Slt,
    OpKind::Sltu,
    OpKind::Mulh,
    OpKind::Mulhu,
    OpKind::Mulhsu,
    OpKind::Divu,
    OpKind::Remu,
];

/// Instructions whose text form is position-independent (pc-relative
/// operands are fine too — the test places each instruction at address 0,
/// where the parser re-bases them identically).
fn any_instr(rng: &mut Rng) -> Instr {
    match rng.index(18) {
        0 => Instr::Lui {
            rd: any_reg(rng),
            imm: rng.range_u32(0, 0xfffff) << 12,
        },
        1 => Instr::Jalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        2 => Instr::Jal {
            rd: any_reg(rng),
            offset: rng.range_i32(-512, 511) * 2,
        },
        3 => Instr::Branch {
            kind: rng.pick(&BRANCH_KINDS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: rng.range_i32(-512, 511) * 2,
        },
        4 => Instr::Load {
            kind: rng.pick(&LOAD_KINDS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        5 => Instr::Store {
            kind: rng.pick(&STORE_KINDS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: i12(rng),
        },
        6 => Instr::OpImm {
            kind: rng.pick(&OP_IMM_LOGIC),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: i12(rng),
        },
        7 => Instr::OpImm {
            kind: rng.pick(&OP_IMM_SHIFT),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: rng.range_i32(0, 31),
        },
        8 => Instr::Op {
            kind: rng.pick(&OP_KINDS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        9 => Instr::PFc { rd: any_reg(rng) },
        10 => Instr::PFn { rd: any_reg(rng) },
        11 => Instr::PSet {
            rd: any_reg(rng),
            rs1: any_reg(rng),
        },
        12 => Instr::PMerge {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        13 => Instr::PSyncm,
        14 => Instr::PJalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        15 => Instr::PJal {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        16 => {
            if rng.flip() {
                Instr::PLwcv {
                    rd: any_reg(rng),
                    offset: i12(rng),
                }
            } else {
                Instr::PSwcv {
                    rs1: any_reg(rng),
                    rs2: any_reg(rng),
                    offset: i12(rng),
                }
            }
        }
        _ => {
            if rng.flip() {
                Instr::PLwre {
                    rd: any_reg(rng),
                    offset: i12(rng),
                }
            } else {
                Instr::PSwre {
                    rs1: any_reg(rng),
                    rs2: any_reg(rng),
                    offset: i12(rng),
                }
            }
        }
    }
}

/// assemble(display(i)) == encode(i): the textual pipeline is
/// faithful to the binary one.
#[test]
fn display_reassembles_to_the_same_word() {
    check_cases(512, 0xa53, |rng, case| {
        let instr = any_instr(rng);
        let text = instr.to_string();
        let image = assemble(&text).unwrap_or_else(|e| panic!("case {case}: `{text}` failed: {e}"));
        assert_eq!(image.text.len(), 1, "`{text}` produced several words");
        let expect = instr.encode().expect("generated instruction encodes");
        assert_eq!(
            image.text[0], expect,
            "case {case}: `{text}`: {:#010x} != {expect:#010x}",
            image.text[0]
        );
    });
}

#[test]
fn disassembly_has_labels_and_instructions() {
    let image =
        assemble("main:\n  li a0, 5\n  jal helper\n  p_ret\nhelper:\n  add a0, a0, a0\n  ret\n")
            .unwrap();
    let d = image.disassemble();
    assert!(d.contains("main:"), "{d}");
    assert!(d.contains("helper:"), "{d}");
    assert!(d.contains("addi a0, zero, 5"), "{d}");
    assert!(d.contains("p_ret"), "{d}");
}
