//! Error-path coverage for the assembler front end: malformed operands,
//! out-of-range immediates, duplicate labels/symbols, bad directives and
//! expression syntax. Each case asserts both the message and the 1-based
//! source line the error is attributed to.

use lbp_asm::assemble;

/// Asserts `src` is rejected with a message containing `needle`,
/// attributed to `line`.
fn rejected(src: &str, needle: &str, line: usize) {
    let err = assemble(src).expect_err(&format!("must reject: {src:?}"));
    assert!(
        err.message.contains(needle),
        "message `{}` does not contain `{needle}`",
        err.message
    );
    assert_eq!(err.line, line, "wrong line for `{}`", err.message);
}

#[test]
fn unknown_mnemonic_rejected() {
    rejected(
        "start:\n    frobnicate a0, a1\n",
        "unknown mnemonic `frobnicate`",
        2,
    );
}

#[test]
fn wrong_operand_count_rejected() {
    rejected("    add a0, a1\n", "`add` expects 3 operands, got 2", 1);
    rejected("    jal a0, a1, a2\n", "`jal` expects 1 or 2 operands", 1);
    rejected("    jalr a0, a1, a2\n", "`jalr` expects 1 or 2 operands", 1);
    rejected("    p_ret a0\n", "`p_ret` expects 0 or 2 operands", 1);
}

#[test]
fn malformed_memory_operand_rejected() {
    rejected("    lw a0, a1\n", "expected `offset(base)`, got `a1`", 1);
    rejected("    lw a0, 4(sp\n", "unclosed `(`", 1);
    rejected("    sw a0, 4(99)\n", "unknown register name", 1);
}

#[test]
fn unknown_register_rejected() {
    rejected("    add a0, a1, q7\n", "unknown register name `q7`", 1);
}

#[test]
fn out_of_range_immediates_rejected() {
    // addi's I-immediate is 12 bits: [-2048, 2047].
    rejected(
        "    addi a0, a0, 5000\n",
        "immediate 5000 of `addi` outside [-2048, 2047]",
        1,
    );
    // Store offsets share the 12-bit range via the S-format.
    rejected("    sw a0, 99999(sp)\n", "outside [-2048, 2047]", 1);
    // `li` materializes any 32-bit constant but nothing wider.
    rejected(
        "    li a0, 0x1ffffffff\n",
        "`li` value 8589934591 exceeds 32 bits",
        1,
    );
}

#[test]
fn duplicate_labels_and_symbols_rejected() {
    rejected("a:\n    nop\na:\n    nop\n", "duplicate label `a`", 3);
    rejected(".equ N, 4\n.equ N, 5\n", "duplicate symbol `N`", 2);
    // A label clashing with an .equ is the same namespace.
    rejected(".equ a, 4\na:\n    nop\n", "duplicate label `a`", 2);
}

#[test]
fn undefined_symbol_rejected() {
    rejected("    la a0, missing\n", "undefined symbol `missing`", 1);
}

#[test]
fn malformed_directives_rejected() {
    rejected(".word\n", ".word needs at least one value", 1);
    rejected(".equ N\n", ".equ needs `name, value`", 1);
    rejected(".frobnicate 3\n", "unknown directive `.frobnicate`", 1);
    rejected(".space -8\n", "bad .space count -8", 1);
}

#[test]
fn expression_syntax_rejected() {
    rejected("    li a0, %mid(x)\n", "unknown operator %mid", 1);
    rejected("x:\n    li a0, %hi x\n", "expected `(` after %hi", 2);
    rejected("    li a0, 1 + 0zz\n", "bad number", 1);
    rejected("    li a0, (1 + 2) 3\n", "trailing text in expression", 1);
}

#[test]
fn error_lines_skip_comments_and_blanks() {
    // The reported line must be the physical source line, counting
    // comments and blank lines.
    let src = "# header comment\n\n    nop\n    bogus a0\n";
    rejected(src, "unknown mnemonic `bogus`", 4);
}
