//! The assembled program image loaded into the LBP banks at boot.

use std::collections::HashMap;

use lbp_isa::{CODE_BASE, SHARED_BASE};

/// A fully assembled, position-resolved program.
///
/// The text section is a flat array of instruction words based at
/// [`CODE_BASE`] (every LBP core receives a copy in its code bank); the
/// data section is a byte array based at [`SHARED_BASE`] (block-distributed
/// over the cores' shared banks by the simulator).
#[derive(Debug, Clone, Default)]
pub struct Image {
    /// Encoded instruction words, based at [`CODE_BASE`].
    pub text: Vec<u32>,
    /// Initialized shared data, based at [`SHARED_BASE`].
    pub data: Vec<u8>,
    /// Resolved symbol table (labels and `.equ` constants).
    pub symbols: HashMap<String, u32>,
    /// Entry point: the `main` (or `_start`) symbol, else [`CODE_BASE`].
    pub entry: u32,
    /// Source line of each text word (same length as `text`; 0 for
    /// generated code). Used by simulator traces.
    pub lines: Vec<usize>,
}

impl Image {
    /// The address one past the last text word.
    pub fn text_end(&self) -> u32 {
        CODE_BASE + (self.text.len() as u32) * 4
    }

    /// The address one past the last initialized data byte.
    pub fn data_end(&self) -> u32 {
        SHARED_BASE + self.data.len() as u32
    }

    /// Looks up a resolved symbol address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The source line of the text word at `addr` (None when out of
    /// range or unaligned, Some(0) for generated code). This is how the
    /// static verifier maps findings back to assembly source.
    pub fn line_of(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let off = addr.checked_sub(CODE_BASE)?;
        self.lines.get((off / 4) as usize).copied()
    }

    /// The instruction word at a text address, if in range and aligned.
    pub fn text_word(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        let off = addr.checked_sub(CODE_BASE)?;
        self.text.get((off / 4) as usize).copied()
    }

    /// Disassembles the text section, annotating known symbol addresses
    /// with labels. Undecodable words (e.g. embedded data) print as
    /// `.word`.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        // Invert the symbol table for label printing.
        let mut labels: Vec<(u32, &str)> = self
            .symbols
            .iter()
            .filter(|&(_, &a)| a < self.text_end())
            .map(|(n, &a)| (a, n.as_str()))
            .collect();
        labels.sort();
        let mut out = String::new();
        for (i, &word) in self.text.iter().enumerate() {
            let addr = CODE_BASE + 4 * i as u32;
            for &(a, name) in &labels {
                if a == addr {
                    let _ = writeln!(out, "{name}:");
                }
            }
            match lbp_isa::Instr::decode(word) {
                Ok(instr) => {
                    let _ = writeln!(out, "    {addr:#010x}:  {instr}");
                }
                Err(_) => {
                    let _ = writeln!(out, "    {addr:#010x}:  .word {word:#010x}");
                }
            }
        }
        out
    }
}
