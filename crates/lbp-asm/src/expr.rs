//! Constant expressions over symbols, as they appear in assembly operands.

use std::collections::HashMap;
use std::fmt;

/// A constant expression: integer literals, symbols, sums/differences, and
/// the RISC-V `%hi`/`%lo` relocation operators.
///
/// # Examples
///
/// ```
/// use lbp_asm::Expr;
/// use std::collections::HashMap;
///
/// let e = Expr::sym("table").add(Expr::konst(8));
/// let mut syms = HashMap::new();
/// syms.insert("table".to_owned(), 0x8000_0100);
/// assert_eq!(e.eval(&syms).unwrap(), 0x8000_0108);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A reference to a label or equated symbol.
    Symbol(String),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// `%hi(e)`: upper 20 bits, adjusted for the sign of the low part.
    Hi(Box<Expr>),
    /// `%lo(e)`: sign-extended low 12 bits.
    Lo(Box<Expr>),
}

impl Expr {
    /// An integer literal expression.
    pub fn konst(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// A symbol reference expression.
    pub fn sym(name: impl Into<String>) -> Expr {
        Expr::Symbol(name.into())
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `%hi(self)`.
    pub fn hi(self) -> Expr {
        Expr::Hi(Box::new(self))
    }

    /// `%lo(self)`.
    pub fn lo(self) -> Expr {
        Expr::Lo(Box::new(self))
    }

    /// Evaluates against a symbol table.
    ///
    /// # Errors
    ///
    /// Returns the name of the first undefined symbol encountered.
    pub fn eval(&self, symbols: &HashMap<String, u32>) -> Result<i64, UndefinedSymbol> {
        Ok(match self {
            Expr::Const(v) => *v,
            Expr::Symbol(name) => symbols
                .get(name)
                .copied()
                .ok_or_else(|| UndefinedSymbol(name.clone()))?
                as i64,
            Expr::Add(a, b) => a.eval(symbols)?.wrapping_add(b.eval(symbols)?),
            Expr::Sub(a, b) => a.eval(symbols)?.wrapping_sub(b.eval(symbols)?),
            Expr::Hi(e) => {
                let v = e.eval(symbols)? as u32;
                hi20(v) as i64
            }
            Expr::Lo(e) => {
                let v = e.eval(symbols)? as u32;
                lo12(v) as i64
            }
        })
    }

    /// Folds symbol-free subexpressions into constants.
    ///
    /// The parser applies this so that e.g. `li t0, -1` (parsed as `0 - 1`)
    /// is recognized as a small constant and expands to a single `addi`.
    pub fn fold(self) -> Expr {
        match self {
            Expr::Add(a, b) => match (a.fold(), b.fold()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_add(y)),
                (a, b) => a.add(b),
            },
            Expr::Sub(a, b) => match (a.fold(), b.fold()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_sub(y)),
                (a, b) => a.sub(b),
            },
            Expr::Hi(e) => match e.fold() {
                Expr::Const(v) => Expr::Const(hi20(v as u32) as i64),
                e => e.hi(),
            },
            Expr::Lo(e) => match e.fold() {
                Expr::Const(v) => Expr::Const(lo12(v as u32) as i64),
                e => e.lo(),
            },
            leaf => leaf,
        }
    }

    /// Whether the expression references any symbol (used to distinguish
    /// label targets from raw numeric offsets in branch operands).
    pub fn references_symbol(&self) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Symbol(_) => true,
            Expr::Add(a, b) | Expr::Sub(a, b) => a.references_symbol() || b.references_symbol(),
            Expr::Hi(e) | Expr::Lo(e) => e.references_symbol(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Symbol(s) => write!(f, "{s}"),
            Expr::Add(a, b) => write!(f, "{a}+{b}"),
            Expr::Sub(a, b) => write!(f, "{a}-{b}"),
            Expr::Hi(e) => write!(f, "%hi({e})"),
            Expr::Lo(e) => write!(f, "%lo({e})"),
        }
    }
}

/// The `%hi` part of an absolute address: the upper 20 bits, rounded so that
/// `(%hi << 12) + sign_extend(%lo)` reconstructs the value.
pub fn hi20(value: u32) -> u32 {
    value.wrapping_add(0x800) >> 12
}

/// The `%lo` part of an absolute address: the sign-extended low 12 bits.
pub fn lo12(value: u32) -> i32 {
    ((value & 0xfff) as i32) << 20 >> 20
}

/// Error: an expression references a symbol absent from the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndefinedSymbol(pub String);

impl fmt::Display for UndefinedSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined symbol `{}`", self.0)
    }
}

impl std::error::Error for UndefinedSymbol {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hi_lo_reconstruct() {
        for v in [0u32, 1, 0x7ff, 0x800, 0xfff, 0x1000, 0x8000_0100, u32::MAX] {
            let hi = hi20(v);
            let lo = lo12(v);
            assert_eq!(
                (hi << 12).wrapping_add(lo as u32),
                v,
                "hi/lo of {v:#x} must reconstruct"
            );
        }
    }

    #[test]
    fn eval_arithmetic() {
        let syms = HashMap::from([("a".to_owned(), 100u32)]);
        let e = Expr::sym("a").add(Expr::konst(5)).sub(Expr::konst(2));
        assert_eq!(e.eval(&syms).unwrap(), 103);
    }

    #[test]
    fn undefined_symbol_reported() {
        let e = Expr::sym("missing");
        assert_eq!(
            e.eval(&HashMap::new()),
            Err(UndefinedSymbol("missing".into()))
        );
    }

    #[test]
    fn symbol_detection() {
        assert!(!Expr::konst(4).references_symbol());
        assert!(Expr::sym("x").add(Expr::konst(1)).references_symbol());
        assert!(Expr::sym("x").lo().references_symbol());
    }
}
