//! The symbolic program model: what the text parser and the programmatic
//! [`builder`](crate::builder) both produce, and what the two-pass assembler
//! consumes.

use lbp_isa::{BranchKind, Instr, LoadKind, OpImmKind, Reg, StoreKind};

use crate::expr::Expr;

/// An instruction whose immediate operand may still reference symbols.
///
/// `Ready` carries a fully resolved [`Instr`]; `Patch` carries the register
/// fields plus an unevaluated [`Expr`] with the shape of the hole described
/// by [`PatchKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum SymInstr {
    /// Already fully resolved.
    Ready(Instr),
    /// Needs the expression evaluated and the immediate patched in.
    Patch {
        /// Which instruction shape and register fields to build.
        kind: PatchKind,
        /// The unevaluated immediate/target expression.
        expr: Expr,
    },
}

impl From<Instr> for SymInstr {
    fn from(i: Instr) -> SymInstr {
        SymInstr::Ready(i)
    }
}

/// The shape of an instruction with a symbolic immediate.
///
/// *Absolute-target* variants (`Branch`, `Jal`) take the evaluated
/// expression as an absolute address and convert it to a pc-relative offset
/// at the instruction's own address; *raw* variants use the value directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchKind {
    /// `jalr rd, expr(rs1)`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
    },
    /// Load with symbolic offset.
    Load {
        /// Width/sign.
        kind: LoadKind,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
    },
    /// Store with symbolic offset.
    Store {
        /// Width.
        kind: StoreKind,
        /// Base register.
        rs1: Reg,
        /// Source register.
        rs2: Reg,
    },
    /// ALU register-immediate with symbolic immediate.
    OpImm {
        /// Operation.
        kind: OpImmKind,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `lui rd, expr` where the evaluated value is a raw 20-bit field
    /// (the assembler shifts it left by 12).
    Lui {
        /// Destination.
        rd: Reg,
    },
    /// `auipc rd, expr` (raw 20-bit field).
    Auipc {
        /// Destination.
        rd: Reg,
    },
    /// Conditional branch to an absolute target address.
    Branch {
        /// Comparison.
        kind: BranchKind,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `jal rd, target` with an absolute target address.
    Jal {
        /// Link register.
        rd: Reg,
    },
    /// `p_jal rd, rs1, expr` (raw offset relative to pc, byte units).
    PJal {
        /// Cleared register.
        rd: Reg,
        /// Allocated-hart register.
        rs1: Reg,
    },
    /// `p_lwcv rd, expr`.
    PLwcv {
        /// Destination.
        rd: Reg,
    },
    /// `p_swcv rs2 -> hart rs1, slot expr`.
    PSwcv {
        /// Target hart register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
    },
    /// `p_lwre rd, expr`.
    PLwre {
        /// Destination.
        rd: Reg,
    },
    /// `p_swre rs2 -> hart rs1, slot expr`.
    PSwre {
        /// Target hart register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
    },
}

/// Which section an item is emitted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Section {
    /// Program text (code banks).
    #[default]
    Text,
    /// Initialized global data (shared memory).
    Data,
}

/// One unit of a symbolic program.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Defines a label at the current location of the current section.
    Label(String),
    /// Switches the current section.
    Section(Section),
    /// An instruction (text section only).
    Instr(SymInstr),
    /// A 32-bit datum (`.word`). The location counter must already be
    /// 4-byte aligned (use `.align 4`).
    Word(Expr),
    /// `n` zero bytes (`.space n`); the count must evaluate from symbols
    /// defined above it.
    Space(Expr),
    /// Aligns the location counter to a multiple of `n` bytes (`.align`
    /// takes the byte count, not a power of two).
    Align(u32),
    /// Defines a constant symbol (`.equ name, expr`; the expression must be
    /// evaluable from already-defined symbols).
    Equ(String, Expr),
}

/// An [`Item`] together with the source line it came from (1-based; line 0
/// marks builder-generated items).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceItem {
    /// The item.
    pub item: Item,
    /// 1-based source line, or 0 for generated code.
    pub line: usize,
}

impl SourceItem {
    /// Wraps an item with no source location (generated code).
    pub fn generated(item: Item) -> SourceItem {
        SourceItem { item, line: 0 }
    }
}
