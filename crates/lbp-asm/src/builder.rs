//! A small code-generation builder that accumulates assembly *text*.
//!
//! The Deterministic OpenMP runtime (`lbp-omp`) and the mini-C compiler
//! (`lbp-cc`) both generate programs through [`Asm`]. Generating text
//! rather than binary keeps every generated program inspectable — the
//! exact listing can be dumped, diffed against the paper's figures, and
//! assembled by the same two-pass assembler users run on hand-written
//! code.
//!
//! # Examples
//!
//! ```
//! use lbp_asm::Asm;
//!
//! let mut a = Asm::new();
//! a.label("main");
//! a.line("li a0, 41");
//! a.line("addi a0, a0, 1");
//! a.line("p_ret");
//! let image = a.assemble()?;
//! assert_eq!(image.text.len(), 3);
//! # Ok::<(), lbp_asm::AsmError>(())
//! ```

use std::fmt::Write as _;

use crate::assemble::assemble;
use crate::error::AsmError;
use crate::image::Image;

/// An assembly-text accumulator with label management.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    text: String,
    fresh: u32,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Appends one instruction or directive line (indented).
    pub fn line(&mut self, line: impl AsRef<str>) -> &mut Asm {
        let _ = writeln!(self.text, "    {}", line.as_ref());
        self
    }

    /// Appends a formatted instruction line.
    pub fn linef(&mut self, args: std::fmt::Arguments<'_>) -> &mut Asm {
        let _ = writeln!(self.text, "    {args}");
        self
    }

    /// Appends a label definition at column zero.
    pub fn label(&mut self, name: impl AsRef<str>) -> &mut Asm {
        let _ = writeln!(self.text, "{}:", name.as_ref());
        self
    }

    /// Appends a `# comment` line.
    pub fn comment(&mut self, text: impl AsRef<str>) -> &mut Asm {
        let _ = writeln!(self.text, "    # {}", text.as_ref());
        self
    }

    /// Appends a blank separator line.
    pub fn blank(&mut self) -> &mut Asm {
        self.text.push('\n');
        self
    }

    /// Appends raw multi-line assembly verbatim.
    pub fn raw(&mut self, block: impl AsRef<str>) -> &mut Asm {
        self.text.push_str(block.as_ref());
        if !self.text.ends_with('\n') {
            self.text.push('\n');
        }
        self
    }

    /// Returns a label name unique within this builder, prefixed for
    /// readability (e.g. `"\_L_loop_0"`).
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("_L_{prefix}_{n}")
    }

    /// The accumulated assembly text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Consumes the builder, returning the assembly text.
    pub fn into_text(self) -> String {
        self.text
    }

    /// Assembles the accumulated text.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors; line numbers refer to the generated
    /// text, available from [`Asm::text`].
    pub fn assemble(&self) -> Result<Image, AsmError> {
        assemble(&self.text)
    }
}

/// Convenience macro for formatted emission:
/// `emit!(asm, "addi {rd}, {rs}, {imm}")`.
#[macro_export]
macro_rules! emit {
    ($asm:expr, $($fmt:tt)*) => {
        $asm.linef(format_args!($($fmt)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_assembles() {
        let mut a = Asm::new();
        a.label("main");
        a.comment("the answer");
        emit!(a, "li a0, {}", 42);
        a.line("p_ret");
        let img = a.assemble().unwrap();
        assert_eq!(img.text.len(), 2);
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut a = Asm::new();
        let l1 = a.fresh_label("loop");
        let l2 = a.fresh_label("loop");
        assert_ne!(l1, l2);
    }

    #[test]
    fn raw_blocks_keep_newlines() {
        let mut a = Asm::new();
        a.raw("main: nop");
        a.raw("nop\n");
        assert_eq!(a.assemble().unwrap().text.len(), 2);
    }

    #[test]
    fn text_is_inspectable() {
        let mut a = Asm::new();
        a.label("f").line("ret");
        assert_eq!(a.text(), "f:\n    ret\n");
    }
}
