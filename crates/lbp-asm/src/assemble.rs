//! The two-pass assembler: symbolic items → [`Image`].

use std::collections::HashMap;

use lbp_isa::{Instr, CODE_BASE, SHARED_BASE};

use crate::error::AsmError;
use crate::expr::Expr;
use crate::image::Image;
use crate::item::{Item, PatchKind, Section, SourceItem, SymInstr};
use crate::parser::parse_program;

/// Assembles source text into an executable image.
///
/// # Errors
///
/// Returns the first syntax, symbol-resolution or encoding-range error with
/// its source line.
///
/// # Examples
///
/// ```
/// let image = lbp_asm::assemble("main: li a0, 1\n ret\n")?;
/// assert_eq!(image.text.len(), 2);
/// assert_eq!(image.entry, image.symbol("main").unwrap());
/// # Ok::<(), lbp_asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    assemble_items(&parse_program(source)?)
}

/// Assembles pre-parsed (or builder-generated) items into an image.
///
/// # Errors
///
/// Returns the first symbol-resolution or encoding-range error.
pub fn assemble_items(items: &[SourceItem]) -> Result<Image, AsmError> {
    let symbols = layout(items)?;
    emit(items, symbols)
}

/// Pass 1: walk the items, maintain the two location counters, record label
/// addresses and `.equ` definitions.
fn layout(items: &[SourceItem]) -> Result<HashMap<String, u32>, AsmError> {
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut lc = LocationCounters::new();
    for si in items {
        match &si.item {
            Item::Label(name) => {
                let addr = lc.here();
                if symbols.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::new(si.line, format!("duplicate label `{name}`")));
                }
            }
            Item::Section(s) => lc.section = *s,
            Item::Instr(_) => lc.advance(si, 4)?,
            Item::Word(_) => {
                lc.check_word_aligned(si)?;
                lc.advance(si, 4)?;
            }
            Item::Space(n) => {
                let bytes = eval_space(n, &symbols, si.line)?;
                lc.advance(si, bytes)?;
            }
            Item::Align(n) => lc.align(si, *n)?,
            Item::Equ(name, expr) => {
                // `.equ` must be evaluable from symbols defined above it, so
                // that pass-1 layout stays single-pass and deterministic.
                let v = expr
                    .eval(&symbols)
                    .map_err(|e| AsmError::new(si.line, format!("in .equ {name}: {e}")))?;
                if symbols.insert(name.clone(), v as u32).is_some() {
                    return Err(AsmError::new(si.line, format!("duplicate symbol `{name}`")));
                }
            }
        }
    }
    Ok(symbols)
}

/// Pass 2: evaluate expressions and encode instructions and data.
fn emit(items: &[SourceItem], symbols: HashMap<String, u32>) -> Result<Image, AsmError> {
    let mut image = Image {
        symbols,
        ..Image::default()
    };
    let mut lc = LocationCounters::new();
    for si in items {
        match &si.item {
            Item::Label(_) | Item::Equ(..) => {}
            Item::Section(s) => lc.section = *s,
            Item::Instr(sym) => {
                let pc = lc.here();
                let instr = resolve(sym, pc, &image.symbols, si.line)?;
                let word = instr
                    .encode()
                    .map_err(|e| AsmError::new(si.line, e.to_string()))?;
                debug_assert_eq!(lc.section, Section::Text, "instr outside .text");
                image.text.push(word);
                image.lines.push(si.line);
                lc.advance(si, 4)?;
            }
            Item::Word(e) => {
                lc.check_word_aligned(si)?;
                let v = e
                    .eval(&image.symbols)
                    .map_err(|err| AsmError::new(si.line, err.to_string()))?;
                match lc.section {
                    Section::Text => {
                        image.text.push(v as u32);
                        image.lines.push(si.line);
                    }
                    Section::Data => image.data.extend_from_slice(&(v as u32).to_le_bytes()),
                }
                lc.advance(si, 4)?;
            }
            Item::Space(n) => {
                let bytes = eval_space(n, &image.symbols, si.line)?;
                pad(&mut image, lc.section, bytes, si.line)?;
                lc.advance(si, bytes)?;
            }
            Item::Align(n) => {
                lc.align_emit(si, *n, &mut image)?;
            }
        }
    }
    image.entry = image
        .symbols
        .get("main")
        .or_else(|| image.symbols.get("_start"))
        .copied()
        .unwrap_or(CODE_BASE);
    Ok(image)
}

fn pad(image: &mut Image, section: Section, bytes: u32, line: usize) -> Result<(), AsmError> {
    match section {
        Section::Text => {
            if !bytes.is_multiple_of(4) {
                return Err(AsmError::new(
                    line,
                    format!("text padding of {bytes} bytes is not word-aligned"),
                ));
            }
            for _ in 0..bytes / 4 {
                image.text.push(0);
                image.lines.push(line);
            }
        }
        Section::Data => image.data.extend(std::iter::repeat_n(0u8, bytes as usize)),
    }
    Ok(())
}

/// Resolves a symbolic instruction at its final address.
fn resolve(
    sym: &SymInstr,
    pc: u32,
    symbols: &HashMap<String, u32>,
    line: usize,
) -> Result<Instr, AsmError> {
    let patch = match sym {
        SymInstr::Ready(i) => return Ok(*i),
        SymInstr::Patch { kind, expr } => (kind, expr),
    };
    let (kind, expr) = patch;
    let value = expr
        .eval(symbols)
        .map_err(|e| AsmError::new(line, e.to_string()))?;
    let imm32 = value as i32;
    // Branch/jump targets that reference symbols are absolute addresses and
    // become pc-relative here; pure constants are raw offsets.
    let rel = |v: i64| -> i32 {
        if expr.references_symbol() {
            (v as u32).wrapping_sub(pc) as i32
        } else {
            v as i32
        }
    };
    Ok(match *kind {
        PatchKind::Jalr { rd, rs1 } => Instr::Jalr {
            rd,
            rs1,
            offset: imm32,
        },
        PatchKind::Load { kind, rd, rs1 } => Instr::Load {
            kind,
            rd,
            rs1,
            offset: imm32,
        },
        PatchKind::Store { kind, rs1, rs2 } => Instr::Store {
            kind,
            rs1,
            rs2,
            offset: imm32,
        },
        PatchKind::OpImm { kind, rd, rs1 } => Instr::OpImm {
            kind,
            rd,
            rs1,
            imm: imm32,
        },
        PatchKind::Lui { rd } => {
            let field = value as u32;
            if field > 0xfffff {
                return Err(AsmError::new(
                    line,
                    format!("lui field {field:#x} exceeds 20 bits"),
                ));
            }
            Instr::Lui {
                rd,
                imm: field << 12,
            }
        }
        PatchKind::Auipc { rd } => {
            let field = value as u32;
            if field > 0xfffff {
                return Err(AsmError::new(
                    line,
                    format!("auipc field {field:#x} exceeds 20 bits"),
                ));
            }
            Instr::Auipc {
                rd,
                imm: field << 12,
            }
        }
        PatchKind::Branch { kind, rs1, rs2 } => Instr::Branch {
            kind,
            rs1,
            rs2,
            offset: rel(value),
        },
        PatchKind::Jal { rd } => Instr::Jal {
            rd,
            offset: rel(value),
        },
        PatchKind::PJal { rd, rs1 } => Instr::PJal {
            rd,
            rs1,
            offset: rel(value),
        },
        PatchKind::PLwcv { rd } => Instr::PLwcv { rd, offset: imm32 },
        PatchKind::PSwcv { rs1, rs2 } => Instr::PSwcv {
            rs1,
            rs2,
            offset: imm32,
        },
        PatchKind::PLwre { rd } => Instr::PLwre { rd, offset: imm32 },
        PatchKind::PSwre { rs1, rs2 } => Instr::PSwre {
            rs1,
            rs2,
            offset: imm32,
        },
    })
}

/// The text/data location counters of one pass.
struct LocationCounters {
    section: Section,
    text: u32,
    data: u32,
}

impl LocationCounters {
    fn new() -> LocationCounters {
        LocationCounters {
            section: Section::Text,
            text: CODE_BASE,
            data: SHARED_BASE,
        }
    }

    fn here(&self) -> u32 {
        match self.section {
            Section::Text => self.text,
            Section::Data => self.data,
        }
    }

    fn advance(&mut self, si: &SourceItem, bytes: u32) -> Result<(), AsmError> {
        let lc = match self.section {
            Section::Text => &mut self.text,
            Section::Data => &mut self.data,
        };
        *lc = lc
            .checked_add(bytes)
            .ok_or_else(|| AsmError::new(si.line, "section overflow"))?;
        Ok(())
    }

    /// Pass-1 alignment (no emission).
    fn align(&mut self, si: &SourceItem, to: u32) -> Result<(), AsmError> {
        let here = self.here();
        let aligned = here.next_multiple_of(to);
        self.advance(si, aligned - here)
    }

    /// Pass-2 alignment, emitting the pad bytes.
    fn align_emit(&mut self, si: &SourceItem, to: u32, image: &mut Image) -> Result<(), AsmError> {
        let here = self.here();
        let aligned = here.next_multiple_of(to);
        let bytes = aligned - here;
        if bytes > 0 {
            pad(image, self.section, bytes, si.line)?;
            self.advance(si, bytes)?;
        }
        Ok(())
    }

    /// `.word` requires an already-aligned location counter so that a label
    /// written just before it names the word itself.
    fn check_word_aligned(&self, si: &SourceItem) -> Result<(), AsmError> {
        if !self.here().is_multiple_of(4) {
            return Err(AsmError::new(
                si.line,
                "`.word` at unaligned address; insert `.align 4` first",
            ));
        }
        Ok(())
    }
}

/// Evaluates a `.space` byte count from the symbols defined so far.
fn eval_space(expr: &Expr, symbols: &HashMap<String, u32>, line: usize) -> Result<u32, AsmError> {
    let v = expr
        .eval(symbols)
        .map_err(|e| AsmError::new(line, format!("in .space: {e}")))?;
    u32::try_from(v).map_err(|_| AsmError::new(line, format!("bad .space count {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_isa::{BranchKind, OpImmKind, Reg};

    #[test]
    fn forward_and_backward_branches() {
        let img = assemble(
            "top:\n  addi a0, a0, 1\n  bne a0, a1, top\n  beq a0, a1, done\n  nop\ndone:\n  ret\n",
        )
        .unwrap();
        // bne at pc=4 targets 0 → offset -4.
        let bne = Instr::decode(img.text[1]).unwrap();
        assert_eq!(
            bne,
            Instr::Branch {
                kind: BranchKind::Ne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -4
            }
        );
        // beq at pc=8 targets 16 → offset 8.
        let beq = Instr::decode(img.text[2]).unwrap();
        assert!(matches!(beq, Instr::Branch { offset: 8, .. }));
    }

    #[test]
    fn la_resolves_data_address() {
        let img = assemble(".data\nv: .word 7\n.text\nmain: la a0, v\n lw a1, 0(a0)\n").unwrap();
        assert_eq!(img.symbol("v"), Some(SHARED_BASE));
        // lui a0, %hi(0x80000000) == lui a0, 0x80000.
        let lui = Instr::decode(img.text[0]).unwrap();
        assert_eq!(
            lui,
            Instr::Lui {
                rd: Reg::A0,
                imm: 0x8000_0000
            }
        );
        let addi = Instr::decode(img.text[1]).unwrap();
        assert_eq!(
            addi,
            Instr::OpImm {
                kind: OpImmKind::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 0
            }
        );
        assert_eq!(img.data, vec![7, 0, 0, 0]);
    }

    #[test]
    fn entry_prefers_main() {
        let img = assemble("boot: nop\nmain: nop\n").unwrap();
        assert_eq!(img.entry, 4);
        let img = assemble("_start: nop\n").unwrap();
        assert_eq!(img.entry, 0);
        let img = assemble("nop\n").unwrap();
        assert_eq!(img.entry, CODE_BASE);
    }

    #[test]
    fn equ_and_expressions() {
        let img = assemble(".equ N, 16\n.data\nv: .space N\nw: .word N+1\n").unwrap();
        assert_eq!(img.symbol("w"), Some(SHARED_BASE + 16));
        assert_eq!(&img.data[16..20], &[17, 0, 0, 0]);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(err.to_string().contains("undefined symbol"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let mut src = String::from("start:\n");
        for _ in 0..2000 {
            src.push_str("  nop\n");
        }
        src.push_str("  beq a0, a1, start\n");
        let err = assemble(&src).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn space_in_text_must_be_word_aligned() {
        assert!(assemble(".space 3\n").is_err());
        assert!(assemble(".space 8\n").is_ok());
    }

    #[test]
    fn unaligned_word_rejected() {
        let err = assemble(".data\n.space 2\nv: .word 5\n").unwrap_err();
        assert!(err.to_string().contains("unaligned"));
        // With explicit alignment the label names the word.
        let img = assemble(".data\n.space 2\n.align 4\nv: .word 5\n").unwrap();
        assert_eq!(img.symbol("v"), Some(SHARED_BASE + 4));
        assert_eq!(img.data.len(), 8);
    }

    #[test]
    fn lines_track_source() {
        let img = assemble("nop\nnop\nli a0, 0x12345678\n").unwrap();
        assert_eq!(img.lines, vec![1, 2, 3, 3]);
    }

    #[test]
    fn paper_main_listing_assembles() {
        // Fig. 6 of the paper (labels added for data/functions).
        let src = "\
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0
    la   a0, thread
    la   a1, data
    jal  LBP_parallel_start
rp:
    lw   ra, 0(sp)
    lw   t0, 4(sp)
    addi sp, sp, 8
    p_ret
thread:
    ret
LBP_parallel_start:
    ret
.data
data: .word 0
";
        let img = assemble(src).unwrap();
        assert!(img.text.len() >= 12);
        assert_eq!(img.entry, 0);
    }

    #[test]
    fn raw_numeric_branch_offsets() {
        // A constant operand is a raw pc-relative offset, as in disassembly.
        let img = assemble("jal zero, 8\n").unwrap();
        assert_eq!(
            Instr::decode(img.text[0]).unwrap(),
            Instr::Jal {
                rd: Reg::ZERO,
                offset: 8
            }
        );
    }
}
