//! # lbp-asm — assembler and code builder for the PISC ISA
//!
//! A two-pass assembler for RV32IM + X_PAR assembly text, the symbolic
//! program model behind it, and a text-oriented code-generation builder
//! used by the Deterministic OpenMP runtime and the mini-C compiler.
//!
//! The accepted syntax is the GNU-as subset the paper's listings use,
//! extended with the twelve X_PAR mnemonics (`p_fc`, `p_fn`, `p_swcv`,
//! `p_lwcv`, `p_swre`, `p_lwre`, `p_jal`, `p_jalr`, `p_ret`, `p_set`,
//! `p_merge`, `p_syncm`).
//!
//! # Examples
//!
//! Assemble the paper's fork protocol (Fig. 8):
//!
//! ```
//! let image = lbp_asm::assemble(
//!     "fork:
//!         p_fc    t6
//!         p_swcv  ra, t6, 0
//!         p_swcv  t0, t6, 4
//!         p_swcv  a1, t6, 8
//!         p_merge t0, t0, t6
//!         p_syncm
//!         p_jalr  ra, t0, a0
//!         p_lwcv  ra, 0
//!         p_lwcv  t0, 4
//!         p_lwcv  a1, 8",
//! )?;
//! assert_eq!(image.text.len(), 10);
//! # Ok::<(), lbp_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod builder;
mod error;
mod expr;
mod image;
mod item;
mod parser;

pub use assemble::{assemble, assemble_items};
pub use builder::Asm;
pub use error::AsmError;
pub use expr::{hi20, lo12, Expr, UndefinedSymbol};
pub use image::Image;
pub use item::{Item, PatchKind, Section, SourceItem, SymInstr};
pub use parser::parse_program;
