//! Assembly error reporting.

use std::fmt;

/// An error produced while parsing or assembling a program, with the
/// 1-based source line it occurred on (line 0 marks generated code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line (0 for builder-generated items).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    /// Creates an error at a source line.
    pub fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}
