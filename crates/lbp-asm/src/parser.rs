//! Line-oriented parser for PISC assembly text.
//!
//! The accepted syntax is the GNU-as subset used throughout the paper's
//! listings (Figs. 6-8): one instruction, label or directive per line,
//! `#` comments, `.text`/`.data`/`.word`/`.space`/`.align`/`.equ`
//! directives, and the usual RV32 pseudo-instructions (`li`, `la`, `mv`,
//! `j`, `call`, `ret`, `beqz`, ..., plus the paper's `p_ret`).

use lbp_isa::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, Reg, StoreKind};

use crate::error::AsmError;
use crate::expr::Expr;
use crate::item::{Item, PatchKind, Section, SourceItem, SymInstr};

/// Parses a whole assembly source into symbolic items.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
///
/// # Examples
///
/// ```
/// let items = lbp_asm::parse_program("start:\n  addi a0, a0, 1\n  ret\n")?;
/// assert_eq!(items.len(), 3);
/// # Ok::<(), lbp_asm::AsmError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Vec<SourceItem>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parse_line(line, line_no, &mut items)?;
    }
    Ok(items)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_line(line: &str, line_no: usize, items: &mut Vec<SourceItem>) -> Result<(), AsmError> {
    // Leading labels: `name:` possibly followed by more content.
    if let Some(colon) = line.find(':') {
        let (head, rest) = line.split_at(colon);
        let head = head.trim();
        if is_ident(head) {
            items.push(SourceItem {
                item: Item::Label(head.to_owned()),
                line: line_no,
            });
            let rest = rest[1..].trim();
            if rest.is_empty() {
                return Ok(());
            }
            return parse_line(rest, line_no, items);
        }
    }
    if let Some(rest) = line.strip_prefix('.') {
        return parse_directive(rest, line_no, items);
    }
    parse_instruction(line, line_no, items)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_directive(
    rest: &str,
    line_no: usize,
    items: &mut Vec<SourceItem>,
) -> Result<(), AsmError> {
    let (name, args) = split_mnemonic(rest);
    let push = |items: &mut Vec<SourceItem>, item| {
        items.push(SourceItem {
            item,
            line: line_no,
        });
    };
    match name {
        "text" => push(items, Item::Section(Section::Text)),
        "data" => push(items, Item::Section(Section::Data)),
        "word" => {
            if args.is_empty() {
                return Err(AsmError::new(line_no, ".word needs at least one value"));
            }
            for a in split_operands(args) {
                let e = parse_expr(a.trim(), line_no)?;
                push(items, Item::Word(e));
            }
        }
        "space" | "skip" => {
            let n = parse_expr(args.trim(), line_no)?;
            push(items, Item::Space(n));
        }
        "align" | "balign" => {
            let n = parse_expr(args.trim(), line_no)?;
            match n {
                Expr::Const(v) if v > 0 && (v as u64).is_power_of_two() => {
                    push(items, Item::Align(v as u32));
                }
                _ => {
                    return Err(AsmError::new(
                        line_no,
                        ".align needs a positive power-of-two byte count",
                    ))
                }
            }
        }
        "equ" | "set" => {
            let mut parts = split_operands(args);
            if parts.len() != 2 {
                return Err(AsmError::new(line_no, ".equ needs `name, value`"));
            }
            let value = parse_expr(parts.pop().expect("len 2").trim(), line_no)?;
            let name = parts.pop().expect("len 1").trim().to_owned();
            if !is_ident(&name) {
                return Err(AsmError::new(line_no, format!("bad symbol name `{name}`")));
            }
            push(items, Item::Equ(name, value));
        }
        // Accepted and ignored: visibility/metadata directives that have no
        // meaning in a flat memory image.
        "global" | "globl" | "local" | "type" | "size" | "file" | "option" | "section" => {}
        _ => {
            return Err(AsmError::new(
                line_no,
                format!("unknown directive `.{name}`"),
            ))
        }
    }
    Ok(())
}

fn split_mnemonic(line: &str) -> (&str, &str) {
    match line.find(|c: char| c.is_whitespace()) {
        Some(pos) => (&line[..pos], line[pos..].trim()),
        None => (line, ""),
    }
}

/// Splits an operand list on top-level commas (commas inside parentheses,
/// as in `%hi(a, b)` — which we do not generate but guard against — stay).
fn split_operands(args: &str) -> Vec<&str> {
    if args.trim().is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in args.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&args[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&args[start..]);
    out
}

fn parse_reg(s: &str, line_no: usize) -> Result<Reg, AsmError> {
    s.trim()
        .parse::<Reg>()
        .map_err(|e| AsmError::new(line_no, e.to_string()))
}

/// Parses `expr` or `expr(reg)` or `(reg)`.
fn parse_mem_operand(s: &str, line_no: usize) -> Result<(Expr, Reg), AsmError> {
    let s = s.trim();
    let open = s
        .rfind('(')
        .ok_or_else(|| AsmError::new(line_no, format!("expected `offset(base)`, got `{s}`")))?;
    if !s.ends_with(')') {
        return Err(AsmError::new(line_no, format!("unclosed `(` in `{s}`")));
    }
    let base = parse_reg(&s[open + 1..s.len() - 1], line_no)?;
    let off_text = s[..open].trim();
    let off = if off_text.is_empty() {
        Expr::konst(0)
    } else {
        parse_expr(off_text, line_no)?
    };
    Ok((off, base))
}

/// Parses a constant expression: `term (('+'|'-') term)*`.
pub(crate) fn parse_expr(s: &str, line_no: usize) -> Result<Expr, AsmError> {
    let mut p = ExprParser {
        text: s,
        pos: 0,
        line_no,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(AsmError::new(
            line_no,
            format!("trailing text in expression `{s}`"),
        ));
    }
    Ok(e.fold())
}

struct ExprParser<'a> {
    text: &'a str,
    pos: usize,
    line_no: usize,
}

impl<'a> ExprParser<'a> {
    fn err(&self, msg: String) -> AsmError {
        AsmError::new(self.line_no, msg)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn expr(&mut self) -> Result<Expr, AsmError> {
        let mut acc = self.term()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('+') => {
                    self.bump();
                    acc = acc.add(self.term()?);
                }
                Some('-') => {
                    self.bump();
                    acc = acc.sub(self.term()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, AsmError> {
        self.skip_ws();
        match self.peek() {
            Some('-') => {
                self.bump();
                Ok(Expr::konst(0).sub(self.term()?))
            }
            Some('%') => {
                self.bump();
                let name = self.ident()?;
                self.skip_ws();
                if self.bump() != Some('(') {
                    return Err(self.err(format!("expected `(` after %{name}")));
                }
                let inner = self.expr()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err(self.err(format!("expected `)` closing %{name}")));
                }
                match name.as_str() {
                    "hi" => Ok(inner.hi()),
                    "lo" => Ok(inner.lo()),
                    other => Err(self.err(format!("unknown operator %{other}"))),
                }
            }
            Some('(') => {
                self.bump();
                let inner = self.expr()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err(self.err("expected `)`".to_owned()));
                }
                Ok(inner)
            }
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                Ok(Expr::sym(self.ident()?))
            }
            other => Err(self.err(format!("unexpected {other:?} in expression"))),
        }
    }

    fn number(&mut self) -> Result<Expr, AsmError> {
        let start = self.pos;
        let rest = &self.text[self.pos..];
        let (radix, skip) = if rest.starts_with("0x") || rest.starts_with("0X") {
            (16, 2)
        } else if rest.starts_with("0b") || rest.starts_with("0B") {
            (2, 2)
        } else {
            (10, 0)
        };
        self.pos += skip;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        let digits = self.text[start + skip..self.pos].replace('_', "");
        i64::from_str_radix(&digits, radix)
            .map(Expr::konst)
            .map_err(|_| self.err(format!("bad number `{}`", &self.text[start..self.pos])))
    }

    fn ident(&mut self) -> Result<String, AsmError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected identifier".to_owned()));
        }
        Ok(self.text[start..self.pos].to_owned())
    }
}

fn parse_instruction(line: &str, ln: usize, items: &mut Vec<SourceItem>) -> Result<(), AsmError> {
    let (mnemonic, args_text) = split_mnemonic(line);
    let args = split_operands(args_text);
    let argc = args.len();
    let need = |n: usize| -> Result<(), AsmError> {
        if argc == n {
            Ok(())
        } else {
            Err(AsmError::new(
                ln,
                format!("`{mnemonic}` expects {n} operands, got {argc}"),
            ))
        }
    };
    let reg = |i: usize| parse_reg(args[i], ln);
    let expr = |i: usize| parse_expr(args[i].trim(), ln);
    let push = |items: &mut Vec<SourceItem>, si: SymInstr| {
        items.push(SourceItem {
            item: Item::Instr(si),
            line: ln,
        });
    };
    // Helper to emit a patchable or folded instruction.
    let patch = |kind: PatchKind, e: Expr| SymInstr::Patch { kind, expr: e };

    if let Some(kind) = branch_kind(mnemonic) {
        need(3)?;
        let e = expr(2)?;
        push(
            items,
            patch(
                PatchKind::Branch {
                    kind,
                    rs1: reg(0)?,
                    rs2: reg(1)?,
                },
                e,
            ),
        );
        return Ok(());
    }
    if let Some((kind, swap)) = swapped_branch(mnemonic) {
        need(3)?;
        let (a, b) = if swap { (1, 0) } else { (0, 1) };
        let e = expr(2)?;
        push(
            items,
            patch(
                PatchKind::Branch {
                    kind,
                    rs1: reg(a)?,
                    rs2: reg(b)?,
                },
                e,
            ),
        );
        return Ok(());
    }
    if let Some((kind, zero_side)) = zero_branch(mnemonic) {
        need(2)?;
        let r = reg(0)?;
        let (rs1, rs2) = match zero_side {
            ZeroSide::Rs2 => (r, Reg::ZERO),
            ZeroSide::Rs1 => (Reg::ZERO, r),
        };
        let e = expr(1)?;
        push(items, patch(PatchKind::Branch { kind, rs1, rs2 }, e));
        return Ok(());
    }
    if let Some(kind) = load_kind(mnemonic) {
        need(2)?;
        let (off, base) = parse_mem_operand(args[1], ln)?;
        push(
            items,
            patch(
                PatchKind::Load {
                    kind,
                    rd: reg(0)?,
                    rs1: base,
                },
                off,
            ),
        );
        return Ok(());
    }
    if let Some(kind) = store_kind(mnemonic) {
        need(2)?;
        let (off, base) = parse_mem_operand(args[1], ln)?;
        push(
            items,
            patch(
                PatchKind::Store {
                    kind,
                    rs1: base,
                    rs2: reg(0)?,
                },
                off,
            ),
        );
        return Ok(());
    }
    if let Some(kind) = op_imm_kind(mnemonic) {
        need(3)?;
        push(
            items,
            patch(
                PatchKind::OpImm {
                    kind,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                },
                expr(2)?,
            ),
        );
        return Ok(());
    }
    if let Some(kind) = op_kind(mnemonic) {
        need(3)?;
        push(
            items,
            SymInstr::Ready(Instr::Op {
                kind,
                rd: reg(0)?,
                rs1: reg(1)?,
                rs2: reg(2)?,
            }),
        );
        return Ok(());
    }

    match mnemonic {
        "lui" => {
            need(2)?;
            push(items, patch(PatchKind::Lui { rd: reg(0)? }, expr(1)?));
        }
        "auipc" => {
            need(2)?;
            push(items, patch(PatchKind::Auipc { rd: reg(0)? }, expr(1)?));
        }
        "jal" => match argc {
            1 => push(items, patch(PatchKind::Jal { rd: Reg::RA }, expr(0)?)),
            2 => push(items, patch(PatchKind::Jal { rd: reg(0)? }, expr(1)?)),
            _ => return Err(AsmError::new(ln, "`jal` expects 1 or 2 operands")),
        },
        "jalr" => match argc {
            1 => {
                // `jalr rs` == jalr ra, 0(rs)
                let rs = reg(0)?;
                push(
                    items,
                    SymInstr::Ready(Instr::Jalr {
                        rd: Reg::RA,
                        rs1: rs,
                        offset: 0,
                    }),
                );
            }
            2 => {
                let (off, base) = parse_mem_operand(args[1], ln)?;
                push(
                    items,
                    patch(
                        PatchKind::Jalr {
                            rd: reg(0)?,
                            rs1: base,
                        },
                        off,
                    ),
                );
            }
            _ => return Err(AsmError::new(ln, "`jalr` expects 1 or 2 operands")),
        },
        "j" => {
            need(1)?;
            push(items, patch(PatchKind::Jal { rd: Reg::ZERO }, expr(0)?));
        }
        "jr" => {
            need(1)?;
            push(
                items,
                SymInstr::Ready(Instr::Jalr {
                    rd: Reg::ZERO,
                    rs1: reg(0)?,
                    offset: 0,
                }),
            );
        }
        "call" => {
            need(1)?;
            push(items, patch(PatchKind::Jal { rd: Reg::RA }, expr(0)?));
        }
        "ret" => {
            need(0)?;
            push(
                items,
                SymInstr::Ready(Instr::Jalr {
                    rd: Reg::ZERO,
                    rs1: Reg::RA,
                    offset: 0,
                }),
            );
        }
        "nop" => {
            need(0)?;
            push(items, SymInstr::Ready(Instr::NOP));
        }
        "li" => {
            need(2)?;
            expand_li(reg(0)?, expr(1)?, ln, items)?;
        }
        "la" => {
            need(2)?;
            let rd = reg(0)?;
            let e = expr(1)?;
            items.push(SourceItem {
                item: Item::Instr(patch(PatchKind::Lui { rd }, e.clone().hi())),
                line: ln,
            });
            items.push(SourceItem {
                item: Item::Instr(patch(
                    PatchKind::OpImm {
                        kind: OpImmKind::Add,
                        rd,
                        rs1: rd,
                    },
                    e.lo(),
                )),
                line: ln,
            });
        }
        "mv" => {
            need(2)?;
            push(
                items,
                SymInstr::Ready(Instr::OpImm {
                    kind: OpImmKind::Add,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    imm: 0,
                }),
            );
        }
        "not" => {
            need(2)?;
            push(
                items,
                SymInstr::Ready(Instr::OpImm {
                    kind: OpImmKind::Xor,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    imm: -1,
                }),
            );
        }
        "neg" => {
            need(2)?;
            push(
                items,
                SymInstr::Ready(Instr::Op {
                    kind: OpKind::Sub,
                    rd: reg(0)?,
                    rs1: Reg::ZERO,
                    rs2: reg(1)?,
                }),
            );
        }
        "seqz" => {
            need(2)?;
            push(
                items,
                SymInstr::Ready(Instr::OpImm {
                    kind: OpImmKind::Sltu,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    imm: 1,
                }),
            );
        }
        "snez" => {
            need(2)?;
            push(
                items,
                SymInstr::Ready(Instr::Op {
                    kind: OpKind::Sltu,
                    rd: reg(0)?,
                    rs1: Reg::ZERO,
                    rs2: reg(1)?,
                }),
            );
        }
        // --- X_PAR ---
        "p_fc" => {
            need(1)?;
            push(items, SymInstr::Ready(Instr::PFc { rd: reg(0)? }));
        }
        "p_fn" => {
            need(1)?;
            push(items, SymInstr::Ready(Instr::PFn { rd: reg(0)? }));
        }
        "p_set" => match argc {
            1 => {
                let r = reg(0)?;
                push(items, SymInstr::Ready(Instr::PSet { rd: r, rs1: r }));
            }
            2 => push(
                items,
                SymInstr::Ready(Instr::PSet {
                    rd: reg(0)?,
                    rs1: reg(1)?,
                }),
            ),
            _ => return Err(AsmError::new(ln, "`p_set` expects 1 or 2 operands")),
        },
        "p_merge" => {
            need(3)?;
            push(
                items,
                SymInstr::Ready(Instr::PMerge {
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    rs2: reg(2)?,
                }),
            );
        }
        "p_syncm" => {
            need(0)?;
            push(items, SymInstr::Ready(Instr::PSyncm));
        }
        "p_jalr" => {
            need(3)?;
            push(
                items,
                SymInstr::Ready(Instr::PJalr {
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    rs2: reg(2)?,
                }),
            );
        }
        "p_jal" => {
            need(3)?;
            push(
                items,
                patch(
                    PatchKind::PJal {
                        rd: reg(0)?,
                        rs1: reg(1)?,
                    },
                    expr(2)?,
                ),
            );
        }
        "p_ret" => match argc {
            0 => push(
                items,
                SymInstr::Ready(Instr::PJalr {
                    rd: Reg::ZERO,
                    rs1: Reg::RA,
                    rs2: Reg::T0,
                }),
            ),
            2 => push(
                items,
                SymInstr::Ready(Instr::PJalr {
                    rd: Reg::ZERO,
                    rs1: reg(0)?,
                    rs2: reg(1)?,
                }),
            ),
            _ => return Err(AsmError::new(ln, "`p_ret` expects 0 or 2 operands")),
        },
        // Paper operand order: value register first, then target hart.
        "p_swcv" => {
            need(3)?;
            push(
                items,
                patch(
                    PatchKind::PSwcv {
                        rs1: reg(1)?,
                        rs2: reg(0)?,
                    },
                    expr(2)?,
                ),
            );
        }
        "p_lwcv" => {
            need(2)?;
            push(items, patch(PatchKind::PLwcv { rd: reg(0)? }, expr(1)?));
        }
        "p_swre" => {
            need(3)?;
            push(
                items,
                patch(
                    PatchKind::PSwre {
                        rs1: reg(1)?,
                        rs2: reg(0)?,
                    },
                    expr(2)?,
                ),
            );
        }
        "p_lwre" => {
            need(2)?;
            push(items, patch(PatchKind::PLwre { rd: reg(0)? }, expr(1)?));
        }
        other => {
            return Err(AsmError::new(ln, format!("unknown mnemonic `{other}`")));
        }
    }
    Ok(())
}

/// Expands `li rd, expr`. Constant values that fit 12 bits become a single
/// `addi`; everything else becomes `lui %hi` + `addi %lo`.
fn expand_li(rd: Reg, e: Expr, ln: usize, items: &mut Vec<SourceItem>) -> Result<(), AsmError> {
    if let Expr::Const(v) = e {
        if !(i32::MIN as i64..=u32::MAX as i64).contains(&v) {
            return Err(AsmError::new(ln, format!("`li` value {v} exceeds 32 bits")));
        }
        if (-2048..=2047).contains(&v) {
            items.push(SourceItem {
                item: Item::Instr(SymInstr::Ready(Instr::OpImm {
                    kind: OpImmKind::Add,
                    rd,
                    rs1: Reg::ZERO,
                    imm: v as i32,
                })),
                line: ln,
            });
            return Ok(());
        }
    }
    items.push(SourceItem {
        item: Item::Instr(SymInstr::Patch {
            kind: PatchKind::Lui { rd },
            expr: e.clone().hi(),
        }),
        line: ln,
    });
    items.push(SourceItem {
        item: Item::Instr(SymInstr::Patch {
            kind: PatchKind::OpImm {
                kind: OpImmKind::Add,
                rd,
                rs1: rd,
            },
            expr: e.lo(),
        }),
        line: ln,
    });
    Ok(())
}

fn branch_kind(m: &str) -> Option<BranchKind> {
    Some(match m {
        "beq" => BranchKind::Eq,
        "bne" => BranchKind::Ne,
        "blt" => BranchKind::Lt,
        "bge" => BranchKind::Ge,
        "bltu" => BranchKind::Ltu,
        "bgeu" => BranchKind::Geu,
        _ => return None,
    })
}

fn swapped_branch(m: &str) -> Option<(BranchKind, bool)> {
    Some(match m {
        "bgt" => (BranchKind::Lt, true),
        "ble" => (BranchKind::Ge, true),
        "bgtu" => (BranchKind::Ltu, true),
        "bleu" => (BranchKind::Geu, true),
        _ => return None,
    })
}

enum ZeroSide {
    Rs1,
    Rs2,
}

fn zero_branch(m: &str) -> Option<(BranchKind, ZeroSide)> {
    Some(match m {
        "beqz" => (BranchKind::Eq, ZeroSide::Rs2),
        "bnez" => (BranchKind::Ne, ZeroSide::Rs2),
        "bltz" => (BranchKind::Lt, ZeroSide::Rs2),
        "bgez" => (BranchKind::Ge, ZeroSide::Rs2),
        "blez" => (BranchKind::Ge, ZeroSide::Rs1),
        "bgtz" => (BranchKind::Lt, ZeroSide::Rs1),
        _ => return None,
    })
}

fn load_kind(m: &str) -> Option<LoadKind> {
    Some(match m {
        "lb" => LoadKind::B,
        "lh" => LoadKind::H,
        "lw" => LoadKind::W,
        "lbu" => LoadKind::Bu,
        "lhu" => LoadKind::Hu,
        _ => return None,
    })
}

fn store_kind(m: &str) -> Option<StoreKind> {
    Some(match m {
        "sb" => StoreKind::B,
        "sh" => StoreKind::H,
        "sw" => StoreKind::W,
        _ => return None,
    })
}

fn op_imm_kind(m: &str) -> Option<OpImmKind> {
    Some(match m {
        "addi" => OpImmKind::Add,
        "slti" => OpImmKind::Slt,
        "sltiu" => OpImmKind::Sltu,
        "xori" => OpImmKind::Xor,
        "ori" => OpImmKind::Or,
        "andi" => OpImmKind::And,
        "slli" => OpImmKind::Sll,
        "srli" => OpImmKind::Srl,
        "srai" => OpImmKind::Sra,
        _ => return None,
    })
}

fn op_kind(m: &str) -> Option<OpKind> {
    Some(match m {
        "add" => OpKind::Add,
        "sub" => OpKind::Sub,
        "sll" => OpKind::Sll,
        "slt" => OpKind::Slt,
        "sltu" => OpKind::Sltu,
        "xor" => OpKind::Xor,
        "srl" => OpKind::Srl,
        "sra" => OpKind::Sra,
        "or" => OpKind::Or,
        "and" => OpKind::And,
        "mul" => OpKind::Mul,
        "mulh" => OpKind::Mulh,
        "mulhsu" => OpKind::Mulhsu,
        "mulhu" => OpKind::Mulhu,
        "div" => OpKind::Div,
        "divu" => OpKind::Divu,
        "rem" => OpKind::Rem,
        "remu" => OpKind::Remu,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_instr(src: &str) -> SymInstr {
        let items = parse_program(src).unwrap();
        assert_eq!(items.len(), 1, "{src} should parse to one item");
        match &items[0].item {
            Item::Instr(si) => si.clone(),
            other => panic!("expected instruction, got {other:?}"),
        }
    }

    #[test]
    fn parses_basic_ops() {
        assert_eq!(
            one_instr("add a0, a1, a2"),
            SymInstr::Ready(Instr::Op {
                kind: OpKind::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            })
        );
    }

    #[test]
    fn parses_memory_operands() {
        let si = one_instr("lw ra, 0(sp)");
        assert_eq!(
            si,
            SymInstr::Patch {
                kind: PatchKind::Load {
                    kind: LoadKind::W,
                    rd: Reg::RA,
                    rs1: Reg::SP
                },
                expr: Expr::konst(0),
            }
        );
        let si = one_instr("sw t0, 4(sp)");
        assert!(matches!(
            si,
            SymInstr::Patch {
                kind: PatchKind::Store {
                    rs2: Reg::T0,
                    rs1: Reg::SP,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn li_small_is_one_addi() {
        assert_eq!(
            one_instr("li t0, -1"),
            SymInstr::Ready(Instr::OpImm {
                kind: OpImmKind::Add,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: -1
            })
        );
    }

    #[test]
    fn li_large_expands_to_two() {
        let items = parse_program("li a0, 0x12345678").unwrap();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn la_expands_to_lui_addi() {
        let items = parse_program("la a0, table").unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(
            &items[0].item,
            Item::Instr(SymInstr::Patch {
                kind: PatchKind::Lui { .. },
                expr: Expr::Hi(_)
            })
        ));
    }

    #[test]
    fn labels_and_comments() {
        let items = parse_program("loop: # head\n  bnez a0, loop # back\n").unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].item, Item::Label("loop".into()));
        assert_eq!(items[1].line, 2);
    }

    #[test]
    fn label_with_code_on_same_line() {
        let items = parse_program("start: addi a0, a0, 1").unwrap();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn paper_fork_protocol_parses() {
        // The exact instruction sequence of the paper's Fig. 8.
        let src = "\
p_fc   t6
p_swcv ra, t6, 0
p_swcv t0, t6, 4
p_swcv a1, t6, 8
p_merge t0, t0, t6
p_syncm
p_jalr ra, t0, a0
p_lwcv ra, 0
p_lwcv t0, 4
p_lwcv a1, 8
";
        let items = parse_program(src).unwrap();
        assert_eq!(items.len(), 10);
        // p_swcv's first text operand is the value (rs2), second the hart (rs1).
        match &items[1].item {
            Item::Instr(SymInstr::Patch {
                kind: PatchKind::PSwcv { rs1, rs2 },
                ..
            }) => {
                assert_eq!(*rs1, Reg::T6);
                assert_eq!(*rs2, Reg::RA);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn p_ret_forms() {
        assert_eq!(
            one_instr("p_ret"),
            SymInstr::Ready(Instr::PJalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                rs2: Reg::T0
            })
        );
        assert_eq!(
            one_instr("p_ret a2, a3"),
            SymInstr::Ready(Instr::PJalr {
                rd: Reg::ZERO,
                rs1: Reg::A2,
                rs2: Reg::A3
            })
        );
    }

    #[test]
    fn directives() {
        let items =
            parse_program(".data\nv: .word 1, 2, 3\n.space 8\n.align 4\n.text\n.equ N, 16\n")
                .unwrap();
        assert_eq!(items.len(), 9);
        assert_eq!(items[0].item, Item::Section(Section::Data));
        assert_eq!(items[5].item, Item::Space(Expr::konst(8)));
        assert_eq!(items[6].item, Item::Align(4));
        assert_eq!(items[7].item, Item::Section(Section::Text));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("nop\nbogus a0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_program("add a0, a1").is_err());
        assert!(parse_program("p_syncm a0").is_err());
    }

    #[test]
    fn expression_operators() {
        let items = parse_program(".word end-start, %hi(x)+1, -4").unwrap();
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn hex_and_binary_literals() {
        assert_eq!(
            one_instr("li a0, 0xff"),
            SymInstr::Ready(Instr::OpImm {
                kind: OpImmKind::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 255
            })
        );
        assert_eq!(
            one_instr("li a0, 0b101"),
            SymInstr::Ready(Instr::OpImm {
                kind: OpImmKind::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 5
            })
        );
    }
}
