//! # lbp-baseline — a Xeon-Phi-2-class comparator model
//!
//! The paper's Fig. 21 compares the 64-core LBP against a Xeon Phi 2
//! (Knights Landing) running the tiled matmul under PAPI, reporting for
//! the Phi: **391 K cycles**, **32 M retired instructions** and
//! **IPC 81.86** (1.28 per core over 64 cores, 21 % of its 6-IPC peak).
//!
//! We do not have that machine; this crate substitutes an analytic model
//! of the same class of processor: wide out-of-order SMT cores with
//! 512-bit vector units and a cached memory hierarchy. The model has two
//! parts:
//!
//! 1. an **instruction model**: the scalar instruction stream of the
//!    tiled kernel (the same `7·h³/2`-dominated count LBP retires), of
//!    which a calibrated fraction vectorizes across the 16 int32 lanes —
//!    the remainder (loop control, addressing, runtime overhead,
//!    remainder loops) stays scalar;
//! 2. a **throughput model**: a roofline over the peak issue width
//!    (2 int + 2 mem + 2 vector = 6 per cycle) degraded by a calibrated
//!    utilization, against the cached-memory bandwidth ceiling.
//!
//! With the default calibration ([`PhiModel::paper_calibrated`]) the
//! model reproduces the paper's three reported numbers at `h = 256`;
//! the interesting output is how the *shape* extrapolates across sizes
//! next to the LBP simulator's measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;

pub use energy::{Activity, LbpEnergyModel, PhiEnergyModel};

/// An estimate produced by the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Retired instructions (hardware-thread instructions, as PAPI
    /// counts them).
    pub instructions: f64,
    /// Execution cycles.
    pub cycles: f64,
}

impl Estimate {
    /// Whole-chip IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions / self.cycles
        }
    }
}

/// A Knights-Landing-class chip model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiModel {
    /// Active cores (the paper pins 256 threads on 64 cores).
    pub cores: usize,
    /// SMT hardware threads per core.
    pub smt: usize,
    /// 32-bit lanes per vector operation (AVX-512: 16).
    pub vector_lanes: usize,
    /// Peak issue width per core per cycle (2 int + 2 mem + 2 vector).
    pub peak_issue: f64,
    /// Fraction of the scalar work the compiler vectorizes; the rest
    /// (control, addressing, runtime, remainders) retires scalar.
    pub vector_fraction: f64,
    /// Sustained IPC per core (the paper measures 1.28 = 21 % of peak).
    pub sustained_ipc_per_core: f64,
    /// Sustained memory bandwidth in bytes/cycle for streaming misses
    /// (MCDRAM flat mode; only binds when a working set spills caches).
    pub mem_bytes_per_cycle: f64,
    /// Per-core cache capacity in bytes (1 MiB L2 per tile, halved per
    /// core on KNL).
    pub cache_bytes_per_core: f64,
}

impl PhiModel {
    /// The calibration that reproduces the paper's measured point
    /// (32 M instructions, 391 K cycles, IPC ≈ 81.9 at `h = 256`).
    pub fn paper_calibrated() -> PhiModel {
        PhiModel {
            cores: 64,
            smt: 4,
            vector_lanes: 16,
            peak_issue: 6.0,
            // Solves 65.8e6 * ((1-f) + f/16) = 32e6  =>  f ≈ 0.548
            // (65.8e6 = the h=256 tiled scalar stream incl. overhead).
            vector_fraction: 0.548,
            sustained_ipc_per_core: 1.28,
            mem_bytes_per_cycle: 256.0,
            cache_bytes_per_core: 512.0 * 1024.0,
        }
    }

    /// The scalar-equivalent dynamic instruction count of the tiled
    /// matmul at hart-count-equivalent size `h` (`X: h × h/2`,
    /// `Y: h/2 × h`): the seven-instruction MAC loop plus ~12 % staging
    /// and loop-control overhead, matching what the LBP kernel retires.
    pub fn tiled_scalar_instructions(&self, h: usize) -> f64 {
        let macs = (h as f64).powi(3) / 2.0;
        7.0 * macs * 1.12
    }

    /// Estimates the tiled matmul of size `h`.
    pub fn estimate_tiled_matmul(&self, h: usize) -> Estimate {
        let scalar = self.tiled_scalar_instructions(h);
        let f = self.vector_fraction;
        let instructions = scalar * ((1.0 - f) + f / self.vector_lanes as f64);
        // Compute-bound cycles at the sustained issue rate.
        let compute = instructions / (self.cores as f64 * self.sustained_ipc_per_core);
        // Memory-bound cycles: traffic beyond cache (tiles are reused in
        // cache, so only the compulsory footprint streams in/out).
        let footprint = 8.0 * (h as f64) * (h as f64) * 4.0 / 8.0; // X+Y+Z bytes
        let per_core_set = footprint / self.cores as f64;
        let spill = if per_core_set > self.cache_bytes_per_core {
            footprint * 2.0
        } else {
            footprint
        };
        let memory = spill / self.mem_bytes_per_cycle;
        Estimate {
            instructions,
            cycles: compute.max(memory),
        }
    }

    /// Whole-chip peak IPC.
    pub fn peak_ipc(&self) -> f64 {
        self.cores as f64 * self.peak_issue
    }
}

impl Default for PhiModel {
    fn default() -> PhiModel {
        PhiModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_measured_point() {
        let m = PhiModel::paper_calibrated();
        let e = m.estimate_tiled_matmul(256);
        // Paper: 32 M instructions, 391 K cycles, IPC 81.86.
        assert!(
            (e.instructions - 32.0e6).abs() / 32.0e6 < 0.05,
            "instructions {}",
            e.instructions
        );
        assert!(
            (e.cycles - 391.0e3).abs() / 391.0e3 < 0.05,
            "cycles {}",
            e.cycles
        );
        assert!((e.ipc() - 81.86).abs() / 81.86 < 0.05, "ipc {}", e.ipc());
    }

    #[test]
    fn utilization_is_a_fifth_of_peak() {
        let m = PhiModel::paper_calibrated();
        let e = m.estimate_tiled_matmul(256);
        let util = e.ipc() / m.peak_ipc();
        assert!((0.18..0.25).contains(&util), "utilization {util}");
    }

    #[test]
    fn scales_cubically_with_h() {
        let m = PhiModel::paper_calibrated();
        let small = m.estimate_tiled_matmul(64);
        let big = m.estimate_tiled_matmul(256);
        let ratio = big.instructions / small.instructions;
        assert!((ratio - 64.0).abs() < 1.0, "4^3 = 64, got {ratio}");
    }

    #[test]
    fn vectorization_shrinks_instructions() {
        let m = PhiModel::paper_calibrated();
        let e = m.estimate_tiled_matmul(256);
        let scalar = m.tiled_scalar_instructions(256);
        let shrink = scalar / e.instructions;
        // The paper observes LBP retiring 2.28x more than the Phi.
        assert!((1.8..2.8).contains(&shrink), "shrink factor {shrink}");
    }
}
