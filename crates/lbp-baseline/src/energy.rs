//! Energy proxies backing the paper's closing claim: "LBP is aiming
//! embedded applications and should keep low-power and energy efficient,
//! which the Xeon Phi2 is not" (§7).
//!
//! Neither machine is physical here, so these are *proxies*, clearly
//! parameterized and documented:
//!
//! - for **LBP**, an activity-based model: per-event energies (front-end,
//!   ALU, multiply/divide, bank access, link hop) scaled at a
//!   28-nm-embedded-class operating point, plus a per-core static/clock
//!   power. All event counts come from the simulator's exact statistics.
//! - for the **Phi**, the published TDP applied over the modelled cycle
//!   count at the nominal clock (KNL 7210: 215 W, 1.3 GHz) — generous to
//!   the Phi, since real packages rarely sit at TDP.
//!
//! The interesting output is the *ratio*: the shape of the efficiency
//! argument, not absolute joules.

use crate::Estimate;

/// Per-event energies (picojoules) and static power for an LBP-class
/// embedded manycore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbpEnergyModel {
    /// Fetch + decode + rename + commit per retired instruction.
    pub pj_front_end: f64,
    /// ALU execution per instruction.
    pub pj_alu: f64,
    /// Extra energy of a multiply/divide.
    pub pj_muldiv_extra: f64,
    /// One bank access (either port).
    pub pj_bank_access: f64,
    /// One link/router hop.
    pub pj_link_hop: f64,
    /// Static + clock power per core, in watts.
    pub static_w_per_core: f64,
    /// Operating frequency, hertz.
    pub clock_hz: f64,
}

impl LbpEnergyModel {
    /// A 28-nm-class embedded operating point (per-event energies in the
    /// range published for simple in-order/lightly-OoO RISC cores).
    pub fn embedded_default() -> LbpEnergyModel {
        LbpEnergyModel {
            pj_front_end: 8.0,
            pj_alu: 6.0,
            pj_muldiv_extra: 20.0,
            pj_bank_access: 25.0,
            pj_link_hop: 4.0,
            static_w_per_core: 0.05,
            clock_hz: 1.0e9,
        }
    }

    /// Energy of a run, in joules, from the simulator's exact activity
    /// counts.
    pub fn estimate_joules(&self, activity: &Activity) -> f64 {
        let dynamic_pj = activity.retired as f64 * (self.pj_front_end + self.pj_alu)
            + activity.muldiv_ops as f64 * self.pj_muldiv_extra
            + activity.mem_ops as f64 * self.pj_bank_access
            + activity.link_hops as f64 * self.pj_link_hop;
        let seconds = activity.cycles as f64 / self.clock_hz;
        dynamic_pj * 1e-12 + self.static_w_per_core * activity.cores as f64 * seconds
    }
}

/// The activity counts of one LBP run (a plain-old-data mirror of the
/// simulator's `Stats`, so this crate stays simulator-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activity {
    /// Machine cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Multiply/divide operations.
    pub muldiv_ops: u64,
    /// Memory accesses (local + remote).
    pub mem_ops: u64,
    /// Router/link hops.
    pub link_hops: u64,
    /// Cores powered.
    pub cores: usize,
}

/// TDP-based energy for the Phi-class comparator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiEnergyModel {
    /// Package power, watts (KNL 7210 TDP).
    pub tdp_w: f64,
    /// Nominal clock, hertz.
    pub clock_hz: f64,
}

impl PhiEnergyModel {
    /// The KNL 7210 data-sheet point.
    pub fn knl_7210() -> PhiEnergyModel {
        PhiEnergyModel {
            tdp_w: 215.0,
            clock_hz: 1.3e9,
        }
    }

    /// Energy of a modelled run, in joules.
    pub fn estimate_joules(&self, e: &Estimate) -> f64 {
        self.tdp_w * e.cycles / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhiModel;

    /// The h = 256 tiled-matmul activity of the checked-in reference run.
    fn lbp_reference_activity() -> Activity {
        Activity {
            cycles: 1_427_796,
            retired: 82_256_064,
            muldiv_ops: 8_388_608, // h^3/2 multiplications
            mem_ops: 26_000_000,   // staged loads/stores, order of magnitude
            link_hops: 40_000_000,
            cores: 64,
        }
    }

    #[test]
    fn lbp_run_is_single_digit_millijoules() {
        let m = LbpEnergyModel::embedded_default();
        let j = m.estimate_joules(&lbp_reference_activity());
        assert!((1e-3..20e-3).contains(&j), "LBP energy {j} J");
    }

    #[test]
    fn phi_run_is_tens_of_millijoules() {
        let phi = PhiModel::paper_calibrated();
        let e = phi.estimate_tiled_matmul(256);
        let j = PhiEnergyModel::knl_7210().estimate_joules(&e);
        assert!((20e-3..200e-3).contains(&j), "Phi energy {j} J");
    }

    #[test]
    fn lbp_wins_the_efficiency_comparison_by_a_wide_margin() {
        // The paper's positioning: the Phi is ~3x faster but burns far
        // more than 3x the energy.
        let lbp = LbpEnergyModel::embedded_default().estimate_joules(&lbp_reference_activity());
        let phi = PhiEnergyModel::knl_7210()
            .estimate_joules(&PhiModel::paper_calibrated().estimate_tiled_matmul(256));
        let ratio = phi / lbp;
        assert!(ratio > 4.0, "efficiency ratio {ratio} too small");
    }
}
