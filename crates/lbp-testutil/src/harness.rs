//! The shared test harness: machine builders and scratch-directory
//! program writers that used to be copy-pasted across `tests/*.rs`.
//!
//! Everything here is a thin, panicking wrapper over the public
//! `lbp-asm`/`lbp-sim` API — the panics carry the offending program so a
//! failing generator-driven case is debuggable from the assertion
//! message alone. Gated behind the `harness` cargo feature so the core
//! PRNG stays dependency-free.

use std::path::{Path, PathBuf};

use lbp_asm::Image;
use lbp_sim::{Fault, FaultPlan, LbpConfig, Machine, SimError};

/// Assembles a test program, panicking with the source on failure.
pub fn assemble(src: &str) -> Image {
    lbp_asm::assemble(src).unwrap_or_else(|e| panic!("test program rejected: {e}\n---\n{src}"))
}

/// Builds a machine with default parameters on `cores` cores.
pub fn machine(cores: usize, src: &str) -> Machine {
    machine_cfg(LbpConfig::cores(cores), src)
}

/// Builds a machine with default parameters plus event tracing.
pub fn machine_traced(cores: usize, src: &str) -> Machine {
    machine_cfg(LbpConfig::cores(cores).with_trace(), src)
}

/// Builds a machine from an explicit configuration.
pub fn machine_cfg(cfg: LbpConfig, src: &str) -> Machine {
    let image = assemble(src);
    Machine::new(cfg, &image).unwrap_or_else(|e| panic!("machine rejected: {e}\n---\n{src}"))
}

/// Builds a machine from an already-assembled image (tracing on, the
/// configuration determinism tests want).
pub fn machine_from_image(image: &Image, cores: usize) -> Machine {
    Machine::new(LbpConfig::cores(cores).with_trace(), image).expect("machine builds")
}

/// Builds a machine with a deterministic fault plan. Unlike the other
/// builders this returns the error: fault tests assert on rejected plans.
pub fn machine_with_faults(cores: usize, src: &str, faults: &[Fault]) -> Result<Machine, SimError> {
    let image = assemble(src);
    let cfg = LbpConfig::cores(cores).with_faults(faults.iter().copied().collect::<FaultPlan>());
    Machine::new(cfg, &image)
}

/// A per-process scratch directory for tests that must round-trip
/// programs through the filesystem (CLI tests, corpus tests).
///
/// The directory is namespaced by `label` and the process id so parallel
/// `cargo test` invocations never collide; it is created on first use
/// and left behind for post-mortem inspection (the OS temp dir owns the
/// lifecycle).
pub fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbp-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

/// Writes `text` as `name` inside [`scratch_dir`]`(label)` and returns
/// the full path.
pub fn scratch_file(label: &str, name: &str, text: &str) -> PathBuf {
    let path = scratch_dir(label).join(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("scratch subdir creates");
    }
    std::fs::write(&path, text).expect("scratch file writes");
    path
}

/// Removes a scratch tree, ignoring races with parallel tests.
pub fn scratch_cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}
