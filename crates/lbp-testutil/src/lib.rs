//! # lbp-testutil — deterministic test helpers
//!
//! The repository's property tests need a stream of reproducible pseudo-
//! random choices. This crate provides a tiny, seedable, splittable PRNG
//! (SplitMix64, Steele et al., OOPSLA 2014) with the handful of sampling
//! helpers the generators use — no external crates, identical sequences
//! on every platform, every run.
//!
//! With the `harness` cargo feature it additionally exposes the shared
//! integration-test harness (the `harness` module): machine builders and
//! scratch-directory program writers used by the `tests/*.rs` suites and
//! the `lbp-fuzz` conformance fuzzer. The default feature set stays
//! dependency-free so the simulator's own dev-dependencies don't cycle.
//!
//! Each property test drives a fixed number of *cases*; case `i` seeds
//! its generator with `seed ^ i`-derived state, so a failing case can be
//! replayed in isolation by seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "harness")]
pub mod harness;

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// Passes BigCrush as a 64-bit generator and is trivially seedable: two
/// generators created from the same seed produce the same sequence.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Debiased multiply-shift (Lemire). The widening multiply keeps
        // the distribution exact for every bound.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `i32` in `[lo, hi]` (inclusive).
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// A uniform `u32` in `[lo, hi]` (inclusive).
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo) as u64 + 1) as u32
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.index(items.len())]
    }

    /// Picks an index according to integer weights (the analogue of a
    /// weighted `prop_oneof!`): index `i` is chosen with probability
    /// `weights[i] / sum(weights)`.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return i;
            }
            x -= w as u64;
        }
        unreachable!("weights sum covers the sampled range")
    }

    /// A child generator whose stream is independent of this one's
    /// continuation (split by one draw).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x5851_f42d_4c95_7f2d)
    }
}

/// Runs `cases` generator-driven test cases, each with a fresh
/// deterministically-derived [`Rng`]. The case index is passed alongside
/// so failures can name the offending case.
pub fn check_cases(cases: u64, seed: u64, mut f: impl FnMut(&mut Rng, u64)) {
    for i in 0..cases {
        let mut rng = Rng::new(seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        f(&mut rng, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_reproducible() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_i32(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range occur");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(3);
        for _ in 0..200 {
            let i = r.weighted(&[0, 5, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn check_cases_uses_distinct_streams() {
        let mut firsts = Vec::new();
        check_cases(8, 1, |rng, _| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8);
    }
}
