//! Capacity and fairness stress tests: tiny renaming files, tiny ROBs,
//! saturated receive slots and unbalanced teams must stall
//! deterministically, never deadlock or corrupt results.

use lbp_asm::assemble;
use lbp_isa::SHARED_BASE;
use lbp_omp::DetOmp;
use lbp_sim::{LbpConfig, Machine};

fn sum_program(n: u32) -> String {
    format!(
        "main:
    li   a0, 0
    li   a1, 1
    li   a2, {limit}
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    bne  a1, a2, loop
    la   a3, out
    sw   a0, 0(a3)
    li   t0, -1
    li   ra, 0
    p_ret
.data
out: .word 0",
        limit = n + 1
    )
}

/// Runs with a custom config patch and returns (result, cycles).
fn run_patched(src: &str, patch: impl Fn(&mut LbpConfig)) -> (u32, u64) {
    let image = assemble(src).unwrap();
    let mut cfg = LbpConfig::cores(1);
    patch(&mut cfg);
    let mut m = Machine::new(cfg, &image).unwrap();
    let report = m.run(10_000_000).expect("no deadlock");
    (m.peek_shared(SHARED_BASE).unwrap(), report.stats.cycles)
}

#[test]
fn tiny_physical_register_file_still_computes() {
    // 34 physical registers = 32 architectural + 2 spare: rename stalls
    // constantly but the result must not change.
    let src = sum_program(100);
    let (full, fast) = run_patched(&src, |_| {});
    let (tiny, slow) = run_patched(&src, |cfg| cfg.phys_regs = 34);
    assert_eq!(full, 5050);
    assert_eq!(tiny, 5050);
    assert!(slow >= fast, "fewer rename registers cannot be faster");
}

#[test]
fn tiny_rob_still_computes() {
    let src = sum_program(100);
    let (v, _) = run_patched(&src, |cfg| cfg.rob_entries = 2);
    assert_eq!(v, 5050);
}

#[test]
fn tiny_instruction_table_still_computes() {
    let src = sum_program(100);
    let (v, _) = run_patched(&src, |cfg| {
        cfg.it_entries = 2;
        cfg.rob_entries = 2;
    });
    assert_eq!(v, 5050);
}

#[test]
fn issue_slots_are_shared_fairly_between_harts() {
    // Four members on one core doing identical independent ALU work must
    // retire within a few percent of one another: the round-robin
    // selection cannot starve anyone.
    let p = DetOmp::new(4)
        .function(
            "spin",
            "li   a2, 3000
f_loop:
    addi a3, a3, 1
    xori a3, a3, 3
    addi a2, a2, -1
    bnez a2, f_loop
    p_ret",
        )
        .parallel_for("spin");
    let image = p.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    m.run(10_000_000).unwrap();
    let per_hart = &m.stats().retired_per_hart;
    let min = *per_hart.iter().min().unwrap() as f64;
    let max = *per_hart.iter().max().unwrap() as f64;
    assert!(min > 0.0);
    assert!(max / min < 1.05, "unfair issue distribution: {per_hart:?}");
}

#[test]
fn queued_results_drain_in_fifo_order() {
    // All four members send to hart 0's slot 0 before anyone reads: the
    // slot queues and the collector drains all four values.
    let p = DetOmp::new(4)
        .data_space("q_out", 4)
        .function(
            "send",
            "addi a2, a0, 1
             p_swre a2, t1, 0
             p_ret",
        )
        .parallel_for("send")
        .collect_reduction(0, 4, lbp_omp::ReduceOp::Add, "q_out");
    let image = p.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    m.run(10_000_000).unwrap();
    assert_eq!(
        m.peek_shared(image.symbol("q_out").unwrap()).unwrap(),
        1 + 2 + 3 + 4
    );
}

#[test]
fn all_four_harts_forking_simultaneously_serializes_cleanly() {
    // An 8-member team on 2 cores: the four core-0 members finish and
    // free their harts while core-1 members still run; then a second
    // region reuses everything. Allocation queues must handle the churn.
    let p = DetOmp::new(8)
        .data_space("c_out", 32)
        .function(
            "mark",
            "la   a2, c_out
             slli a3, a0, 2
             add  a2, a2, a3
             lw   a4, 0(a2)
             p_syncm
             addi a4, a4, 1
             sw   a4, 0(a2)
             p_ret",
        )
        .parallel_for("mark")
        .parallel_for("mark")
        .parallel_for("mark")
        .parallel_for("mark");
    let image = p.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    m.run(10_000_000).unwrap();
    let base = image.symbol("c_out").unwrap();
    for t in 0..8 {
        assert_eq!(m.peek_shared(base + 4 * t).unwrap(), 4, "member {t}");
    }
}

#[test]
fn capacity_limits_do_not_change_results_only_cycles() {
    // The same multi-hart program under generous and starved configs:
    // identical memory outcome, different (but deterministic) cycles.
    let p = DetOmp::new(8)
        .data_space("r_out", 32)
        .function(
            "w",
            "la   a2, r_out
             slli a3, a0, 2
             add  a2, a2, a3
             addi a4, a0, 5
             mul  a4, a4, a4
             sw   a4, 0(a2)
             p_ret",
        )
        .parallel_for("w");
    let image = p.build().unwrap();
    let run_cfg = |patch: fn(&mut LbpConfig)| {
        let mut cfg = LbpConfig::cores(2);
        patch(&mut cfg);
        let mut m = Machine::new(cfg, &image).unwrap();
        m.run(10_000_000).unwrap();
        let base = image.symbol("r_out").unwrap();
        (0..8u32)
            .map(|t| m.peek_shared(base + 4 * t).unwrap())
            .collect::<Vec<_>>()
    };
    let generous = run_cfg(|_| {});
    let starved = run_cfg(|cfg| {
        cfg.phys_regs = 36;
        cfg.rob_entries = 3;
        cfg.it_entries = 3;
    });
    assert_eq!(generous, starved);
    assert_eq!(
        generous,
        (0..8).map(|t| (t + 5) * (t + 5)).collect::<Vec<u32>>()
    );
}
