//! Property test for the stall-attribution invariant (observability
//! layer): every core's cycles are fully partitioned between retirements
//! and attributed stall slots — `retired + stalls == cycles` — and the
//! partition must survive *every* fault-plan variant, whatever the run's
//! outcome (clean exit, timeout, deadlock, or a fatal fault).
//!
//! The only slack allowed: when a tick aborts mid-cycle (decode, memory
//! or protocol fault) the global cycle counter has not been bumped yet,
//! so a core that already accounted the failing cycle may be one ahead.

use lbp_asm::assemble;
use lbp_sim::{Fault, FaultPlan, LbpConfig, Machine, Stats};

fn busy_program() -> String {
    "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, worker
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, worker
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
worker:
    p_set a1
    srli  a1, a1, 16
    andi  a1, a1, 0x7f
    la    a2, table
    slli  a3, a1, 2
    add   a2, a2, a3
    li    a4, 0
    li    a5, 25
wloop:
    mul   a6, a5, a5
    add   a4, a4, a6
    addi  a5, a5, -1
    bnez  a5, wloop
    sw    a4, 0(a2)
    p_ret
.data
table: .word 0, 0, 0, 0, 0, 0, 0, 0"
        .to_string()
}

/// Asserts the partition for every core of the machine. `exact` demands
/// equality; otherwise a core may be one cycle ahead of the stale global
/// counter (mid-tick abort).
fn assert_partition(stats: &Stats, cores: usize, exact: bool, label: &str) {
    for core in 0..cores {
        let retired = stats.retired_by_core(core);
        let stalls = stats.stalls_of_core(core).total();
        let sum = retired + stalls;
        if exact {
            assert_eq!(
                sum, stats.cycles,
                "{label}: core {core}: retired {retired} + stalls {stalls} != cycles {}",
                stats.cycles
            );
        } else {
            assert!(
                sum == stats.cycles || sum == stats.cycles + 1,
                "{label}: core {core}: retired {retired} + stalls {stalls} vs cycles {}",
                stats.cycles
            );
        }
    }
}

/// Runs the torture program under `plan` and checks the partition on
/// whatever outcome the plan produces.
fn check(plan: FaultPlan, max_cycles: u64, label: &str) {
    use lbp_sim::SimError;
    let cores = 2;
    let image = assemble(&busy_program()).unwrap();
    let mut m = Machine::new(LbpConfig::cores(cores).with_faults(plan), &image)
        .unwrap_or_else(|e| panic!("{label}: config rejected: {e}"));
    let exact = match m.run(max_cycles) {
        // Clean exit, timeout and deadlock all leave the cycle counter
        // synchronized with the cores.
        Ok(_) | Err(SimError::Timeout { .. }) | Err(SimError::Deadlock { .. }) => true,
        // Mid-tick aborts may leave one core a cycle ahead.
        Err(_) => false,
    };
    assert_partition(m.stats(), cores, exact, label);
}

fn spec(s: &str) -> FaultPlan {
    [Fault::parse(s).unwrap()].into_iter().collect()
}

#[test]
fn clean_run_partitions_exactly() {
    check(FaultPlan::none(), 1_000_000, "clean");
}

#[test]
fn partition_holds_under_flip_reg() {
    for cycle in [1, 10, 100] {
        check(
            spec(&format!("flip-reg:0:a5:2:{cycle}")),
            1_000_000,
            "flip-reg",
        );
    }
}

#[test]
fn partition_holds_under_flip_mem() {
    check(spec("flip-mem:0x80000000:7:40"), 1_000_000, "flip-mem");
}

#[test]
fn partition_holds_under_corrupt_instr() {
    // XOR the first code word: usually a decode fault mid-tick.
    check(spec("corrupt-instr:0x0:0xffffffff:1"), 1_000_000, "corrupt");
    // A subtler corruption of a later word.
    check(
        spec("corrupt-instr:0x8:0x00000100:5"),
        1_000_000,
        "corrupt2",
    );
}

#[test]
fn partition_holds_under_drop_msg() {
    // Dropping fabric messages typically deadlocks the fork protocol.
    for nth in 0..4 {
        check(spec(&format!("drop-msg:{nth}")), 200_000, "drop-msg");
    }
}

#[test]
fn partition_holds_under_delay_msg() {
    for (nth, cycles) in [(0, 7), (1, 40), (3, 1)] {
        check(
            spec(&format!("delay-msg:{nth}:{cycles}")),
            1_000_000,
            "delay-msg",
        );
    }
}

#[test]
fn partition_holds_on_timeout() {
    check(FaultPlan::none(), 50, "timeout");
}

#[test]
fn partition_survives_snapshot_restore() {
    // The partition is part of the serialized stats: a restored machine
    // must keep satisfying it as it runs on.
    let image = assemble(&busy_program()).unwrap();
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    m.run_to(100).unwrap();
    let mut r = Machine::restore(&m.snapshot()).unwrap();
    assert_partition(r.stats(), 2, true, "restored@100");
    r.run(1_000_000).unwrap();
    assert_partition(r.stats(), 2, true, "restored+run");
}
