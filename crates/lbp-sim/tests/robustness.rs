//! Robustness tests: deadlock diagnosis, fault injection, crash dumps,
//! and lockstep differential checking.
//!
//! Protocol-violating programs hang real LBP hardware — the simulator
//! must instead diagnose them quickly ([`SimError::Deadlock`] with the
//! blocked harts and their wait reasons) or reject them outright
//! ([`SimError::Protocol`]). Injected faults must surface as structured
//! errors with a valid `lbp-dump-v1` crash dump, never as a panic.

use lbp_asm::assemble;
use lbp_isa::HartId;
use lbp_sim::{
    run_lockstep, Divergence, Fault, FaultPlan, Json, LbpConfig, LockstepError, Machine, SimError,
    DUMP_SCHEMA,
};
use lbp_testutil::check_cases;
use lbp_testutil::harness::{machine, machine_with_faults};

/// The exit idiom: 0 in `ra`, the exit sentinel in `t0`.
const EXIT: &str = "li t0, -1\n    li ra, 0\n    p_ret\n";

/// The cycle budget a pre-deadlock-detector run would have burned before
/// reporting `Timeout`. The acceptance bar is diagnosis in < 1% of this.
const OLD_TIMEOUT_BUDGET: u64 = 1_000_000;

// ---------------------------------------------------------------------------
// Deadlock detection
// ---------------------------------------------------------------------------

#[test]
fn never_sent_recv_slot_deadlocks_fast_and_blames_the_hart() {
    // p_lwre on slot 3, but no hart ever p_swre's into it.
    let src = "main:
    p_lwre a0, 3
    li t0, -1
    li ra, 0
    p_ret";
    let err = machine(1, src).run(OLD_TIMEOUT_BUDGET).unwrap_err();
    let SimError::Deadlock { cycle, blocked } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(
        cycle < OLD_TIMEOUT_BUDGET / 100,
        "diagnosed at cycle {cycle}, want < 1% of the {OLD_TIMEOUT_BUDGET}-cycle budget"
    );
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].hart, HartId::FIRST);
    assert!(
        blocked[0].waiting_on.contains("slot 3"),
        "wait reason should name the empty slot: {:?}",
        blocked[0].waiting_on
    );
}

#[test]
fn self_wait_join_deadlocks_with_join_reason() {
    // Type-2 ending on the only hart: waits for a join address that no
    // other hart will ever send.
    let src = "main:
    li t0, 0
    li ra, 0
    p_ret";
    let err = machine(1, src).run(OLD_TIMEOUT_BUDGET).unwrap_err();
    let SimError::Deadlock { cycle, blocked } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(
        cycle < OLD_TIMEOUT_BUDGET / 100,
        "diagnosed at cycle {cycle}"
    );
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].hart, HartId::FIRST);
    assert!(
        blocked[0].waiting_on.contains("join"),
        "wait reason should mention the missing join: {:?}",
        blocked[0].waiting_on
    );
}

#[test]
fn fork_exhaustion_deadlocks_with_fork_reason() {
    // A single core has 4 harts; the 4th p_fc can never be satisfied
    // because no allocated hart ever ends.
    let src = "main:
    p_fc t1
    p_fc t2
    p_fc t3
    p_fc t4
    li t0, -1
    li ra, 0
    p_ret";
    let err = machine(1, src).run(OLD_TIMEOUT_BUDGET).unwrap_err();
    let SimError::Deadlock { cycle, blocked } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(
        cycle < OLD_TIMEOUT_BUDGET / 100,
        "diagnosed at cycle {cycle}"
    );
    assert!(
        blocked
            .iter()
            .any(|b| b.hart == HartId::FIRST && b.waiting_on.contains("fork")),
        "hart 0 should be blocked on its fork: {blocked:?}"
    );
}

#[test]
fn busy_wait_still_times_out() {
    // An infinite loop retires instructions forever: that is livelock,
    // not quiescence, and must stay a Timeout.
    let err = machine(1, "main:\n  j main").run(1_000).unwrap_err();
    assert_eq!(err, SimError::Timeout { cycles: 1_000 });
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A fork program whose start message crosses the core 0 → core 1 link;
/// dropping any fabric message deadlocks it.
const FORK_NEXT_CORE: &str = "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, thread
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, thread
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    li    t0, -1
    li    ra, 0
    p_ret
thread:
    p_ret";

#[test]
fn dropped_fabric_message_turns_success_into_deadlock() {
    // Baseline: the program exits.
    let report = machine_with_faults(2, FORK_NEXT_CORE, &[])
        .unwrap()
        .run(OLD_TIMEOUT_BUDGET)
        .unwrap();
    assert!(report.exited);

    // Drop the first fabric message (the fork request): the machine must
    // diagnose the hang as a deadlock, not spin to timeout.
    let err = machine_with_faults(2, FORK_NEXT_CORE, &[Fault::DropMsg { nth: 0 }])
        .unwrap()
        .run(OLD_TIMEOUT_BUDGET)
        .unwrap_err();
    let SimError::Deadlock { cycle, .. } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(
        cycle < OLD_TIMEOUT_BUDGET / 100,
        "diagnosed at cycle {cycle}"
    );
}

#[test]
fn delayed_fabric_message_preserves_the_result() {
    // Delaying (not dropping) a message only shifts timing; the
    // deterministic protocol still completes.
    let report = machine_with_faults(2, FORK_NEXT_CORE, &[Fault::DelayMsg { nth: 0, cycles: 37 }])
        .unwrap()
        .run(OLD_TIMEOUT_BUDGET)
        .unwrap();
    assert!(report.exited, "delayed message must still arrive");
}

#[test]
fn corrupted_instruction_is_a_decode_error() {
    let src = format!("main:\n  li a0, 1\n  li a1, 2\n  add a2, a0, a1\n  {EXIT}");
    // XOR the third word (pc 0x8) into garbage at cycle 1.
    let fault = Fault::CorruptInstr {
        pc: 0x8,
        xor: 0xffff_ffff,
        cycle: 1,
    };
    let err = machine_with_faults(1, &src, &[fault])
        .unwrap()
        .run(10_000)
        .unwrap_err();
    assert!(
        matches!(err, SimError::Decode { pc: 0x8, .. }),
        "expected a decode error at pc 0x8, got {err:?}"
    );
}

#[test]
fn invalid_fault_plans_are_rejected_at_build_time() {
    let src = format!("main:\n  {EXIT}");
    for fault in [
        // Hart out of range for one core.
        Fault::FlipReg {
            hart: HartId::from_parts(99, 0),
            reg: lbp_isa::Reg::A0,
            bit: 0,
            cycle: 1,
        },
        // Bit out of range.
        Fault::FlipMem {
            addr: lbp_isa::SHARED_BASE,
            bit: 40,
            cycle: 1,
        },
        // Misaligned pc.
        Fault::CorruptInstr {
            pc: 2,
            xor: 1,
            cycle: 1,
        },
        // Zero-cycle delay.
        Fault::DelayMsg { nth: 0, cycles: 0 },
    ] {
        let err = machine_with_faults(1, &src, &[fault]).unwrap_err();
        assert!(
            matches!(&err, SimError::Protocol { what, .. } if what.contains("invalid fault plan")),
            "fault {fault} should be rejected, got {err:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Crash dumps
// ---------------------------------------------------------------------------

#[test]
fn deadlock_dump_names_the_schema_and_blocked_hart() {
    let src = "main:
    p_lwre a0, 5
    li t0, -1
    li ra, 0
    p_ret";
    let failure = machine(1, src)
        .run_diagnosed(OLD_TIMEOUT_BUDGET)
        .unwrap_err();
    assert_eq!(failure.error.class(), "deadlock");

    let mut out = String::new();
    failure.dump.to_json().write_pretty(&mut out);
    let json = Json::parse(&out).expect("dump serializes to valid JSON");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some(DUMP_SCHEMA),
        "dump must carry the {DUMP_SCHEMA} schema tag"
    );
    assert_eq!(
        json.get("error_class").and_then(Json::as_str),
        Some("deadlock")
    );
    let harts = json
        .get("harts")
        .and_then(Json::as_arr)
        .expect("harts array");
    assert_eq!(harts.len(), 1, "only the blocked hart is dumped");
    assert_eq!(harts[0].get("hart").and_then(Json::as_str), Some("c0h0"));
    assert!(harts[0]
        .get("waiting_on")
        .and_then(Json::as_str)
        .is_some_and(|w| w.contains("slot 5")));
}

#[test]
fn fault_dump_counts_applied_faults() {
    let src = format!("main:\n  li a0, 1\n  {EXIT}");
    let fault = Fault::CorruptInstr {
        pc: 0x4,
        xor: 0xffff_ffff,
        cycle: 1,
    };
    let failure = machine_with_faults(1, &src, &[fault])
        .unwrap()
        .run_diagnosed(10_000)
        .unwrap_err();
    let mut out = String::new();
    failure.dump.to_json().write_pretty(&mut out);
    let json = Json::parse(&out).unwrap();
    assert_eq!(json.get("faults_applied").and_then(Json::as_u64), Some(1));
    assert_eq!(
        json.get("error_class").and_then(Json::as_str),
        Some("decode")
    );
}

#[test]
fn random_fault_plans_never_panic_and_dumps_stay_valid() {
    // Whatever a (valid) random fault plan does to this program — wrong
    // answer, deadlock, decode fault, protocol violation — the simulator
    // must return a structured result and a parseable dump, never panic.
    let src = format!(
        "main:
    li   a0, 0
    li   a1, 1
    li   a2, 30
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    bne  a1, a2, loop
    {EXIT}"
    );
    let image = assemble(&src).unwrap();
    let text_words = image.text.len() as u32;
    check_cases(40, 0xfau64, |rng, _| {
        let fault = match rng.below(4) {
            0 => Fault::FlipReg {
                hart: HartId::FIRST,
                reg: rng.pick(&[lbp_isa::Reg::A0, lbp_isa::Reg::A1, lbp_isa::Reg::A2]),
                bit: rng.below(32) as u32,
                cycle: rng.below(400),
            },
            1 => Fault::FlipMem {
                addr: lbp_isa::SHARED_BASE + (rng.below(16) as u32) * 4,
                bit: rng.below(32) as u32,
                cycle: rng.below(400),
            },
            2 => Fault::CorruptInstr {
                pc: (rng.below(text_words as u64) as u32) * 4,
                xor: rng.next_u32(),
                cycle: rng.below(400),
            },
            _ => Fault::DelayMsg {
                nth: rng.below(4),
                cycles: 1 + rng.below(50) as u32,
            },
        };
        let cfg = LbpConfig::cores(1).with_faults([fault].into_iter().collect::<FaultPlan>());
        let mut m = Machine::new(cfg, &image).expect("validated plan builds");
        if let Err(failure) = m.run_diagnosed(50_000) {
            let mut out = String::new();
            failure.dump.to_json().write_pretty(&mut out);
            let json = Json::parse(&out).expect("dump parses");
            assert_eq!(json.get("schema").and_then(Json::as_str), Some(DUMP_SCHEMA));
            assert_eq!(
                json.get("error_class").and_then(Json::as_str),
                Some(failure.error.class())
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Lockstep differential checking
// ---------------------------------------------------------------------------

const MUL_PROGRAM: &str = "main:
    li   a0, 6
    li   a1, 7
    mul  a2, a0, a1
    li   t0, -1
    li   ra, 0
    p_ret";

#[test]
fn clean_program_passes_lockstep() {
    let image = assemble(MUL_PROGRAM).unwrap();
    let report = run_lockstep(LbpConfig::cores(1), &image, 100_000).expect("lockstep passes");
    assert_eq!(report.commits, 6);
    assert!(report.report.exited);
}

#[test]
fn late_register_flip_surfaces_as_divergence() {
    // Flip a2 bit 4 after `mul` wrote it back: the machine finishes with
    // a wrong a2 that only the differential check can see.
    let image = assemble(MUL_PROGRAM).unwrap();
    let cfg = LbpConfig::cores(1).with_faults(
        [Fault::FlipReg {
            hart: HartId::FIRST,
            reg: lbp_isa::Reg::A2,
            bit: 4,
            cycle: 14,
        }]
        .into_iter()
        .collect::<FaultPlan>(),
    );
    let err = run_lockstep(cfg, &image, 100_000).unwrap_err();
    let LockstepError::Diverged(Divergence::Register {
        reg,
        machine,
        oracle,
    }) = err
    else {
        panic!("expected a register divergence, got {err}");
    };
    assert_eq!(reg, lbp_isa::Reg::A2);
    assert_eq!(oracle, 42);
    assert_eq!(machine, 42 ^ (1 << 4));
}

#[test]
fn shared_memory_flip_surfaces_as_divergence() {
    let src = format!(
        "main:
    la   a0, cell
    li   a1, 77
    sw   a1, 0(a0)
    p_syncm
    li   a2, 40          # spin so the program is still live at cycle 60
delay:
    addi a2, a2, -1
    bnez a2, delay
    {EXIT}
.data
cell: .word 0"
    );
    let image = assemble(&src).unwrap();
    // Flip the stored word after the store retires (p_syncm guarantees it
    // is in the bank) but while the delay loop keeps the machine running.
    let cfg = LbpConfig::cores(1).with_faults(
        [Fault::FlipMem {
            addr: lbp_isa::SHARED_BASE,
            bit: 0,
            cycle: 60,
        }]
        .into_iter()
        .collect::<FaultPlan>(),
    );
    let err = run_lockstep(cfg, &image, 100_000).unwrap_err();
    let LockstepError::Diverged(Divergence::Memory {
        addr,
        machine,
        oracle,
    }) = err
    else {
        panic!("expected a memory divergence, got {err}");
    };
    assert_eq!(addr, lbp_isa::SHARED_BASE);
    assert_eq!(oracle, 77);
    assert_eq!(machine, 77 ^ 1);
}

#[test]
fn parallel_programs_are_rejected_by_lockstep() {
    let image = assemble(FORK_NEXT_CORE).unwrap();
    let err = run_lockstep(LbpConfig::cores(2), &image, 100_000).unwrap_err();
    assert!(
        matches!(err, LockstepError::Parallel { .. }),
        "expected Parallel, got {err}"
    );
}
