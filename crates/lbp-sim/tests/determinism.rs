//! Cycle-determinism tests (the paper's central claim, §1 and §5):
//! the same program on the same data produces an identical cycle-by-cycle
//! event trace on every run — every fetch, commit, memory request, fork,
//! join and signal lands on the same cycle.

use lbp_asm::assemble;
use lbp_sim::{LbpConfig, Machine, Trace};

/// A program exercising every determinism-sensitive machinery at once:
/// fork/join across cores, out-of-order memory, remote bank traffic,
/// result transmission and multiplication latencies.
fn busy_program() -> String {
    "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, worker
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, worker
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
worker:
    p_set a1
    srli  a1, a1, 16        # own hart number
    andi  a1, a1, 0x7f
    la    a2, table
    slli  a3, a1, 2
    add   a2, a2, a3
    li    a4, 0
    li    a5, 25
wloop:
    mul   a6, a5, a5
    add   a4, a4, a6
    addi  a5, a5, -1
    bnez  a5, wloop
    sw    a4, 0(a2)
    p_ret
.data
table: .word 0, 0, 0, 0, 0, 0, 0, 0"
        .to_string()
}

fn traced_run(cores: usize, src: &str) -> (Trace, u64, u64) {
    let image = assemble(src).unwrap();
    let mut m = Machine::new(LbpConfig::cores(cores).with_trace(), &image).unwrap();
    let report = m.run(1_000_000).unwrap();
    (
        m.trace().clone(),
        report.stats.cycles,
        report.stats.retired(),
    )
}

#[test]
fn identical_runs_produce_identical_traces() {
    let src = busy_program();
    let (t1, c1, r1) = traced_run(2, &src);
    let (t2, c2, r2) = traced_run(2, &src);
    assert_eq!(c1, c2, "cycle counts must match");
    assert_eq!(r1, r2, "retired-instruction counts must match");
    assert_eq!(t1.len(), t2.len(), "trace lengths must match");
    assert_eq!(t1, t2, "traces must be bit-identical");
    assert!(!t1.is_empty());
}

#[test]
fn many_replays_never_diverge() {
    let src = busy_program();
    let baseline = traced_run(2, &src);
    for _ in 0..5 {
        assert_eq!(traced_run(2, &src), baseline);
    }
}

#[test]
fn different_data_changes_the_run_deterministically() {
    // Same code, different initial data: still deterministic per input.
    let src_a = busy_program();
    let src_b = src_a.replace("li    a5, 25", "li    a5, 26");
    let a1 = traced_run(2, &src_a);
    let a2 = traced_run(2, &src_a);
    let b1 = traced_run(2, &src_b);
    assert_eq!(a1, a2);
    assert_ne!(a1.1, b1.1, "a longer loop takes more cycles");
}

#[test]
fn trace_is_off_by_default() {
    let image = assemble("main:\n  li t0, -1\n  li ra, 0\n  p_ret").unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    m.run(10_000).unwrap();
    assert!(m.trace().is_empty());
    assert!(m.stats().retired() > 0);
}
