//! Snapshot/restore round-trip determinism: `restore(snapshot_at(N))`
//! then running `M` more cycles must be bit-identical — stats, trace
//! events, final memory — to running `N + M` cycles from reset.

use lbp_asm::assemble;
use lbp_isa::SHARED_BASE;
use lbp_sim::{Event, Fault, FaultPlan, LbpConfig, Machine, MachineState, RunReport, SnapError};
use lbp_testutil::harness::machine_traced as machine;

fn plan(specs: &[&str]) -> FaultPlan {
    specs.iter().map(|s| Fault::parse(s).unwrap()).collect()
}

/// The determinism suite's torture program: fork/join across cores,
/// out-of-order memory, remote bank traffic, mul latencies.
fn busy_program() -> String {
    "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, worker
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, worker
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
worker:
    p_set a1
    srli  a1, a1, 16
    andi  a1, a1, 0x7f
    la    a2, table
    slli  a3, a1, 2
    add   a2, a2, a3
    li    a4, 0
    li    a5, 25
wloop:
    mul   a6, a5, a5
    add   a4, a4, a6
    addi  a5, a5, -1
    bnez  a5, wloop
    sw    a4, 0(a2)
    p_ret
.data
table: .word 0, 0, 0, 0, 0, 0, 0, 0"
        .to_string()
}

/// Runs to completion from reset, returning the report, the full event
/// stream and a probe word of shared memory.
fn reference(cores: usize, src: &str) -> (RunReport, Vec<Event>, u32) {
    let mut m = machine(cores, src);
    let report = m.run(1_000_000).unwrap();
    let word = m.peek_shared(SHARED_BASE).unwrap();
    (report, m.trace().events().to_vec(), word)
}

/// Snapshot at cycle `at`, restore, run both halves, splice the traces.
fn split_run(cores: usize, src: &str, at: u64) -> (RunReport, Vec<Event>, u32) {
    let mut prefix = machine(cores, src);
    let exited = prefix.run_to(at).unwrap();
    assert!(!exited, "checkpoint cycle {at} must precede program exit");
    let state = prefix.snapshot();
    assert_eq!(state.cycle(), at);
    let mut resumed = Machine::restore(&state).unwrap();
    let report = resumed.run(1_000_000).unwrap();
    let word = resumed.peek_shared(SHARED_BASE).unwrap();
    let mut events = prefix.trace().events().to_vec();
    events.extend_from_slice(resumed.trace().events());
    (report, events, word)
}

#[test]
fn round_trip_is_bit_identical_at_many_checkpoints() {
    let src = busy_program();
    let (report, events, word) = reference(2, &src);
    for at in [1, 7, 50, 173, report.stats.cycles - 1] {
        let (r2, e2, w2) = split_run(2, &src, at);
        assert_eq!(
            report.to_json().to_string(),
            r2.to_json().to_string(),
            "run report diverged for a checkpoint at cycle {at}"
        );
        assert_eq!(events, e2, "trace diverged for a checkpoint at cycle {at}");
        assert_eq!(word, w2, "memory diverged for a checkpoint at cycle {at}");
    }
}

#[test]
fn snapshot_of_restored_machine_is_identical() {
    let src = busy_program();
    let mut m = machine(2, &src);
    m.run_to(100).unwrap();
    let a = m.snapshot();
    let b = Machine::restore(&a).unwrap().snapshot();
    assert_eq!(a.as_bytes(), b.as_bytes());
}

#[test]
fn faulted_machine_round_trips() {
    let src = busy_program();
    let cfg = LbpConfig::cores(2)
        .with_trace()
        .with_faults(plan(&["delay-msg:1:3", "flip-mem:0x80000000:4:30"]));
    let image = assemble(&src).unwrap();
    let full_report = {
        let mut m = Machine::new(cfg.clone(), &image).unwrap();
        m.run(1_000_000).unwrap()
    };
    let mut prefix = Machine::new(cfg, &image).unwrap();
    prefix.run_to(60).unwrap();
    let mut resumed = Machine::restore(&prefix.snapshot()).unwrap();
    let report = resumed.run(1_000_000).unwrap();
    assert_eq!(
        full_report.to_json().to_string(),
        report.to_json().to_string()
    );
}

#[test]
fn dynamic_sections_of_equal_machines_match_across_fault_plans() {
    // Two machines whose configs differ only by an (un-fired) fault plan
    // have different full payloads but identical dynamic sections.
    let src = busy_program();
    let image = assemble(&src).unwrap();
    let mut clean = Machine::new(LbpConfig::cores(2).with_trace(), &image).unwrap();
    let mut faulted = Machine::new(
        LbpConfig::cores(2)
            .with_trace()
            .with_faults(plan(&["flip-mem:0x80000000:4:90000"])),
        &image,
    )
    .unwrap();
    clean.run_to(40).unwrap();
    faulted.run_to(40).unwrap();
    let a = clean.snapshot();
    let b = faulted.snapshot();
    assert_ne!(a.as_bytes(), b.as_bytes());
    assert_eq!(a.dynamic_bytes(), b.dynamic_bytes());
}

#[test]
fn truncated_and_corrupt_snapshots_are_rejected() {
    let src = busy_program();
    let mut m = machine(2, &src);
    m.run_to(20).unwrap();
    let state = m.snapshot();
    let bytes = state.as_bytes();
    // Truncation anywhere past the header fails cleanly.
    for cut in [bytes.len() - 1, bytes.len() / 2, 24] {
        let Ok(short) = MachineState::from_bytes(bytes[..cut].to_vec()) else {
            continue; // header-level rejection is fine too
        };
        assert!(matches!(
            Machine::restore(&short),
            Err(SnapError::Truncated) | Err(SnapError::Corrupt(_))
        ));
    }
    // A flipped byte in the payload must not be silently accepted as the
    // same machine: either restore rejects it, or the state it produces
    // differs from the original.
    let mut bent = bytes.to_vec();
    let mid = 24 + (bytes.len() - 24) / 2;
    bent[mid] ^= 0x40;
    if let Ok(state) = MachineState::from_bytes(bent) {
        if let Ok(m2) = Machine::restore(&state) {
            assert_ne!(m2.snapshot().as_bytes(), bytes);
        }
    }
}
