//! Microarchitectural timing tests: exact cycle counts for tiny programs,
//! documenting the pipeline model (and pinning it — any change to these
//! numbers is a deliberate microarchitecture change).

use lbp_asm::assemble;
use lbp_sim::{LbpConfig, Machine};

/// Runs to exit and returns the cycle count.
fn cycles(src: &str) -> u64 {
    let image = assemble(src).expect("assembles");
    let mut m = Machine::new(LbpConfig::cores(1), &image).expect("machine");
    m.run(1_000_000).expect("runs").stats.cycles
}

/// The exit idiom costs a fixed number of cycles; everything else is
/// measured as a delta against this baseline.
fn baseline() -> u64 {
    cycles("main:\n li t0, -1\n li ra, 0\n p_ret")
}

#[test]
fn straight_line_alu_is_two_cycles_per_instruction_single_hart() {
    // Every fetch suspends until decode resolves the next pc one cycle
    // later: a lone hart runs straight-line code at 0.5 IPC.
    let base = baseline();
    let n = 64;
    let body = "    addi a0, a0, 1\n".repeat(n);
    let total = cycles(&format!(
        "main:\n{body}    li t0, -1\n    li ra, 0\n    p_ret"
    ));
    let per_instr = (total - base) as f64 / n as f64;
    assert!(
        (1.9..=2.1).contains(&per_instr),
        "expected ~2 cycles/instruction, got {per_instr} ({total} vs {base})"
    );
}

#[test]
fn taken_branch_costs_one_extra_cycle_over_fallthrough() {
    // A conditional branch resolves at execute, not decode: the fetch
    // bubble is one cycle longer than straight-line code's.
    let n = 32;
    let mut fall = String::from("main:\n    li a1, 1\n");
    let mut take = String::from("main:\n    li a1, 1\n");
    for i in 0..n {
        // Never-taken branch: falls through.
        fall.push_str(&format!("    beqz a1, f{i}\nf{i}:\n"));
        // Always-taken branch to the next line: same instruction count.
        take.push_str(&format!("    bnez a1, t{i}\nt{i}:\n"));
    }
    for s in [&mut fall, &mut take] {
        s.push_str("    li t0, -1\n    li ra, 0\n    p_ret");
    }
    let (cf, ct) = (cycles(&fall), cycles(&take));
    // Both pay the execute-resolution latency; the *taken* direction must
    // not be slower (there is no predictor to mispredict).
    let diff = ct.abs_diff(cf);
    assert!(diff <= n as u64 / 8, "taken vs fallthrough: {ct} vs {cf}");
    // And both are slower than unconditional straight-line code.
    let straight = cycles(&format!(
        "main:\n    li a1, 1\n{}    li t0, -1\n    li ra, 0\n    p_ret",
        "    addi a2, a2, 1\n".repeat(n)
    ));
    assert!(cf > straight, "branches must cost more: {cf} vs {straight}");
}

#[test]
fn division_blocks_the_result_buffer() {
    // A dependent chain of divisions runs at the divider latency; an
    // independent ALU chain on the same hart cannot overtake it because
    // the 1-entry result buffer serializes issue.
    let base = baseline();
    let n = 16;
    let divs = cycles(&format!(
        "main:\n    li a0, 1000000\n    li a1, 3\n{}    li t0, -1\n    li ra, 0\n    p_ret",
        "    div a0, a0, a1\n".repeat(n)
    ));
    let div_cost = (divs - base) as f64 / n as f64;
    // Latencies::default().div == 12.
    assert!(
        div_cost >= 11.0,
        "a division chain must pay the 12-cycle divider: {div_cost}"
    );
}

#[test]
fn four_harts_quadruple_single_hart_alu_throughput() {
    // The same total instruction budget, spread over 1 vs 4 harts via
    // the fork protocol, finishes ~2x faster (0.5 -> 1.0 IPC).
    use lbp_omp::DetOmp;
    let spin = "li   a2, 500
spinx:
    addi a3, a3, 1
    addi a2, a2, -1
    bnez a2, spinx
    p_ret";
    let run = |members: usize| {
        let p = DetOmp::new(members)
            .function("spin", spin)
            .parallel_for("spin");
        let image = p.build().unwrap();
        let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
        let r = m.run(1_000_000).unwrap();
        (r.stats.cycles, r.stats.retired())
    };
    let (c1, _) = run(1);
    let (c4, r4) = run(4);
    // Four members retire ~4x the instructions of one member...
    assert!(r4 > 5500, "four members must retire 4 spins: {r4}");
    // ...in less than twice the time.
    assert!(
        c4 < c1 * 2,
        "multithreading must hide the fetch bubbles: {c4} vs {c1}"
    );
}

#[test]
fn local_load_latency_is_a_few_cycles() {
    let base = baseline();
    let n = 32;
    // Dependent load chain from the local stack (pointer chasing the
    // same cell).
    let prog = format!(
        "main:
    addi sp, sp, -8
    sw   sp, 0(sp)
    p_syncm
{}    addi sp, sp, 8
    li t0, -1
    li ra, 0
    p_ret",
        "    lw   t2, 0(sp)\n".repeat(n)
    );
    let total = cycles(&prog);
    let per_load = (total - base) as f64 / n as f64;
    assert!(
        (2.0..=6.0).contains(&per_load),
        "local load should cost a few cycles: {per_load}"
    );
}

#[test]
fn remote_load_pays_router_hops() {
    // The same load chain against a remote bank on a 16-core machine
    // (bank 15 from core 0: core->r1->r2->r1'->bank and back).
    let image_local = assemble(
        &("main:\n    la a4, here\n".to_owned()
            + &"    lw t2, 0(a4)\n".repeat(32)
            + "    li t0, -1\n    li ra, 0\n    p_ret\n.data\nhere: .word 7"),
    )
    .unwrap();
    let far_addr = lbp_isa::SHARED_BASE + 15 * 64 * 1024;
    let image_remote = assemble(
        &(format!("main:\n    li a4, {far_addr}\n")
            + &"    lw t2, 0(a4)\n".repeat(32)
            + "    li t0, -1\n    li ra, 0\n    p_ret"),
    )
    .unwrap();
    let run = |image: &lbp_asm::Image| {
        let mut m = Machine::new(LbpConfig::cores(16), image).unwrap();
        m.run(1_000_000).unwrap().stats.cycles
    };
    let (local, remote) = (run(&image_local), run(&image_remote));
    assert!(
        remote > local + 6 * 32 / 2,
        "remote loads must pay the router: {remote} vs {local}"
    );
}

#[test]
fn fork_to_next_core_is_slower_than_local_fork() {
    use lbp_omp::DetOmp;
    // Two-member teams: member 1 on the same core (p_fc) vs. forcing the
    // p_fn path by using five members (the fifth crosses the core
    // boundary). Compare overhead growth per member.
    let mk = |members: usize| {
        let p = DetOmp::new(members)
            .function("f", "p_ret")
            .parallel_for("f");
        let image = p.build().unwrap();
        let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
        m.run(1_000_000).unwrap().stats.cycles
    };
    let four = mk(4); // all p_fc
    let five = mk(5); // one p_fn
    assert!(
        five > four,
        "the cross-core fork adds link latency: {five} vs {four}"
    );
}

#[test]
fn exact_baseline_is_pinned() {
    // Pin the exit sequence's exact cost; any drift means the pipeline
    // timing changed and every documented number must be revisited.
    assert_eq!(baseline(), 9);
}
