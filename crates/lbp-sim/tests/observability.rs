//! Integration tests for the observability layer: stall attribution,
//! streaming trace sinks, interval samples and the machine-readable
//! run report.

use std::cell::RefCell;
use std::rc::Rc;

use lbp_isa::HartId;
use lbp_omp::DetOmp;
use lbp_sim::{Event, EventKind, Json, JsonlSink, LbpConfig, Machine, RunReport, TraceSink};

/// A `Write` target the test keeps a handle to while the machine owns
/// the sink.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An 8-member team on 2 cores doing a little ALU work and one shared
/// store each — exercises fork, start, join, memory and end events.
fn team_image() -> lbp_asm::Image {
    DetOmp::new(8)
        .data_space("out", 32)
        .function(
            "work",
            "la   a2, out
             slli a3, a0, 2
             add  a2, a2, a3
             li   a4, 20
w_loop:
             addi a3, a3, 3
             addi a4, a4, -1
             bnez a4, w_loop
             sw   a3, 0(a2)
             p_ret",
        )
        .parallel_for("work")
        .build()
        .expect("team program assembles")
}

fn run_with_cfg(cfg: LbpConfig, sink: Option<Box<dyn TraceSink>>) -> (Machine, RunReport) {
    let image = team_image();
    let mut m = Machine::new(cfg, &image).expect("machine");
    if let Some(sink) = sink {
        m.set_sink(sink);
    }
    let report = m.run(10_000_000).expect("run completes");
    m.finish_trace().expect("sink finishes");
    (m, report)
}

#[test]
fn describe_covers_every_event_kind() {
    let hart = HartId::from_parts(1, 2);
    let kinds: Vec<(EventKind, &[&str])> = vec![
        (EventKind::Fetch { pc: 0x40 }, &["fetches", "0x40"]),
        (EventKind::Commit { pc: 0x44 }, &["commits", "0x44"]),
        (
            EventKind::MemRead { addr: 96, bank: 3 },
            &["load", "0x60", "bank 3"],
        ),
        (
            EventKind::MemWrite {
                addr: 100,
                bank: 2,
                value: 7,
            },
            &["store 7", "0x64", "bank 2"],
        ),
        (EventKind::MemResp { addr: 96 }, &["writes back", "0x60"]),
        (
            EventKind::Fork {
                child: HartId::from_parts(2, 0),
            },
            &["allocates hart 0 of core 2"],
        ),
        (EventKind::Start { pc: 0x80 }, &["starts fetching", "0x80"]),
        (EventKind::Join { pc: 0x90 }, &["join", "0x90"]),
        (EventKind::EndSignal, &["ending-hart signal"]),
        (
            EventKind::ResultDelivered { slot: 1, value: 9 },
            &["receives 9", "result buffer 1"],
        ),
        (EventKind::HartEnd, &["ends and becomes free"]),
        (EventKind::Exit, &["exiting p_ret"]),
    ];
    for (kind, needles) in kinds {
        let e = Event {
            cycle: 123,
            hart,
            kind,
        };
        let text = e.describe();
        assert!(
            text.starts_with("at cycle 123, core 1, hart 2"),
            "describe must lead with time and place: {text}"
        );
        for needle in needles {
            assert!(
                text.to_lowercase().contains(needle),
                "describe of {:?} should mention `{needle}`: {text}",
                e.kind
            );
        }
    }
}

#[test]
fn jsonl_sink_round_trips_the_memory_trace() {
    let buf = SharedBuf::default();
    let (m, _) = run_with_cfg(
        LbpConfig::cores(2).with_trace(),
        Some(Box::new(JsonlSink::new(buf.clone()))),
    );
    let bytes = buf.0.borrow();
    let text = std::str::from_utf8(&bytes).expect("jsonl is utf-8");
    let parsed: Vec<Event> = text
        .lines()
        .map(|line| {
            let json = Json::parse(line).expect("every line is valid JSON");
            Event::from_json(&json).expect("every line decodes to an event")
        })
        .collect();
    assert!(!parsed.is_empty());
    assert_eq!(
        parsed,
        m.trace().events(),
        "the JSONL stream must decode to exactly the in-memory trace"
    );
}

#[test]
fn stats_json_is_bit_identical_across_runs() {
    let run = || {
        let (_, report) = run_with_cfg(LbpConfig::cores(2).with_interval(100), None);
        report.to_json().to_string()
    };
    let first = run();
    let second = run();
    assert!(first.contains("\"samples\""));
    assert_eq!(first, second, "stats JSON must be reproducible bit for bit");
}

#[test]
fn sink_choice_does_not_change_stats_or_exit() {
    let plain = run_with_cfg(LbpConfig::cores(2), None);
    let memory = run_with_cfg(LbpConfig::cores(2).with_trace(), None);
    let jsonl = run_with_cfg(
        LbpConfig::cores(2),
        Some(Box::new(JsonlSink::new(SharedBuf::default()))),
    );
    let baseline = plain.1.to_json().to_string();
    for (name, (_, report)) in [("memory trace", memory), ("jsonl sink", jsonl)] {
        assert!(report.exited);
        assert_eq!(
            report.to_json().to_string(),
            baseline,
            "{name} must not perturb the simulation"
        );
    }
}

#[test]
fn stall_cycles_partition_every_core_cycle() {
    let (m, report) = run_with_cfg(LbpConfig::cores(2), None);
    let stats = m.stats();
    assert!(report.exited);
    for core in 0..2 {
        let stalls = stats.stalls_of_core(core);
        assert_eq!(
            stalls.total() + stats.retired_by_core(core),
            stats.cycles,
            "core {core}: every cycle must either retire or be attributed \
             to exactly one stall bucket ({stalls:?})"
        );
    }
}

#[test]
fn interval_samples_sum_to_totals() {
    let (m, report) = run_with_cfg(LbpConfig::cores(2).with_interval(64), None);
    let stats = m.stats();
    assert!(report.exited);
    assert!(!stats.samples.is_empty());
    let retired: u64 = stats.samples.iter().map(|s| s.retired).sum();
    let cycles: u64 = stats.samples.iter().map(|s| s.interval).sum();
    let hops: u64 = stats.samples.iter().map(|s| s.link_hops).sum();
    assert_eq!(retired, stats.retired());
    assert_eq!(cycles, stats.cycles);
    assert_eq!(hops, stats.link_hops);
    let mut stall_sum = 0;
    for s in &stats.samples {
        stall_sum += s.stalls.total();
    }
    assert_eq!(stall_sum, stats.stalls_total().total());
}
