//! Differential property test: random single-hart programs executed on
//! the out-of-order, unordered-memory pipeline must produce exactly the
//! architectural state the sequential reference ISS produces — same
//! registers, same memory, same retired-instruction count. Deterministic
//! generation via `lbp-testutil`.
//!
//! Programs fence every store with `p_syncm` before dependent loads (the
//! machine's contract for single-hart RAW through memory).

use lbp_asm::assemble;
use lbp_isa::{Reg, LOCAL_BASE, SHARED_BASE};
use lbp_sim::iss::Iss;
use lbp_sim::{LbpConfig, Machine};
use lbp_testutil::{check_cases, Rng};

/// Registers the generator may write (never `zero/ra/sp/t0/t1/s0/s1`,
/// which carry program structure).
const POOL: [&str; 12] = [
    "a0", "a1", "a2", "a3", "a4", "a5", "t2", "t3", "t4", "s2", "s3", "s4",
];

#[derive(Debug, Clone)]
enum Op {
    /// `mnemonic rd, rs1, rs2`.
    Rrr(&'static str, usize, usize, usize),
    /// `mnemonic rd, rs1, imm`.
    Rri(&'static str, usize, usize, i32),
    /// `lui rd, imm20`.
    Lui(usize, u32),
    /// Store `rs` to scratch word `idx`, followed by `p_syncm`.
    Store(usize, u8, u32),
    /// Load scratch word `idx` into `rd`.
    Load(usize, u8, bool, u32),
    /// A countdown loop of `n` iterations around inner ops.
    Loop(u8, Vec<Op>),
}

const SCRATCH_WORDS: u32 = 16;

const RRR_MNEMONICS: [&str; 18] = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "mul", "mulh", "mulhu",
    "mulhsu", "div", "divu", "rem", "remu",
];

const RRI_LOGIC: [&str; 6] = ["addi", "slti", "sltiu", "xori", "ori", "andi"];
const RRI_SHIFT: [&str; 3] = ["slli", "srli", "srai"];
const SIZES: [u8; 3] = [1, 2, 4];

fn arb_rrr(rng: &mut Rng) -> Op {
    Op::Rrr(
        rng.pick(&RRR_MNEMONICS),
        rng.index(POOL.len()),
        rng.index(POOL.len()),
        rng.index(POOL.len()),
    )
}

fn arb_rri(rng: &mut Rng) -> Op {
    if rng.flip() {
        Op::Rri(
            rng.pick(&RRI_LOGIC),
            rng.index(POOL.len()),
            rng.index(POOL.len()),
            rng.range_i32(-2048, 2047),
        )
    } else {
        Op::Rri(
            rng.pick(&RRI_SHIFT),
            rng.index(POOL.len()),
            rng.index(POOL.len()),
            rng.range_i32(0, 31),
        )
    }
}

fn arb_flat_op(rng: &mut Rng) -> Op {
    match rng.weighted(&[4, 4, 1, 2, 2]) {
        0 => arb_rrr(rng),
        1 => arb_rri(rng),
        2 => Op::Lui(rng.index(POOL.len()), rng.range_u32(0, 0xfffff - 1)),
        3 => Op::Store(
            rng.index(POOL.len()),
            rng.pick(&SIZES),
            rng.range_u32(0, SCRATCH_WORDS - 1),
        ),
        _ => Op::Load(
            rng.index(POOL.len()),
            rng.pick(&SIZES),
            rng.flip(),
            rng.range_u32(0, SCRATCH_WORDS - 1),
        ),
    }
}

fn arb_program(rng: &mut Rng) -> Vec<Op> {
    let n = 2 + rng.index(30);
    (0..n)
        .map(|_| {
            if rng.weighted(&[8, 1]) == 0 {
                arb_flat_op(rng)
            } else {
                let iters = rng.range_u32(1, 3) as u8;
                let len = 1 + rng.index(7);
                Op::Loop(iters, (0..len).map(|_| arb_flat_op(rng)).collect())
            }
        })
        .collect()
}

fn emit(ops: &[Op], out: &mut String, label_n: &mut usize) {
    use std::fmt::Write;
    for op in ops {
        match op {
            Op::Rrr(m, d, a, b) => {
                let _ = writeln!(out, "    {m} {}, {}, {}", POOL[*d], POOL[*a], POOL[*b]);
            }
            Op::Rri(m, d, a, i) => {
                let _ = writeln!(out, "    {m} {}, {}, {i}", POOL[*d], POOL[*a]);
            }
            Op::Lui(d, v) => {
                let _ = writeln!(out, "    lui  {}, {v}", POOL[*d]);
            }
            Op::Store(r, size, idx) => {
                let mn = match size {
                    1 => "sb",
                    2 => "sh",
                    _ => "sw",
                };
                let off = idx * 4; // word-aligned slots keep all sizes legal
                let _ = writeln!(out, "    {mn}  {}, {off}(s1)", POOL[*r]);
                let _ = writeln!(out, "    p_syncm");
            }
            Op::Load(r, size, signed, idx) => {
                let mn = match (size, signed) {
                    (1, true) => "lb",
                    (1, false) => "lbu",
                    (2, true) => "lh",
                    (2, false) => "lhu",
                    _ => "lw",
                };
                let off = idx * 4;
                let _ = writeln!(out, "    {mn} {}, {off}(s1)", POOL[*r]);
            }
            Op::Loop(n, inner) => {
                *label_n += 1;
                let l = format!("loop{label_n}");
                let _ = writeln!(out, "    li   s0, {n}");
                let _ = writeln!(out, "{l}:");
                emit(inner, out, label_n);
                let _ = writeln!(out, "    addi s0, s0, -1");
                let _ = writeln!(out, "    bnez s0, {l}");
            }
        }
    }
}

fn program_text(ops: &[Op]) -> String {
    let mut s = String::from(
        "main:
    la   s1, scratch
    li   a0, 11
    li   a1, -7
    li   a2, 1000
    li   a3, 3
    li   a4, 0
    li   a5, 85
",
    );
    let mut label_n = 0;
    emit(ops, &mut s, &mut label_n);
    s.push_str(
        "    li   t0, -1
    li   ra, 0
    p_ret
.data
scratch: .space 64
",
    );
    s
}

#[test]
fn pipeline_matches_sequential_reference() {
    check_cases(64, 0xd1ff, |rng, case| {
        let ops = arb_program(rng);
        let src = program_text(&ops);
        let image = assemble(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        // Pipelined machine.
        let cfg = LbpConfig::cores(1);
        let mut machine = Machine::new(cfg.clone(), &image).expect("machine");
        machine
            .run(10_000_000)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        // Sequential reference with the same memory geometry and the
        // same initial sp.
        let sp = LOCAL_BASE + cfg.stack_bytes() - lbp_sim::CV_FRAME_BYTES;
        let mut iss = Iss::new(&image, cfg.local_bank_bytes, cfg.shared_bank_bytes, sp);
        iss.run(10_000_000)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        // Same retired count.
        assert_eq!(
            machine.stats().retired(),
            iss.retired,
            "case {case}: retired mismatch\n{src}"
        );
        // Same registers (the pool plus the structural ones).
        for name in POOL.iter().chain(["s0", "s1"].iter()) {
            let r: Reg = name.parse().unwrap();
            assert_eq!(
                machine.reg(lbp_isa::HartId::FIRST, r),
                iss.reg(r),
                "case {case}: register {name} mismatch\n{src}"
            );
        }
        // Same scratch memory.
        for i in 0..SCRATCH_WORDS {
            let addr = SHARED_BASE + 4 * i;
            assert_eq!(
                machine.peek_shared(addr).unwrap(),
                iss.peek_shared(addr).unwrap(),
                "case {case}: scratch[{i}] mismatch\n{src}"
            );
        }
    });
}
