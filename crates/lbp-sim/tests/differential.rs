//! Differential property test: random single-hart programs executed on
//! the out-of-order, unordered-memory pipeline must produce exactly the
//! architectural state the sequential reference ISS produces — same
//! registers, same memory, same retired-instruction count.
//!
//! Programs fence every store with `p_syncm` before dependent loads (the
//! machine's contract for single-hart RAW through memory).

use lbp_asm::assemble;
use lbp_isa::{Reg, LOCAL_BASE, SHARED_BASE};
use lbp_sim::iss::Iss;
use lbp_sim::{LbpConfig, Machine};
use proptest::prelude::*;

/// Registers the generator may write (never `zero/ra/sp/t0/t1/s0/s1`,
/// which carry program structure).
const POOL: [&str; 12] = [
    "a0", "a1", "a2", "a3", "a4", "a5", "t2", "t3", "t4", "s2", "s3", "s4",
];

#[derive(Debug, Clone)]
enum Op {
    /// `mnemonic rd, rs1, rs2`.
    Rrr(&'static str, usize, usize, usize),
    /// `mnemonic rd, rs1, imm`.
    Rri(&'static str, usize, usize, i32),
    /// `lui rd, imm20`.
    Lui(usize, u32),
    /// Store `rs` to scratch word `idx`, followed by `p_syncm`.
    Store(usize, u8, u32),
    /// Load scratch word `idx` into `rd`.
    Load(usize, u8, bool, u32),
    /// A countdown loop of `n` iterations around inner ops.
    Loop(u8, Vec<Op>),
}

const SCRATCH_WORDS: u32 = 16;

fn arb_rrr() -> impl Strategy<Value = Op> {
    (
        prop_oneof![
            Just("add"),
            Just("sub"),
            Just("sll"),
            Just("slt"),
            Just("sltu"),
            Just("xor"),
            Just("srl"),
            Just("sra"),
            Just("or"),
            Just("and"),
            Just("mul"),
            Just("mulh"),
            Just("mulhu"),
            Just("mulhsu"),
            Just("div"),
            Just("divu"),
            Just("rem"),
            Just("remu"),
        ],
        0..POOL.len(),
        0..POOL.len(),
        0..POOL.len(),
    )
        .prop_map(|(m, d, a, b)| Op::Rrr(m, d, a, b))
}

fn arb_rri() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop_oneof![
                Just("addi"),
                Just("slti"),
                Just("sltiu"),
                Just("xori"),
                Just("ori"),
                Just("andi"),
            ],
            0..POOL.len(),
            0..POOL.len(),
            -2048i32..=2047,
        )
            .prop_map(|(m, d, a, i)| Op::Rri(m, d, a, i)),
        (
            prop_oneof![Just("slli"), Just("srli"), Just("srai")],
            0..POOL.len(),
            0..POOL.len(),
            0i32..32,
        )
            .prop_map(|(m, d, a, i)| Op::Rri(m, d, a, i)),
    ]
}

fn arb_flat_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_rrr(),
        4 => arb_rri(),
        1 => (0..POOL.len(), 0u32..0xfffff).prop_map(|(d, v)| Op::Lui(d, v)),
        2 => (0..POOL.len(), prop_oneof![Just(1u8), Just(2), Just(4)], 0..SCRATCH_WORDS)
            .prop_map(|(r, sz, i)| Op::Store(r, sz, i)),
        2 => (0..POOL.len(), prop_oneof![Just(1u8), Just(2), Just(4)], any::<bool>(), 0..SCRATCH_WORDS)
            .prop_map(|(r, sz, sg, i)| Op::Load(r, sz, sg, i)),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Op>> {
    let looped =
        (1u8..4, prop::collection::vec(arb_flat_op(), 1..8)).prop_map(|(n, ops)| Op::Loop(n, ops));
    prop::collection::vec(prop_oneof![8 => arb_flat_op(), 1 => looped], 2..32)
}

fn emit(ops: &[Op], out: &mut String, label_n: &mut usize) {
    use std::fmt::Write;
    for op in ops {
        match op {
            Op::Rrr(m, d, a, b) => {
                let _ = writeln!(out, "    {m} {}, {}, {}", POOL[*d], POOL[*a], POOL[*b]);
            }
            Op::Rri(m, d, a, i) => {
                let _ = writeln!(out, "    {m} {}, {}, {i}", POOL[*d], POOL[*a]);
            }
            Op::Lui(d, v) => {
                let _ = writeln!(out, "    lui  {}, {v}", POOL[*d]);
            }
            Op::Store(r, size, idx) => {
                let mn = match size {
                    1 => "sb",
                    2 => "sh",
                    _ => "sw",
                };
                let off = idx * 4; // word-aligned slots keep all sizes legal
                let _ = writeln!(out, "    {mn}  {}, {off}(s1)", POOL[*r]);
                let _ = writeln!(out, "    p_syncm");
            }
            Op::Load(r, size, signed, idx) => {
                let mn = match (size, signed) {
                    (1, true) => "lb",
                    (1, false) => "lbu",
                    (2, true) => "lh",
                    (2, false) => "lhu",
                    _ => "lw",
                };
                let off = idx * 4;
                let _ = writeln!(out, "    {mn} {}, {off}(s1)", POOL[*r]);
            }
            Op::Loop(n, inner) => {
                *label_n += 1;
                let l = format!("loop{label_n}");
                let _ = writeln!(out, "    li   s0, {n}");
                let _ = writeln!(out, "{l}:");
                emit(inner, out, label_n);
                let _ = writeln!(out, "    addi s0, s0, -1");
                let _ = writeln!(out, "    bnez s0, {l}");
            }
        }
    }
}

fn program_text(ops: &[Op]) -> String {
    let mut s = String::from(
        "main:
    la   s1, scratch
    li   a0, 11
    li   a1, -7
    li   a2, 1000
    li   a3, 3
    li   a4, 0
    li   a5, 85
",
    );
    let mut label_n = 0;
    emit(ops, &mut s, &mut label_n);
    s.push_str(
        "    li   t0, -1
    li   ra, 0
    p_ret
.data
scratch: .space 64
",
    );
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_matches_sequential_reference(ops in arb_program()) {
        let src = program_text(&ops);
        let image = assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        // Pipelined machine.
        let cfg = LbpConfig::cores(1);
        let mut machine = Machine::new(cfg.clone(), &image).expect("machine");
        machine.run(10_000_000).unwrap_or_else(|e| panic!("{e}\n{src}"));
        // Sequential reference with the same memory geometry and the
        // same initial sp.
        let sp = LOCAL_BASE + cfg.stack_bytes() - lbp_sim::CV_FRAME_BYTES;
        let mut iss = Iss::new(&image, cfg.local_bank_bytes, cfg.shared_bank_bytes, sp);
        iss.run(10_000_000).unwrap_or_else(|e| panic!("{e}\n{src}"));
        // Same retired count.
        prop_assert_eq!(
            machine.stats().retired(),
            iss.retired,
            "retired mismatch\n{}", src
        );
        // Same registers (the pool plus the structural ones).
        for name in POOL.iter().chain(["s0", "s1"].iter()) {
            let r: Reg = name.parse().unwrap();
            prop_assert_eq!(
                machine.reg(lbp_isa::HartId::FIRST, r),
                iss.reg(r),
                "register {} mismatch\n{}", name, src
            );
        }
        // Same scratch memory.
        for i in 0..SCRATCH_WORDS {
            let addr = SHARED_BASE + 4 * i;
            prop_assert_eq!(
                machine.peek_shared(addr).unwrap(),
                iss.peek_shared(addr).unwrap(),
                "scratch[{}] mismatch\n{}", i, src
            );
        }
    }
}
