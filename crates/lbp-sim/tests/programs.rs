//! End-to-end simulator tests: assemble small programs, run them, check
//! architectural results and microarchitectural properties.

use lbp_asm::assemble;
use lbp_isa::{HartId, Reg, SHARED_BASE};
use lbp_sim::{LbpConfig, Machine, SimError};

/// Assembles, runs to exit, and returns the machine for inspection.
fn run(cores: usize, src: &str) -> Machine {
    let image = assemble(src).expect("test program assembles");
    let mut m = Machine::new(LbpConfig::cores(cores), &image).expect("machine builds");
    let report = m.run(1_000_000).expect("program runs");
    assert!(report.exited, "program exits");
    m
}

/// The exit idiom: `ra`-like 0 in the first operand, -1 in the second.
const EXIT: &str = "li t0, -1\n    li ra, 0\n    p_ret\n";

#[test]
fn arithmetic_chain() {
    let mut m = run(
        1,
        &format!(
            "main:
    li   a0, 6
    li   a1, 7
    mul  a2, a0, a1
    addi a2, a2, -2
    la   a3, out
    sw   a2, 0(a3)
    {EXIT}
.data
out: .word 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 40);
}

#[test]
fn loop_sums_first_n_integers() {
    let mut m = run(
        1,
        &format!(
            "main:
    li   a0, 0      # sum
    li   a1, 1      # i
    li   a2, 101
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    bne  a1, a2, loop
    la   a3, out
    sw   a0, 0(a3)
    {EXIT}
.data
out: .word 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 5050);
}

#[test]
fn division_and_remainder() {
    let mut m = run(
        1,
        &format!(
            "main:
    li   a0, 17
    li   a1, 5
    div  a2, a0, a1
    rem  a3, a0, a1
    la   a4, out
    sw   a2, 0(a4)
    sw   a3, 4(a4)
    {EXIT}
.data
out: .word 0, 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 3);
    assert_eq!(m.peek_shared(SHARED_BASE + 4).unwrap(), 2);
}

#[test]
fn byte_and_half_accesses() {
    let mut m = run(
        1,
        &format!(
            "main:
    la   a0, buf
    li   a1, -1
    sb   a1, 0(a0)
    li   a2, 0x7fff
    sh   a2, 2(a0)
    lb   a3, 0(a0)      # sign-extended -1
    lhu  a4, 2(a0)
    la   a5, out
    sw   a3, 0(a5)
    sw   a4, 4(a5)
    {EXIT}
.data
buf: .word 0
out: .word 0, 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE + 4).unwrap() as i32, -1);
    assert_eq!(m.peek_shared(SHARED_BASE + 8).unwrap(), 0x7fff);
}

#[test]
fn function_call_and_return() {
    let mut m = run(
        1,
        &format!(
            "main:
    li   a0, 20
    jal  double
    la   a1, out
    sw   a0, 0(a1)
    {EXIT}
double:
    add  a0, a0, a0
    ret
.data
out: .word 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 40);
}

#[test]
fn stack_push_pop_on_local_bank() {
    let mut m = run(
        1,
        &format!(
            "main:
    addi sp, sp, -16
    li   a0, 111
    li   a1, 222
    sw   a0, 0(sp)
    sw   a1, 4(sp)
    p_syncm
    lw   a2, 0(sp)
    lw   a3, 4(sp)
    addi sp, sp, 16
    add  a4, a2, a3
    la   a5, out
    sw   a4, 0(a5)
    {EXIT}
.data
out: .word 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 333);
}

#[test]
fn p_syncm_orders_store_before_load() {
    // Without p_syncm, the load could issue before the store completes
    // (LBP has no load/store queue). With it, the value is guaranteed.
    let mut m = run(
        1,
        &format!(
            "main:
    la   a0, cell
    li   a1, 77
    sw   a1, 0(a0)
    p_syncm
    lw   a2, 0(a0)
    la   a3, out
    sw   a2, 0(a3)
    {EXIT}
.data
cell: .word 0
out:  .word 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE + 4).unwrap(), 77);
}

#[test]
fn remote_bank_access_works_across_cores() {
    // Data placed in bank 3 of a 4-core machine, accessed from core 0.
    let far = 3 * 64 * 1024; // bank 3 with default 64 KiB banks
    let mut m = run(
        4,
        &format!(
            "main:
    li   a0, {addr}
    li   a1, 4242
    sw   a1, 0(a0)
    p_syncm
    lw   a2, 0(a0)
    la   a3, out
    sw   a2, 0(a3)
    {EXIT}
.data
out: .word 0",
            addr = SHARED_BASE + far,
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 4242);
    assert!(m.stats().remote_accesses >= 2, "write+read were remote");
}

#[test]
fn two_harts_fork_join_and_share_work() {
    // Hart 0 forks hart 1; each stores its p_set identity; the team joins
    // back and main exits. Mirrors the paper's Figs. 6-8 protocol.
    let src = format!(
        "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fc   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, thread0
    p_jalr ra, t0, a0
    # --- continuation: runs on the forked hart ---
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, thread1
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    {EXIT}
thread0:
    la   a1, out
    li   a2, 100
    sw   a2, 0(a1)
    p_ret
thread1:
    la   a1, out
    li   a2, 200
    sw   a2, 4(a1)
    p_ret
.data
out: .word 0, 0"
    );
    let mut m = run(1, &src);
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 100);
    assert_eq!(m.peek_shared(SHARED_BASE + 4).unwrap(), 200);
    assert_eq!(m.stats().forks, 1);
    assert_eq!(m.stats().joins, 2); // the self-join and the final join
                                    // Both harts retired instructions.
    assert!(m.stats().retired_per_hart[0] > 0);
    assert!(m.stats().retired_per_hart[1] > 0);
}

#[test]
fn p_swre_p_lwre_synchronize_producer_consumer() {
    // Hart 0 forks hart 1; hart 1 computes and sends a value backward to
    // hart 0's result slot 3 with p_swre; hart 0 receives it with p_lwre
    // *before* the child even starts computing (out-of-order wait).
    let src = format!(
        "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fc   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, consumer
    p_jalr ra, t0, a0
    # --- forked hart: the producer; join directly back ---
    p_lwcv ra, 0
    p_lwcv t0, 4
    li    a1, 5
    li    a2, 8
    mul   a3, a1, a2
    p_swre a3, t0, 3      # send 40 to the join hart's slot 3
    p_ret                  # type 4: sends ra (=rp) to join hart
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    {EXIT}
consumer:
    p_lwre a4, 3          # blocks until the producer's p_swre lands
    la    a5, out
    sw    a4, 0(a5)
    p_ret
.data
out: .word 0"
    );
    let mut m = run(1, &src);
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 40);
}

#[test]
fn fork_on_next_core() {
    // p_fn allocates on core 1; the forked hart stores and joins back.
    let src = format!(
        "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, thread0
    p_jalr ra, t0, a0
    # --- continuation on core 1, hart 0 ---
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, thread1
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    {EXIT}
thread0:
    p_set a1
    la   a2, out
    sw   a1, 0(a2)
    p_ret
thread1:
    p_set a1
    la   a2, out
    sw   a1, 4(a2)
    p_ret
.data
out: .word 0, 0"
    );
    let mut m = run(2, &src);
    // thread0 ran on hart 0 (identity word upper = 0), thread1 on core 1
    // hart 0 (global hart 4).
    let w0 = m.peek_shared(SHARED_BASE).unwrap();
    let w1 = m.peek_shared(SHARED_BASE + 4).unwrap();
    assert_eq!((w0 >> 16) & 0x7fff, 0);
    assert_eq!((w1 >> 16) & 0x7fff, 4);
    assert!(m.stats().retired_per_hart[4] > 0, "core 1 hart 0 worked");
}

#[test]
fn p_fn_on_last_core_is_a_protocol_error() {
    let image = assemble("main:\n  p_fn t6\n  p_ret").unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(10_000).unwrap_err();
    assert!(matches!(err, SimError::Protocol { .. }), "got {err:?}");
}

#[test]
fn runaway_program_times_out() {
    let image = assemble("main:\n  j main").unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(1_000).unwrap_err();
    assert_eq!(err, SimError::Timeout { cycles: 1_000 });
}

#[test]
fn unmapped_access_faults() {
    let image = assemble(&format!(
        "main:\n  li a0, {}\n  lw a1, 0(a0)\n  p_ret",
        SHARED_BASE + 0x40_0000 // far beyond one core's bank
    ))
    .unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(10_000).unwrap_err();
    assert!(matches!(err, SimError::Mem(_)), "got {err:?}");
}

#[test]
fn misaligned_access_faults() {
    let image =
        assemble("main:\n  la a0, cell\n  lw a1, 2(a0)\n  p_ret\n.data\ncell: .word 0, 0").unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(10_000).unwrap_err();
    assert!(matches!(err, SimError::Mem(_)), "got {err:?}");
}

#[test]
fn register_state_visible_after_run() {
    let m = run(1, &format!("main:\n  li s2, 12345\n  {EXIT}"));
    assert_eq!(m.reg(HartId::FIRST, Reg::S2), 12345);
}

#[test]
fn branch_directions_both_execute() {
    let mut m = run(
        1,
        &format!(
            "main:
    li   a0, 0
    li   a1, 5
    blt  a1, a0, skip   # not taken
    addi a0, a0, 1
skip:
    bge  a1, a0, fwd    # taken
    addi a0, a0, 100    # skipped
fwd:
    la   a2, out
    sw   a0, 0(a2)
    {EXIT}
.data
out: .word 0"
        ),
    );
    assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 1);
}

#[test]
fn ipc_is_positive_and_bounded_by_core_count() {
    let m = run(
        1,
        &format!(
            "main:
    li   a0, 0
    li   a1, 2000
loop:
    addi a0, a0, 1
    bne  a0, a1, loop
    {EXIT}"
        ),
    );
    let ipc = m.stats().ipc();
    assert!(ipc > 0.1, "ipc {ipc} too low");
    assert!(ipc <= 1.0, "single core cannot exceed 1 IPC, got {ipc}");
}

#[test]
fn p_swre_to_bad_slot_is_a_protocol_error() {
    let image = assemble(
        "main:
    p_set t0
    li   a0, 9
    p_swre a0, t0, 99    # slot 99 >= the configured 8 slots
    li   t0, -1
    li   ra, 0
    p_ret",
    )
    .unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(10_000).unwrap_err();
    assert!(matches!(err, SimError::Protocol { .. }), "{err:?}");
}

#[test]
fn start_to_unallocated_hart_is_a_protocol_error() {
    // p_jal to a hart that was never allocated by p_fc/p_fn.
    let image = assemble(
        "main:
    li   a0, 2          # hart 2 of core 0, never allocated
    p_jal ra, a0, 8
    li   t0, -1
    li   ra, 0
    p_ret",
    )
    .unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(10_000).unwrap_err();
    assert!(matches!(err, SimError::Protocol { .. }), "{err:?}");
}

#[test]
fn stores_complete_before_a_hart_ends() {
    // A member stores and immediately p_rets (no explicit p_syncm): the
    // quiescent-p_ret rule makes the store visible to the code after the
    // barrier, architecturally and not by timing luck.
    let src = "main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fc   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, writer
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, writer
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    la    a1, cell
    lw    a2, 0(a1)      # must observe the last member's store
    sw    a2, 4(a1)
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
writer:
    la    a1, cell
    p_set a2
    srli  a2, a2, 16
    andi  a2, a2, 0x7f
    addi  a2, a2, 1
    sw    a2, 0(a1)      # store, then p_ret with NO p_syncm
    p_ret
.data
cell: .word 0, 0";
    let image = assemble(src).unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    m.run(1_000_000).unwrap();
    // The last writer in the sequential order is the second member
    // (hart 1), so the copy must read 1+1 = 2.
    assert_eq!(m.peek_shared(SHARED_BASE + 4).unwrap(), 2);
}
