//! A minimal, dependency-free JSON value with a deterministic writer and
//! a small parser.
//!
//! The simulator's machine-readable reports must be **bit-identical**
//! across runs of the same program (the observability layer inherits the
//! paper's determinism claim), so the writer makes no formatting
//! decisions at runtime: objects keep insertion order, integers print as
//! integers, and floats use Rust's default shortest-roundtrip `Display`.
//! The parser exists so tests can read reports and JSONL traces back.

use std::fmt;

/// A JSON value.
///
/// Numbers are split into unsigned, signed and float variants so counter
/// values (u64) never round-trip through `f64` and lose precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (printed with Rust's shortest-roundtrip formatting).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and emitted verbatim.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with two-space indentation (for `--stats-json` files
    /// meant to be read by humans too).
    pub fn write_pretty(&self, out: &mut String) {
        self.write_indent(out, 0);
    }

    fn write_indent(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_indent(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_indent(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses one JSON value from `src` (the whole string must be
    /// consumed, up to trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = v.to_string();
        out.push_str(&s);
        // `Display` omits the fraction for whole floats; keep the value
        // typed as a float when read back.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null"); // JSON has no NaN/inf
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the source.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // simulator's own output.
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let tail = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = tail.chars().next().expect("nonempty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Json::U64(v))
        } else {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact() {
        let v = Json::obj([
            ("cycles", Json::U64(467171)),
            ("ipc", Json::F64(0.75)),
            ("name", Json::Str("a \"b\"\n".to_owned())),
            ("neg", Json::I64(-3)),
            (
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::U64(0)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = Json::F64(2.0).to_string();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let big = u64::MAX - 1;
        let text = Json::U64(big).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::obj([
            ("a", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("b", Json::obj([("c", Json::Str("d".into()))])),
            ("empty", Json::Arr(vec![])),
        ]);
        let mut s = String::new();
        v.write_pretty(&mut s);
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
