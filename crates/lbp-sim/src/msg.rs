//! Messages travelling on the LBP interconnect.

use lbp_isa::HartId;

use crate::snapshot::{get_hart, put_hart, SnapError, SnapReader, SnapWriter};

/// A memory-network message (requests toward shared banks, responses back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMsg {
    /// Read request from `hart` for `addr`.
    ReadReq {
        /// Target address.
        addr: u32,
        /// Requesting hart (routes the response; a hart has at most one
        /// outstanding load, so this is a sufficient tag).
        hart: HartId,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// Write request.
    WriteReq {
        /// Target address.
        addr: u32,
        /// Value to store (low `size` bytes).
        value: u32,
        /// Access size in bytes.
        size: u8,
        /// Requesting hart (routes the ack).
        hart: HartId,
    },
    /// Load response.
    ReadResp {
        /// Original address.
        addr: u32,
        /// Loaded (extended) value.
        value: u32,
        /// Destination hart.
        hart: HartId,
    },
    /// Store acknowledgement (consumed by `p_syncm` accounting).
    WriteAck {
        /// Original address.
        addr: u32,
        /// Destination hart.
        hart: HartId,
    },
}

impl NetMsg {
    /// The core whose shared bank must serve this message, given the
    /// per-core shared-bank size — meaningful for requests only.
    pub fn dest_bank(&self, shared_bank_bytes: u32) -> Option<u32> {
        match self {
            NetMsg::ReadReq { addr, .. } | NetMsg::WriteReq { addr, .. } => {
                Some((addr - lbp_isa::SHARED_BASE) / shared_bank_bytes)
            }
            _ => None,
        }
    }

    /// The hart the message belongs to (the requester for requests, the
    /// destination for responses — the same hart either way).
    pub(crate) fn hart(&self) -> HartId {
        match *self {
            NetMsg::ReadReq { hart, .. }
            | NetMsg::WriteReq { hart, .. }
            | NetMsg::ReadResp { hart, .. }
            | NetMsg::WriteAck { hart, .. } => hart,
        }
    }

    /// The core the message is ultimately delivered to — meaningful for
    /// responses only.
    pub fn dest_core(&self) -> Option<u32> {
        match self {
            NetMsg::ReadResp { hart, .. } | NetMsg::WriteAck { hart, .. } => Some(hart.core()),
            _ => None,
        }
    }

    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        match *self {
            NetMsg::ReadReq {
                addr,
                hart,
                size,
                signed,
            } => {
                w.u8(0);
                w.u32(addr);
                put_hart(w, hart);
                w.u8(size);
                w.bool(signed);
            }
            NetMsg::WriteReq {
                addr,
                value,
                size,
                hart,
            } => {
                w.u8(1);
                w.u32(addr);
                w.u32(value);
                w.u8(size);
                put_hart(w, hart);
            }
            NetMsg::ReadResp { addr, value, hart } => {
                w.u8(2);
                w.u32(addr);
                w.u32(value);
                put_hart(w, hart);
            }
            NetMsg::WriteAck { addr, hart } => {
                w.u8(3);
                w.u32(addr);
                put_hart(w, hart);
            }
        }
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<NetMsg, SnapError> {
        match r.u8()? {
            0 => Ok(NetMsg::ReadReq {
                addr: r.u32()?,
                hart: get_hart(r)?,
                size: r.u8()?,
                signed: r.bool()?,
            }),
            1 => Ok(NetMsg::WriteReq {
                addr: r.u32()?,
                value: r.u32()?,
                size: r.u8()?,
                hart: get_hart(r)?,
            }),
            2 => Ok(NetMsg::ReadResp {
                addr: r.u32()?,
                value: r.u32()?,
                hart: get_hart(r)?,
            }),
            3 => Ok(NetMsg::WriteAck {
                addr: r.u32()?,
                hart: get_hart(r)?,
            }),
            other => Err(SnapError::Corrupt(format!("bad NetMsg tag {other}"))),
        }
    }
}

/// A message on the forward inter-core link or the backward line
/// (paper Fig. 9: blue arrows forward, magenta backward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMsg {
    /// `p_fn`: ask the next core to allocate a hart.
    ForkReq {
        /// The requesting hart (receives the reply).
        from: HartId,
    },
    /// Reply to a `ForkReq` (travels backward).
    ForkReply {
        /// The requesting hart.
        to: HartId,
        /// The allocated hart.
        child: HartId,
    },
    /// Start pc delivered to an allocated hart (`p_jal`/`p_jalr`).
    Start {
        /// The hart to start.
        to: HartId,
        /// Its first fetch address.
        pc: u32,
    },
    /// A continuation value written by `p_swcv` into a next-core hart's
    /// cv frame.
    CvWrite {
        /// The hart whose frame is written.
        to: HartId,
        /// Byte offset within the cv frame.
        offset: u32,
        /// The value.
        value: u32,
        /// The writing hart (receives the ack).
        from: HartId,
    },
    /// Acknowledgement of a cross-core `CvWrite` (travels backward; feeds
    /// the writer's `p_syncm` accounting).
    CvAck {
        /// The writing hart.
        to: HartId,
    },
    /// The ending-hart signal a committing `p_ret` forwards to its team
    /// successor.
    EndSignal {
        /// The successor hart.
        to: HartId,
    },
    /// A join address sent by a type-4 `p_ret` to the team's join hart
    /// (travels backward).
    Join {
        /// The waiting hart.
        to: HartId,
        /// The address it resumes at.
        pc: u32,
    },
    /// A `p_swre` value for a result-buffer slot of a *prior* hart
    /// (travels backward).
    Result {
        /// The receiving hart.
        to: HartId,
        /// The result-buffer slot.
        slot: u32,
        /// The value.
        value: u32,
    },
}

impl CoreMsg {
    /// A compact human-readable description (crash dumps).
    pub fn describe(&self) -> String {
        match self {
            CoreMsg::ForkReq { from } => format!("ForkReq from hart {from}"),
            CoreMsg::ForkReply { to, child } => {
                format!("ForkReply(child {child}) to hart {to}")
            }
            CoreMsg::Start { to, pc } => format!("Start(pc {pc:#x}) to hart {to}"),
            CoreMsg::CvWrite {
                to, offset, from, ..
            } => {
                format!("CvWrite(offset {offset}) from hart {from} to hart {to}")
            }
            CoreMsg::CvAck { to } => format!("CvAck to hart {to}"),
            CoreMsg::EndSignal { to } => format!("EndSignal to hart {to}"),
            CoreMsg::Join { to, pc } => format!("Join(pc {pc:#x}) to hart {to}"),
            CoreMsg::Result { to, slot, value } => {
                format!("Result(slot {slot}, value {value:#x}) to hart {to}")
            }
        }
    }

    /// The core this message is addressed to.
    pub fn dest_core(&self) -> u32 {
        match self {
            CoreMsg::ForkReq { from } => from.core() + 1,
            CoreMsg::ForkReply { to, .. }
            | CoreMsg::Start { to, .. }
            | CoreMsg::CvWrite { to, .. }
            | CoreMsg::CvAck { to }
            | CoreMsg::EndSignal { to }
            | CoreMsg::Join { to, .. }
            | CoreMsg::Result { to, .. } => to.core(),
        }
    }

    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        match *self {
            CoreMsg::ForkReq { from } => {
                w.u8(0);
                put_hart(w, from);
            }
            CoreMsg::ForkReply { to, child } => {
                w.u8(1);
                put_hart(w, to);
                put_hart(w, child);
            }
            CoreMsg::Start { to, pc } => {
                w.u8(2);
                put_hart(w, to);
                w.u32(pc);
            }
            CoreMsg::CvWrite {
                to,
                offset,
                value,
                from,
            } => {
                w.u8(3);
                put_hart(w, to);
                w.u32(offset);
                w.u32(value);
                put_hart(w, from);
            }
            CoreMsg::CvAck { to } => {
                w.u8(4);
                put_hart(w, to);
            }
            CoreMsg::EndSignal { to } => {
                w.u8(5);
                put_hart(w, to);
            }
            CoreMsg::Join { to, pc } => {
                w.u8(6);
                put_hart(w, to);
                w.u32(pc);
            }
            CoreMsg::Result { to, slot, value } => {
                w.u8(7);
                put_hart(w, to);
                w.u32(slot);
                w.u32(value);
            }
        }
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<CoreMsg, SnapError> {
        match r.u8()? {
            0 => Ok(CoreMsg::ForkReq { from: get_hart(r)? }),
            1 => Ok(CoreMsg::ForkReply {
                to: get_hart(r)?,
                child: get_hart(r)?,
            }),
            2 => Ok(CoreMsg::Start {
                to: get_hart(r)?,
                pc: r.u32()?,
            }),
            3 => Ok(CoreMsg::CvWrite {
                to: get_hart(r)?,
                offset: r.u32()?,
                value: r.u32()?,
                from: get_hart(r)?,
            }),
            4 => Ok(CoreMsg::CvAck { to: get_hart(r)? }),
            5 => Ok(CoreMsg::EndSignal { to: get_hart(r)? }),
            6 => Ok(CoreMsg::Join {
                to: get_hart(r)?,
                pc: r.u32()?,
            }),
            7 => Ok(CoreMsg::Result {
                to: get_hart(r)?,
                slot: r.u32()?,
                value: r.u32()?,
            }),
            other => Err(SnapError::Corrupt(format!("bad CoreMsg tag {other}"))),
        }
    }
}
