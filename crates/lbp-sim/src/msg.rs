//! Messages travelling on the LBP interconnect.

use lbp_isa::HartId;

/// A memory-network message (requests toward shared banks, responses back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMsg {
    /// Read request from `hart` for `addr`.
    ReadReq {
        /// Target address.
        addr: u32,
        /// Requesting hart (routes the response; a hart has at most one
        /// outstanding load, so this is a sufficient tag).
        hart: HartId,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// Write request.
    WriteReq {
        /// Target address.
        addr: u32,
        /// Value to store (low `size` bytes).
        value: u32,
        /// Access size in bytes.
        size: u8,
        /// Requesting hart (routes the ack).
        hart: HartId,
    },
    /// Load response.
    ReadResp {
        /// Original address.
        addr: u32,
        /// Loaded (extended) value.
        value: u32,
        /// Destination hart.
        hart: HartId,
    },
    /// Store acknowledgement (consumed by `p_syncm` accounting).
    WriteAck {
        /// Original address.
        addr: u32,
        /// Destination hart.
        hart: HartId,
    },
}

impl NetMsg {
    /// The core whose shared bank must serve this message, given the
    /// per-core shared-bank size — meaningful for requests only.
    pub fn dest_bank(&self, shared_bank_bytes: u32) -> Option<u32> {
        match self {
            NetMsg::ReadReq { addr, .. } | NetMsg::WriteReq { addr, .. } => {
                Some((addr - lbp_isa::SHARED_BASE) / shared_bank_bytes)
            }
            _ => None,
        }
    }

    /// The core the message is ultimately delivered to — meaningful for
    /// responses only.
    pub fn dest_core(&self) -> Option<u32> {
        match self {
            NetMsg::ReadResp { hart, .. } | NetMsg::WriteAck { hart, .. } => Some(hart.core()),
            _ => None,
        }
    }
}

/// A message on the forward inter-core link or the backward line
/// (paper Fig. 9: blue arrows forward, magenta backward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMsg {
    /// `p_fn`: ask the next core to allocate a hart.
    ForkReq {
        /// The requesting hart (receives the reply).
        from: HartId,
    },
    /// Reply to a `ForkReq` (travels backward).
    ForkReply {
        /// The requesting hart.
        to: HartId,
        /// The allocated hart.
        child: HartId,
    },
    /// Start pc delivered to an allocated hart (`p_jal`/`p_jalr`).
    Start {
        /// The hart to start.
        to: HartId,
        /// Its first fetch address.
        pc: u32,
    },
    /// A continuation value written by `p_swcv` into a next-core hart's
    /// cv frame.
    CvWrite {
        /// The hart whose frame is written.
        to: HartId,
        /// Byte offset within the cv frame.
        offset: u32,
        /// The value.
        value: u32,
        /// The writing hart (receives the ack).
        from: HartId,
    },
    /// Acknowledgement of a cross-core `CvWrite` (travels backward; feeds
    /// the writer's `p_syncm` accounting).
    CvAck {
        /// The writing hart.
        to: HartId,
    },
    /// The ending-hart signal a committing `p_ret` forwards to its team
    /// successor.
    EndSignal {
        /// The successor hart.
        to: HartId,
    },
    /// A join address sent by a type-4 `p_ret` to the team's join hart
    /// (travels backward).
    Join {
        /// The waiting hart.
        to: HartId,
        /// The address it resumes at.
        pc: u32,
    },
    /// A `p_swre` value for a result-buffer slot of a *prior* hart
    /// (travels backward).
    Result {
        /// The receiving hart.
        to: HartId,
        /// The result-buffer slot.
        slot: u32,
        /// The value.
        value: u32,
    },
}

impl CoreMsg {
    /// A compact human-readable description (crash dumps).
    pub fn describe(&self) -> String {
        match self {
            CoreMsg::ForkReq { from } => format!("ForkReq from hart {from}"),
            CoreMsg::ForkReply { to, child } => {
                format!("ForkReply(child {child}) to hart {to}")
            }
            CoreMsg::Start { to, pc } => format!("Start(pc {pc:#x}) to hart {to}"),
            CoreMsg::CvWrite {
                to, offset, from, ..
            } => {
                format!("CvWrite(offset {offset}) from hart {from} to hart {to}")
            }
            CoreMsg::CvAck { to } => format!("CvAck to hart {to}"),
            CoreMsg::EndSignal { to } => format!("EndSignal to hart {to}"),
            CoreMsg::Join { to, pc } => format!("Join(pc {pc:#x}) to hart {to}"),
            CoreMsg::Result { to, slot, value } => {
                format!("Result(slot {slot}, value {value:#x}) to hart {to}")
            }
        }
    }

    /// The core this message is addressed to.
    pub fn dest_core(&self) -> u32 {
        match self {
            CoreMsg::ForkReq { from } => from.core() + 1,
            CoreMsg::ForkReply { to, .. }
            | CoreMsg::Start { to, .. }
            | CoreMsg::CvWrite { to, .. }
            | CoreMsg::CvAck { to }
            | CoreMsg::EndSignal { to }
            | CoreMsg::Join { to, .. }
            | CoreMsg::Result { to, .. } => to.core(),
        }
    }
}
