//! The inter-core fork/join fabric: the forward links and the backward
//! line of the paper's Fig. 9.
//!
//! Every core is directly connected to its successor (forward link, blue
//! arrows): hart allocations, continuation-value writes, start addresses
//! and ending-hart signals ride it. A unidirectional backward line (magenta
//! arrows) relays messages hop by hop toward any predecessor core: join
//! addresses, fork replies, cv-write acks, and `p_swre` results/reductions.
//! Each segment moves one message per cycle, FIFO — deterministic.

use std::collections::VecDeque;

use crate::msg::CoreMsg;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// The forward links and backward line of a `cores`-core machine.
#[derive(Debug)]
pub struct Fabric {
    cores: u32,
    /// `fwd[i]`: queue of messages traversing the link core i → core i+1.
    fwd: Vec<VecDeque<CoreMsg>>,
    /// `bwd[i]`: queue of messages traversing the segment core i+1 → core i.
    bwd: Vec<VecDeque<CoreMsg>>,
    /// Messages delivered to each core this cycle.
    inbox: Vec<Vec<CoreMsg>>,
    /// Total messages that crossed any segment (statistics).
    pub hops: u64,
    /// Message-cycles lost to segment contention: each cycle, every
    /// message left waiting behind the one a segment carried adds one.
    pub contended: u64,
    /// Messages accepted so far (the ordinal the fault plan indexes).
    sent: u64,
    /// Ordinals of messages the fault plan discards.
    drop_nth: Vec<u64>,
    /// `(ordinal, extra cycles)` of messages the fault plan holds back.
    delay_nth: Vec<(u64, u32)>,
    /// Held-back messages: `(cycles left, from_core, message)`.
    delayed: Vec<(u32, u32, CoreMsg)>,
    /// Drop/delay faults that actually fired.
    pub faults_applied: u64,
}

impl Fabric {
    /// Builds the fabric for `cores` cores.
    pub fn new(cores: usize) -> Fabric {
        let cores = cores as u32;
        let links = cores.saturating_sub(1) as usize;
        Fabric {
            cores,
            fwd: (0..links).map(|_| VecDeque::new()).collect(),
            bwd: (0..links).map(|_| VecDeque::new()).collect(),
            inbox: (0..cores).map(|_| Vec::new()).collect(),
            hops: 0,
            contended: 0,
            sent: 0,
            drop_nth: Vec::new(),
            delay_nth: Vec::new(),
            delayed: Vec::new(),
            faults_applied: 0,
        }
    }

    /// Installs the link-fault schedule (from the machine's fault plan):
    /// message ordinals to drop and ordinals to hold back.
    pub fn set_faults(&mut self, drop_nth: Vec<u64>, delay_nth: Vec<(u64, u32)>) {
        self.drop_nth = drop_nth;
        self.delay_nth = delay_nth;
    }

    /// Sends a message from `from_core`. Forward messages may only target
    /// the immediate successor; backward messages any predecessor.
    /// Same-core messages are delivered next cycle through the inbox
    /// (modelling the one-cycle intra-core signal path).
    ///
    /// # Panics
    ///
    /// Panics if a forward message skips past the immediate successor
    /// (LBP's forward links only connect neighbours).
    pub fn send(&mut self, from_core: u32, msg: CoreMsg) {
        let nth = self.sent;
        self.sent += 1;
        if self.drop_nth.contains(&nth) {
            self.faults_applied += 1;
            return;
        }
        if let Some(&(_, cycles)) = self.delay_nth.iter().find(|&&(n, _)| n == nth) {
            self.faults_applied += 1;
            self.delayed.push((cycles, from_core, msg));
            return;
        }
        self.enqueue(from_core, msg);
    }

    /// Places a message on its link (the fault-free path of `send`, also
    /// used to release delayed messages without re-counting them).
    fn enqueue(&mut self, from_core: u32, msg: CoreMsg) {
        let dest = msg.dest_core();
        assert!(
            dest < self.cores,
            "message to core {dest} beyond the last core ({})",
            self.cores
        );
        if dest == from_core {
            // One-cycle local loop: stage on the (empty) path below.
            self.inbox[dest as usize].push(msg);
        } else if dest > from_core {
            assert!(
                dest == from_core + 1,
                "forward link only reaches the next core (from {from_core} to {dest})"
            );
            self.fwd[from_core as usize].push_back(msg);
        } else {
            // Backward: enter the segment just below `from_core`.
            self.bwd[(from_core - 1) as usize].push_back(msg);
        }
    }

    /// Takes the messages delivered to a core this cycle.
    pub fn take_inbox(&mut self, core: u32) -> Vec<CoreMsg> {
        std::mem::take(&mut self.inbox[core as usize])
    }

    /// Advances every link segment by one cycle.
    pub fn tick(&mut self) {
        // Forward links: one message per segment per cycle, delivered to
        // the successor core.
        for i in 0..self.fwd.len() {
            if let Some(msg) = self.fwd[i].pop_front() {
                self.hops += 1;
                self.contended += self.fwd[i].len() as u64;
                self.inbox[i + 1].push(msg);
            }
        }
        // Backward line: one message per segment per cycle; a message not
        // yet at its destination re-enters the next segment down.
        let mut relay = Vec::new();
        for i in 0..self.bwd.len() {
            if let Some(msg) = self.bwd[i].pop_front() {
                self.hops += 1;
                self.contended += self.bwd[i].len() as u64;
                if msg.dest_core() == i as u32 {
                    self.inbox[i].push(msg);
                } else {
                    relay.push((i - 1, msg));
                }
            }
        }
        for (seg, msg) in relay {
            self.bwd[seg].push_back(msg);
        }
        // Release delayed messages whose hold expired onto their links.
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= 1 {
                let (_, from_core, msg) = self.delayed.remove(i);
                self.enqueue(from_core, msg);
            } else {
                self.delayed[i].0 -= 1;
                i += 1;
            }
        }
    }

    /// Serializes the fault schedule and its bookkeeping (snapshot
    /// *static* section: part of the plan, not of the execution state).
    pub(crate) fn snap_static(&self, w: &mut SnapWriter) {
        w.seq(self.drop_nth.len());
        for &n in &self.drop_nth {
            w.u64(n);
        }
        w.seq(self.delay_nth.len());
        for &(n, cycles) in &self.delay_nth {
            w.u64(n);
            w.u32(cycles);
        }
        w.u64(self.faults_applied);
    }

    /// Reads back what [`Fabric::snap_static`] wrote.
    #[allow(clippy::type_complexity)]
    pub(crate) fn unsnap_static(
        r: &mut SnapReader<'_>,
    ) -> Result<(Vec<u64>, Vec<(u64, u32)>, u64), SnapError> {
        let mut drop_nth = Vec::new();
        for _ in 0..r.seq()? {
            drop_nth.push(r.u64()?);
        }
        let mut delay_nth = Vec::new();
        for _ in 0..r.seq()? {
            delay_nth.push((r.u64()?, r.u32()?));
        }
        let faults_applied = r.u64()?;
        Ok((drop_nth, delay_nth, faults_applied))
    }

    /// Serializes the execution-determined state: every queued, delivered
    /// and delayed message plus the traffic counters (snapshot *dynamic*
    /// section).
    pub(crate) fn snap_dyn(&self, w: &mut SnapWriter) {
        w.u32(self.cores);
        w.seq(self.fwd.len());
        for q in &self.fwd {
            w.seq(q.len());
            for msg in q {
                msg.snap(w);
            }
        }
        w.seq(self.bwd.len());
        for q in &self.bwd {
            w.seq(q.len());
            for msg in q {
                msg.snap(w);
            }
        }
        w.seq(self.inbox.len());
        for inbox in &self.inbox {
            w.seq(inbox.len());
            for msg in inbox {
                msg.snap(w);
            }
        }
        w.u64(self.hops);
        w.u64(self.contended);
        w.u64(self.sent);
        w.seq(self.delayed.len());
        for &(left, from, msg) in &self.delayed {
            w.u32(left);
            w.u32(from);
            msg.snap(w);
        }
    }

    /// Rebuilds the fabric from its dynamic section plus the fault
    /// schedule recovered by [`Fabric::unsnap_static`].
    pub(crate) fn unsnap_dyn(
        r: &mut SnapReader<'_>,
        drop_nth: Vec<u64>,
        delay_nth: Vec<(u64, u32)>,
        faults_applied: u64,
    ) -> Result<Fabric, SnapError> {
        let cores = r.u32()?;
        let links = cores.saturating_sub(1) as usize;
        let read_queues = |r: &mut SnapReader<'_>, expect: usize, what: &str| {
            let n = r.seq()?;
            if n != expect {
                return Err(SnapError::Corrupt(format!(
                    "fabric has {n} {what} queues, expected {expect}"
                )));
            }
            let mut queues = Vec::with_capacity(n);
            for _ in 0..n {
                let mut q = VecDeque::new();
                for _ in 0..r.seq()? {
                    q.push_back(CoreMsg::unsnap(r)?);
                }
                queues.push(q);
            }
            Ok(queues)
        };
        let fwd = read_queues(r, links, "forward")?;
        let bwd = read_queues(r, links, "backward")?;
        let inboxes = r.seq()?;
        if inboxes != cores as usize {
            return Err(SnapError::Corrupt(format!(
                "fabric has {inboxes} inboxes, expected {cores}"
            )));
        }
        let mut inbox = Vec::with_capacity(inboxes);
        for _ in 0..inboxes {
            let mut msgs = Vec::new();
            for _ in 0..r.seq()? {
                msgs.push(CoreMsg::unsnap(r)?);
            }
            inbox.push(msgs);
        }
        let hops = r.u64()?;
        let contended = r.u64()?;
        let sent = r.u64()?;
        let mut delayed = Vec::new();
        for _ in 0..r.seq()? {
            delayed.push((r.u32()?, r.u32()?, CoreMsg::unsnap(r)?));
        }
        Ok(Fabric {
            cores,
            fwd,
            bwd,
            inbox,
            hops,
            contended,
            sent,
            drop_nth,
            delay_nth,
            delayed,
            faults_applied,
        })
    }

    /// Whether nothing is in flight: no message on any segment, in any
    /// inbox, or held back by a delay fault.
    pub fn is_quiet(&self) -> bool {
        self.fwd.iter().all(VecDeque::is_empty)
            && self.bwd.iter().all(VecDeque::is_empty)
            && self.inbox.iter().all(Vec::is_empty)
            && self.delayed.is_empty()
    }

    /// Describes every in-flight message with its location (crash dumps).
    pub fn pending(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, q) in self.fwd.iter().enumerate() {
            for msg in q {
                out.push(format!("{} on forward link {i}->{}", msg.describe(), i + 1));
            }
        }
        for (i, q) in self.bwd.iter().enumerate() {
            for msg in q {
                out.push(format!(
                    "{} on backward segment {}->{i}",
                    msg.describe(),
                    i + 1
                ));
            }
        }
        for (core, inbox) in self.inbox.iter().enumerate() {
            for msg in inbox {
                out.push(format!("{} in core {core}'s inbox", msg.describe()));
            }
        }
        for (left, _, msg) in &self.delayed {
            out.push(format!(
                "{} held by a delay fault ({left} cycles left)",
                msg.describe()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_isa::HartId;

    fn join_to(core: u32) -> CoreMsg {
        CoreMsg::Join {
            to: HartId::from_parts(core, 0),
            pc: 0x40,
        }
    }

    #[test]
    fn forward_delivery_takes_one_cycle() {
        let mut f = Fabric::new(4);
        f.send(
            0,
            CoreMsg::Start {
                to: HartId::from_parts(1, 0),
                pc: 0x10,
            },
        );
        assert!(f.take_inbox(1).is_empty());
        f.tick();
        assert_eq!(f.take_inbox(1).len(), 1);
    }

    #[test]
    fn backward_line_is_hop_by_hop() {
        let mut f = Fabric::new(8);
        f.send(5, join_to(1));
        for _ in 0..3 {
            f.tick();
            assert!(f.take_inbox(1).is_empty());
        }
        f.tick();
        assert_eq!(f.take_inbox(1).len(), 1);
    }

    #[test]
    fn backward_segments_carry_one_message_per_cycle() {
        let mut f = Fabric::new(4);
        f.send(2, join_to(0));
        f.send(2, join_to(0));
        f.tick(); // msg1 on segment 1->0, msg2 waits
        f.tick(); // msg1 delivered, msg2 crosses 2->1... (FIFO per segment)
        assert_eq!(f.take_inbox(0).len(), 1);
        f.tick();
        assert_eq!(f.take_inbox(0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "forward link only reaches the next core")]
    fn forward_skip_is_rejected() {
        let mut f = Fabric::new(4);
        f.send(
            0,
            CoreMsg::Start {
                to: HartId::from_parts(2, 0),
                pc: 0,
            },
        );
    }

    #[test]
    fn same_core_messages_loop_locally() {
        let mut f = Fabric::new(2);
        f.send(1, join_to(1));
        assert_eq!(f.take_inbox(1).len(), 1);
    }

    fn result_to(core: u32, value: u32) -> CoreMsg {
        CoreMsg::Result {
            to: HartId::from_parts(core, 0),
            slot: 0,
            value,
        }
    }

    /// Backward result-line backpressure, cycle by cycle: a burst of
    /// `p_swre` results from the last core of a 4-core machine drains
    /// through the final segment at exactly one message per cycle, in
    /// FIFO order.
    #[test]
    fn result_burst_drains_one_per_cycle_in_order() {
        let mut f = Fabric::new(4);
        for v in 0..5u32 {
            f.send(3, result_to(0, v));
        }
        // Two segments (3->2->1) of pipeline fill before the first
        // delivery off segment 1->0.
        f.tick();
        assert!(f.take_inbox(0).is_empty());
        f.tick();
        assert!(f.take_inbox(0).is_empty());
        for v in 0..5u32 {
            f.tick();
            let inbox = f.take_inbox(0);
            assert_eq!(inbox.len(), 1, "exactly one delivery per cycle");
            match inbox[0] {
                CoreMsg::Result { value, .. } => assert_eq!(value, v, "FIFO order preserved"),
                ref m => panic!("unexpected message {}", m.describe()),
            }
        }
        assert!(f.is_quiet());
    }

    /// A message relayed down the backward line queues *behind* traffic
    /// already waiting on the next segment — arbitration is
    /// deterministic when a through-message meets local senders.
    #[test]
    fn relayed_messages_queue_behind_local_senders() {
        let mut f = Fabric::new(3);
        // Core 2's result must cross segments 2->1 and 1->0; core 1
        // injects directly onto segment 1->0 in the same cycle.
        f.send(2, result_to(0, 22));
        f.send(1, result_to(0, 11));
        f.tick(); // local 11 crosses 1->0; 22 crosses 2->1, relays behind
        let first = f.take_inbox(0);
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0], CoreMsg::Result { value: 11, .. }));
        f.tick();
        let second = f.take_inbox(0);
        assert_eq!(second.len(), 1);
        assert!(matches!(second[0], CoreMsg::Result { value: 22, .. }));
    }

    /// Forward links are also 1 message per cycle: a fork burst from
    /// core 0 reaches core 1 one message per tick.
    #[test]
    fn forward_link_serializes_a_fork_burst() {
        let mut f = Fabric::new(2);
        for _ in 0..3 {
            f.send(
                0,
                CoreMsg::ForkReq {
                    from: HartId::from_parts(0, 0),
                },
            );
        }
        for _ in 0..3 {
            f.tick();
            assert_eq!(f.take_inbox(1).len(), 1);
        }
        assert!(f.is_quiet());
    }

    /// The contention counter charges one message-cycle per message left
    /// waiting behind a busy segment — the backpressure statistic the
    /// stall attribution reports.
    #[test]
    fn contention_counter_charges_waiting_messages() {
        let mut f = Fabric::new(2);
        for v in 0..3u32 {
            f.send(1, result_to(0, v));
        }
        assert_eq!(f.contended, 0);
        f.tick(); // carries one; two left waiting
        assert_eq!(f.contended, 2);
        f.tick(); // carries one; one left waiting
        assert_eq!(f.contended, 3);
        f.tick(); // carries the last; nothing waits
        assert_eq!(f.contended, 3);
        assert_eq!(f.hops, 3);
    }

    /// Opposite directions never share bandwidth: a forward start and a
    /// backward join on the same core pair both deliver on cycle one.
    #[test]
    fn forward_and_backward_are_independent_lanes() {
        let mut f = Fabric::new(2);
        f.send(
            0,
            CoreMsg::Start {
                to: HartId::from_parts(1, 0),
                pc: 0x10,
            },
        );
        f.send(1, join_to(0));
        f.tick();
        assert_eq!(f.take_inbox(0).len(), 1);
        assert_eq!(f.take_inbox(1).len(), 1);
    }
}
