//! The functional-mode fast engine: a precompiled-dispatch ISS over the
//! whole machine.
//!
//! Where [`Machine`](crate::Machine) models every pipeline stage, bank
//! port and router hop, [`FastEngine`] executes the same assembled image
//! at the *architectural* level only: one instruction at a time per hart,
//! memory served synchronously, and every X_PAR rendezvous message
//! (fork request/reply, start pc, join address, ending-hart signal,
//! `p_swre` result) delivered the moment it is sent. The paper's
//! determinism argument is what makes this sound: fork/join rendezvous
//! edges totally order all cross-hart communication of a well-formed
//! Deterministic OpenMP program, so *any* schedule that respects those
//! edges — including this engine's simple run-to-block schedule — reaches
//! the same architectural state at every rendezvous point that the
//! cycle-exact engine reaches.
//!
//! The engine exists for hybrid fast-forward simulation: `lbp-run --warm N`
//! executes the warm-up region here at tens of Minstr/s, then
//! [`FastEngine::materialize`] builds a cycle-exact
//! [`Machine`](crate::machine::Machine) from the
//! architectural state (all pipelines drained, no message in flight) and
//! the measured window runs at full fidelity. See `DESIGN.md` for the
//! functional-mode semantics contract and its precision boundaries.
//!
//! What is deliberately **not** modeled: cycles, stalls, bank conflicts,
//! link hops and contention (all zero in the produced statistics), fault
//! injection (the warm phase must be fault-free; [`FastEngine::materialize`]
//! enforces it), and I/O devices (whose replies are cycle-dependent —
//! accessing the I/O region functionally is an error).

use std::collections::VecDeque;

use lbp_asm::Image;
use lbp_isa::dispatch::{predecode, UKind, UOp};
use lbp_isa::{HartId, IdentityWord, Region, HARTS_PER_CORE, INSTR_BYTES, LOCAL_BASE, SHARED_BASE};

use crate::bank::MemFault;
use crate::config::{LbpConfig, CV_FRAME_BYTES};
use crate::error::{BlockedHart, SimError};
use crate::hart::HartState;

/// Why a functional hart cannot execute its next instruction right now.
/// Parked harts leave the scheduler's runnable set; the delivery that
/// satisfies the wait moves them back to [`FWait::Ready`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FWait {
    /// Runnable.
    Ready,
    /// A `p_fc`/`p_fn` is queued at a core allocator; completing the fork
    /// writes the child identity into `rd` and retires the instruction.
    Fork { rd: u8 },
    /// A `p_ret` waiting for the team predecessor's ending-hart signal.
    EndSignal,
    /// A `p_lwre` waiting for data in a receive slot (an out-of-range
    /// slot waits forever, like the cycle-exact issue gate).
    Result { slot: usize },
    /// Parked just before the program's exit `p_ret` (never executed
    /// functionally).
    AtExit,
}

/// Architectural state of one hart in the functional engine.
#[derive(Debug, Clone)]
struct FHart {
    state: HartState,
    /// Next pc; meaningful only while `Running`.
    pc: u32,
    /// Architectural registers (`x0` held at zero by the write helper).
    regs: [u32; 32],
    /// `p_swre` receive slots.
    recv: Vec<VecDeque<u32>>,
    end_signal: bool,
    team_succ: Option<HartId>,
    wait: FWait,
}

impl FHart {
    fn fresh(result_slots: usize) -> FHart {
        FHart {
            state: HartState::Free,
            pc: 0,
            regs: [0; 32],
            recv: (0..result_slots).map(|_| VecDeque::new()).collect(),
            end_signal: false,
            team_succ: None,
            wait: FWait::Ready,
        }
    }
}

/// The condition a [`FastEngine::run`] call stops on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastStop {
    /// Stop once the machine has retired this many instructions in total
    /// (clamped forward to the next rendezvous-quiet point).
    Retired(u64),
    /// Stop the first time any hart is *about to execute* this pc — the
    /// region-of-interest marker handoff.
    Pc(u32),
    /// Run until the program's exit `p_ret` is reached (it is never
    /// executed functionally: the hart parks just before it so the
    /// cycle-exact engine can retire it).
    Exit,
}

/// What a completed [`FastEngine::run`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastSummary {
    /// Instructions retired in total (across every `run` call so far).
    pub retired: u64,
    /// The virtual cycle of the engine: the maximum per-core retired
    /// count, i.e. the fewest cycles any machine that retires at most one
    /// instruction per core per cycle could have used.
    pub virtual_cycle: u64,
    /// The hart stream reached the exit `p_ret` (parked, not executed).
    pub at_exit: bool,
    /// Instructions retired *past* the stop target while draining pending
    /// fork allocations to the next rendezvous-quiet point. Zero when the
    /// target already fell on a quiet point.
    pub clamped: u64,
    /// Whether the engine stopped rendezvous-quiet (no fork request
    /// pending anywhere). `false` only when the program deadlocked or
    /// exited with a fork still queued; materialization is still sound —
    /// blocked forks re-execute cycle-exactly — but the handoff is no
    /// longer at a rendezvous boundary.
    pub rendezvous_clean: bool,
    /// The hart that triggered a [`FastStop::Pc`] stop.
    pub stop_hart: Option<HartId>,
}

/// The functional-mode engine: architectural state for every hart, flat
/// memory banks, and per-core fork-allocation queues.
#[derive(Debug)]
pub struct FastEngine {
    cfg: LbpConfig,
    /// Raw text words (kept for re-predecoding after sabotage and for
    /// decode-error reporting).
    text: Vec<u32>,
    /// The predecoded program, indexed by `pc / 4`.
    uops: Vec<UOp>,
    /// Per-core local banks.
    local: Vec<Vec<u8>>,
    /// Per-core shared-bank slices.
    shared: Vec<Vec<u8>>,
    harts: Vec<FHart>,
    /// Pending fork requests per core, in arrival order.
    alloc_q: Vec<VecDeque<HartId>>,
    /// Per-core allocatable harts in hand-out order (local indices):
    /// never-allocated harts ascending, then recycled harts in
    /// `p_ret`-order. Mirrors the cycle-exact `Core::free_q` exactly —
    /// the ending-signal chain serializes frees, so this order (unlike a
    /// "lowest free" scan) is timing-independent and both engines hand
    /// the same hart to the same fork.
    free_q: Vec<VecDeque<u32>>,
    /// Per-hart retired-instruction counts.
    retired_per_hart: Vec<u64>,
    total_retired: u64,
    forks: u64,
    joins: u64,
    muldiv_ops: u64,
    local_accesses: u64,
    remote_accesses: u64,
    at_exit: bool,
    /// The scheduler's runnable-set cache is stale (a hart changed state,
    /// blocked, or was started/joined/freed since the last rebuild).
    sched_dirty: bool,
    /// Per-hart committed-pc streams, recorded when enabled (hybrid
    /// divergence bisection).
    commit_log: Option<Vec<Vec<u32>>>,
}

impl FastEngine {
    /// Builds the engine and loads the image: text predecoded into the
    /// dispatch form, data distributed over the shared banks, hart 0
    /// booted at the entry point with the boot ending-signal set.
    ///
    /// # Errors
    ///
    /// Fails if the initialized data exceeds the configured shared space.
    pub fn new(cfg: LbpConfig, image: &Image) -> Result<FastEngine, SimError> {
        let cores = cfg.cores;
        let mut shared: Vec<Vec<u8>> = (0..cores)
            .map(|_| vec![0; cfg.shared_bank_bytes as usize])
            .collect();
        for (i, &byte) in image.data.iter().enumerate() {
            let addr = SHARED_BASE + i as u32;
            let bank = ((addr - SHARED_BASE) / cfg.shared_bank_bytes) as usize;
            if bank >= cores {
                return Err(SimError::Mem(MemFault::Unmapped {
                    addr,
                    hart: HartId::FIRST,
                }));
            }
            shared[bank][((addr - SHARED_BASE) % cfg.shared_bank_bytes) as usize] = byte;
        }
        let mut harts: Vec<FHart> = (0..cfg.harts())
            .map(|_| FHart::fresh(cfg.result_slots))
            .collect();
        let boot_sp = cv_base(&cfg, HartId::FIRST);
        harts[0].state = HartState::Running;
        harts[0].pc = image.entry;
        harts[0].regs[2] = boot_sp; // sp
        harts[0].end_signal = true; // nothing precedes the boot hart
        Ok(FastEngine {
            text: image.text.clone(),
            uops: predecode(&image.text),
            local: (0..cores)
                .map(|_| vec![0; cfg.local_bank_bytes as usize])
                .collect(),
            shared,
            harts,
            alloc_q: (0..cores).map(|_| VecDeque::new()).collect(),
            free_q: (0..cores)
                .map(|c| {
                    // The boot hart starts running, not free.
                    let first = if c == 0 { 1 } else { 0 };
                    (first..HARTS_PER_CORE as u32).collect()
                })
                .collect(),
            retired_per_hart: vec![0; cfg.harts()],
            total_retired: 0,
            forks: 0,
            joins: 0,
            muldiv_ops: 0,
            local_accesses: 0,
            remote_accesses: 0,
            at_exit: false,
            sched_dirty: true,
            commit_log: None,
            cfg,
        })
    }

    /// Turns on per-hart committed-pc recording (the functional side of
    /// hybrid divergence bisection). Costs one `Vec` push per retired
    /// instruction; leave off for plain fast-forwarding.
    pub fn enable_commit_log(&mut self) {
        if self.commit_log.is_none() {
            self.commit_log = Some(vec![Vec::new(); self.harts.len()]);
        }
    }

    /// The committed-pc stream of every hart (empty unless
    /// [`FastEngine::enable_commit_log`] was called first).
    pub fn commit_log(&self) -> &[Vec<u32>] {
        self.commit_log.as_deref().unwrap_or(&[])
    }

    /// XORs the code word at `pc` with `xor` and re-predecodes it —
    /// deliberate sabotage of the *functional copy only*, used to prove
    /// that hybrid divergence bisection localizes a functional bug to the
    /// exact instruction.
    pub fn sabotage_code(&mut self, pc: u32, xor: u32) {
        let idx = (pc / INSTR_BYTES) as usize;
        if let Some(word) = self.text.get_mut(idx) {
            *word ^= xor;
            self.uops[idx] = UOp::from_word(*word);
        }
    }

    /// Total instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.total_retired
    }

    /// Whether the run is parked at the exit `p_ret`.
    pub fn at_exit(&self) -> bool {
        self.at_exit
    }

    /// Per-hart retired-instruction counts.
    pub fn retired_per_hart(&self) -> &[u64] {
        &self.retired_per_hart
    }

    /// The engine's virtual cycle: the maximum per-core retired count
    /// (a machine retiring at most one instruction per core per cycle
    /// needs at least this many cycles).
    pub fn virtual_cycle(&self) -> u64 {
        (0..self.cfg.cores)
            .map(|c| self.retired_by_core(c))
            .max()
            .unwrap_or(0)
    }

    /// An architectural register of a hart (test/inspection helper).
    pub fn reg(&self, hart: HartId, reg: lbp_isa::Reg) -> u32 {
        self.harts[hart.global() as usize].regs[reg.index()]
    }

    /// Writes a word of shared memory (input loading before a run,
    /// mirroring [`crate::Machine::poke_shared`]).
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    pub fn poke_shared(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::Mem(MemFault::Unaligned {
                addr,
                size: 4,
                hart: HartId::FIRST,
            }));
        }
        let (bank, off) = self.shared_slot(addr, HartId::FIRST)?;
        self.shared[bank][off..off + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a word of shared memory (result extraction).
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    pub fn peek_shared(&self, addr: u32) -> Result<u32, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::Mem(MemFault::Unaligned {
                addr,
                size: 4,
                hart: HartId::FIRST,
            }));
        }
        let (bank, off) = self.shared_slot(addr, HartId::FIRST)?;
        let bytes = &self.shared[bank][off..off + 4];
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn retired_by_core(&self, core: usize) -> u64 {
        self.retired_per_hart
            .iter()
            .skip(core * HARTS_PER_CORE)
            .take(HARTS_PER_CORE)
            .sum()
    }

    fn id(&self, hi: usize) -> HartId {
        HartId::new(hi as u32)
    }

    fn get(&self, hi: usize, r: u8) -> u32 {
        self.harts[hi].regs[r as usize]
    }

    fn set(&mut self, hi: usize, rd: u8, value: u32) {
        if rd != 0 {
            self.harts[hi].regs[rd as usize] = value;
        }
    }

    fn retire(&mut self, hi: usize, pc: u32) {
        self.retired_per_hart[hi] += 1;
        self.total_retired += 1;
        if let Some(log) = self.commit_log.as_mut() {
            log[hi].push(pc);
        }
    }

    /// No fork request pending anywhere: a legal rendezvous-boundary
    /// handoff point.
    fn rendezvous_quiet(&self) -> bool {
        self.alloc_q.iter().all(VecDeque::is_empty)
            && self
                .harts
                .iter()
                .all(|h| !matches!(h.wait, FWait::Fork { .. }))
    }

    fn runnable(&self, hi: usize) -> bool {
        let h = &self.harts[hi];
        h.state == HartState::Running && h.wait == FWait::Ready
    }

    /// Satisfies queued fork requests at `core` while free harts exist,
    /// mirroring `process_alloc`: head of the free queue, arrival
    /// order, requester's `rd` receives the child's global identity.
    fn try_alloc(&mut self, core: usize) {
        loop {
            if self.alloc_q[core].is_empty() {
                return;
            }
            let base = core * HARTS_PER_CORE;
            let Some(child_local) = self.free_q[core].front().map(|&l| l as usize) else {
                return; // all four harts busy: the fork stalls
            };
            debug_assert_eq!(
                self.harts[base + child_local].state,
                HartState::Free,
                "free-queue head must be a free hart"
            );
            self.free_q[core].pop_front();
            let requester = self.alloc_q[core].pop_front().expect("checked non-empty");
            let child = base + child_local;
            let sp = cv_base(&self.cfg, HartId::new(child as u32));
            let h = &mut self.harts[child];
            h.regs = [0; 32];
            h.regs[2] = sp;
            for q in &mut h.recv {
                q.clear();
            }
            h.end_signal = false;
            h.team_succ = None;
            h.state = HartState::Reserved;
            h.wait = FWait::Ready;
            self.forks += 1;
            self.sched_dirty = true;
            // Complete the requester's blocked p_fc/p_fn.
            let req = requester.global() as usize;
            let FWait::Fork { rd } = self.harts[req].wait else {
                unreachable!("queued fork requester is not fork-blocked");
            };
            let pc = self.harts[req].pc;
            self.set(req, rd, child as u32);
            self.harts[req].wait = FWait::Ready;
            self.harts[req].pc = pc.wrapping_add(4);
            self.retire(req, pc);
        }
    }

    /// Ends a hart (`p_ret` types 1 and 4) and lets its core's allocator
    /// satisfy a queued fork with the freed slot.
    fn end_hart(&mut self, hi: usize) {
        self.harts[hi].state = HartState::Free;
        self.harts[hi].pc = 0;
        self.sched_dirty = true;
        let core = hi / HARTS_PER_CORE;
        self.free_q[core].push_back((hi % HARTS_PER_CORE) as u32);
        self.try_alloc(core);
    }

    fn forward_end_signal(&mut self, hi: usize) {
        if let Some(next) = self.harts[hi].team_succ {
            if (next.core() as usize) < self.cfg.cores {
                // EndSignal delivery sets the flag regardless of state.
                let h = &mut self.harts[next.global() as usize];
                h.end_signal = true;
                if h.wait == FWait::EndSignal {
                    h.wait = FWait::Ready;
                    self.sched_dirty = true;
                }
            }
        }
    }

    fn deliver_start(&mut self, to: HartId, pc: u32) -> Result<(), SimError> {
        let h = &mut self.harts[to.global() as usize];
        if h.state != HartState::Reserved {
            return Err(SimError::Protocol {
                hart: to,
                what: format!(
                    "start pc {pc:#x} delivered to a hart in state {:?}",
                    h.state
                ),
            });
        }
        h.state = HartState::Running;
        h.pc = pc;
        self.sched_dirty = true;
        Ok(())
    }

    fn deliver_join(&mut self, to: HartId, pc: u32) -> Result<(), SimError> {
        let h = &mut self.harts[to.global() as usize];
        if h.state != HartState::WaitingJoin {
            return Err(SimError::Protocol {
                hart: to,
                what: format!(
                    "join address {pc:#x} delivered to a hart in state {:?}",
                    h.state
                ),
            });
        }
        h.state = HartState::Running;
        h.pc = pc;
        h.end_signal = true; // everything sequentially prior committed
        self.joins += 1;
        self.sched_dirty = true;
        Ok(())
    }

    fn validate_start_target(&self, from: HartId, to: HartId) -> Result<(), SimError> {
        let c = from.core();
        if (to.core() != c && to.core() != c + 1) || to.core() as usize >= self.cfg.cores {
            return Err(SimError::Protocol {
                hart: from,
                what: format!("start pc sent to hart {to}, which is neither local nor next-core"),
            });
        }
        Ok(())
    }

    fn shared_slot(&self, addr: u32, hart: HartId) -> Result<(usize, usize), SimError> {
        let bank = ((addr - SHARED_BASE) / self.cfg.shared_bank_bytes) as usize;
        if bank >= self.cfg.cores {
            return Err(SimError::Mem(MemFault::Unmapped { addr, hart }));
        }
        Ok((
            bank,
            ((addr - SHARED_BASE) % self.cfg.shared_bank_bytes) as usize,
        ))
    }

    /// Loads `size` bytes for `hi`, counting the access like the
    /// cycle-exact router would (local vs remote).
    fn mem_load(&mut self, hi: usize, addr: u32, size: u8, signed: bool) -> Result<u32, SimError> {
        let hart = self.id(hi);
        let core = hi / HARTS_PER_CORE;
        if !addr.is_multiple_of(size as u32) {
            return Err(SimError::Mem(MemFault::Unaligned { addr, size, hart }));
        }
        let bytes: &[u8] = match Region::of(addr) {
            Region::Local => {
                self.local_accesses += 1;
                let off = (addr - LOCAL_BASE) as usize;
                self.local[core]
                    .get(off..off + size as usize)
                    .ok_or(SimError::Mem(MemFault::Unmapped { addr, hart }))?
            }
            Region::Shared => {
                let (bank, off) = self.shared_slot(addr, hart)?;
                if bank == core {
                    self.local_accesses += 1;
                } else {
                    self.remote_accesses += 1;
                }
                self.shared[bank]
                    .get(off..off + size as usize)
                    .ok_or(SimError::Mem(MemFault::Unmapped { addr, hart }))?
            }
            Region::Io => {
                return Err(SimError::Protocol {
                    hart,
                    what: format!(
                        "functional mode cannot access I/O devices \
                         (load at {addr:#010x}); run the region cycle-exact"
                    ),
                })
            }
            Region::Code => {
                return Err(SimError::Protocol {
                    hart,
                    what: format!("data access to the code region at {addr:#010x}"),
                })
            }
        };
        let mut raw = 0u32;
        for (i, b) in bytes.iter().enumerate() {
            raw |= (*b as u32) << (8 * i);
        }
        Ok(match (size, signed) {
            (1, true) => raw as u8 as i8 as i32 as u32,
            (2, true) => raw as u16 as i16 as i32 as u32,
            _ => raw,
        })
    }

    /// Stores the low `size` bytes of `value`, counting the access.
    fn mem_store(&mut self, hi: usize, addr: u32, value: u32, size: u8) -> Result<(), SimError> {
        let hart = self.id(hi);
        let core = hi / HARTS_PER_CORE;
        if !addr.is_multiple_of(size as u32) {
            return Err(SimError::Mem(MemFault::Unaligned { addr, size, hart }));
        }
        let bytes: &mut [u8] = match Region::of(addr) {
            Region::Local => {
                self.local_accesses += 1;
                let off = (addr - LOCAL_BASE) as usize;
                self.local[core]
                    .get_mut(off..off + size as usize)
                    .ok_or(SimError::Mem(MemFault::Unmapped { addr, hart }))?
            }
            Region::Shared => {
                let (bank, off) = self.shared_slot(addr, hart)?;
                if bank == core {
                    self.local_accesses += 1;
                } else {
                    self.remote_accesses += 1;
                }
                self.shared[bank]
                    .get_mut(off..off + size as usize)
                    .ok_or(SimError::Mem(MemFault::Unmapped { addr, hart }))?
            }
            Region::Io => {
                return Err(SimError::Protocol {
                    hart,
                    what: format!(
                        "functional mode cannot access I/O devices \
                         (store at {addr:#010x}); run the region cycle-exact"
                    ),
                })
            }
            Region::Code => {
                return Err(SimError::Protocol {
                    hart,
                    what: format!("data access to the code region at {addr:#010x}"),
                })
            }
        };
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Writes a word into a hart's continuation-value frame (the `p_swcv`
    /// target path; never counted, like the cycle-exact `CvWrite`).
    fn cv_store(&mut self, to: HartId, offset: u32, value: u32) -> Result<(), SimError> {
        let addr = cv_base(&self.cfg, to).wrapping_add(offset);
        if !addr.is_multiple_of(4) {
            return Err(SimError::Mem(MemFault::Unaligned {
                addr,
                size: 4,
                hart: to,
            }));
        }
        let off = (addr - LOCAL_BASE) as usize;
        let bytes = self.local[to.core() as usize]
            .get_mut(off..off + 4)
            .ok_or(SimError::Mem(MemFault::Unmapped { addr, hart: to }))?;
        bytes.copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Executes one instruction of hart `hi` (which must be runnable).
    /// Returns whether the hart made progress; `Ok(false)` means it
    /// blocked with zero side effects (or parked at the exit `p_ret`).
    fn step(&mut self, hi: usize) -> Result<bool, SimError> {
        let id = self.id(hi);
        let core = hi / HARTS_PER_CORE;
        let pc = self.harts[hi].pc;
        if !pc.is_multiple_of(4) {
            return Err(SimError::Mem(MemFault::Unaligned {
                addr: pc,
                size: 4,
                hart: id,
            }));
        }
        let Some(u) = self.uops.get((pc / 4) as usize).copied() else {
            return Err(SimError::Mem(MemFault::Unmapped { addr: pc, hart: id }));
        };
        let a = self.get(hi, u.rs1);
        let b = self.get(hi, u.rs2);
        let imm = u.imm;
        let mut next = pc.wrapping_add(4);
        match u.kind {
            UKind::Lui => self.set(hi, u.rd, imm as u32),
            UKind::Auipc => self.set(hi, u.rd, pc.wrapping_add(imm as u32)),
            UKind::Jal => {
                self.set(hi, u.rd, pc.wrapping_add(4));
                next = pc.wrapping_add(imm as u32);
            }
            UKind::Jalr => {
                next = a.wrapping_add(imm as u32) & !1;
                self.set(hi, u.rd, pc.wrapping_add(4));
            }
            UKind::Beq => {
                if a == b {
                    next = pc.wrapping_add(imm as u32);
                }
            }
            UKind::Bne => {
                if a != b {
                    next = pc.wrapping_add(imm as u32);
                }
            }
            UKind::Blt => {
                if (a as i32) < (b as i32) {
                    next = pc.wrapping_add(imm as u32);
                }
            }
            UKind::Bge => {
                if (a as i32) >= (b as i32) {
                    next = pc.wrapping_add(imm as u32);
                }
            }
            UKind::Bltu => {
                if a < b {
                    next = pc.wrapping_add(imm as u32);
                }
            }
            UKind::Bgeu => {
                if a >= b {
                    next = pc.wrapping_add(imm as u32);
                }
            }
            UKind::Lb | UKind::Lh | UKind::Lw | UKind::Lbu | UKind::Lhu => {
                let (size, signed) = match u.kind {
                    UKind::Lb => (1, true),
                    UKind::Lh => (2, true),
                    UKind::Lw => (4, false),
                    UKind::Lbu => (1, false),
                    _ => (2, false),
                };
                let v = self.mem_load(hi, a.wrapping_add(imm as u32), size, signed)?;
                self.set(hi, u.rd, v);
            }
            UKind::Sb | UKind::Sh | UKind::Sw => {
                let size = match u.kind {
                    UKind::Sb => 1,
                    UKind::Sh => 2,
                    _ => 4,
                };
                self.mem_store(hi, a.wrapping_add(imm as u32), b, size)?;
            }
            UKind::Addi => self.set(hi, u.rd, a.wrapping_add(imm as u32)),
            UKind::Slti => self.set(hi, u.rd, ((a as i32) < imm) as u32),
            UKind::Sltiu => self.set(hi, u.rd, (a < imm as u32) as u32),
            UKind::Xori => self.set(hi, u.rd, a ^ imm as u32),
            UKind::Ori => self.set(hi, u.rd, a | imm as u32),
            UKind::Andi => self.set(hi, u.rd, a & imm as u32),
            UKind::Slli => self.set(hi, u.rd, a.wrapping_shl(imm as u32 & 31)),
            UKind::Srli => self.set(hi, u.rd, a.wrapping_shr(imm as u32 & 31)),
            UKind::Srai => self.set(hi, u.rd, ((a as i32).wrapping_shr(imm as u32 & 31)) as u32),
            UKind::Add => self.set(hi, u.rd, a.wrapping_add(b)),
            UKind::Sub => self.set(hi, u.rd, a.wrapping_sub(b)),
            UKind::Sll => self.set(hi, u.rd, a.wrapping_shl(b & 31)),
            UKind::Slt => self.set(hi, u.rd, ((a as i32) < (b as i32)) as u32),
            UKind::Sltu => self.set(hi, u.rd, (a < b) as u32),
            UKind::Xor => self.set(hi, u.rd, a ^ b),
            UKind::Srl => self.set(hi, u.rd, a.wrapping_shr(b & 31)),
            UKind::Sra => self.set(hi, u.rd, ((a as i32).wrapping_shr(b & 31)) as u32),
            UKind::Or => self.set(hi, u.rd, a | b),
            UKind::And => self.set(hi, u.rd, a & b),
            UKind::Mul => {
                self.muldiv_ops += 1;
                self.set(hi, u.rd, a.wrapping_mul(b));
            }
            UKind::Mulh => {
                self.muldiv_ops += 1;
                self.set(
                    hi,
                    u.rd,
                    ((((a as i32) as i64) * ((b as i32) as i64)) >> 32) as u32,
                );
            }
            UKind::Mulhsu => {
                self.muldiv_ops += 1;
                self.set(hi, u.rd, ((((a as i32) as i64) * (b as i64)) >> 32) as u32);
            }
            UKind::Mulhu => {
                self.muldiv_ops += 1;
                self.set(hi, u.rd, (((a as u64) * (b as u64)) >> 32) as u32);
            }
            UKind::Div => {
                self.muldiv_ops += 1;
                let v = if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                };
                self.set(hi, u.rd, v);
            }
            UKind::Divu => {
                self.muldiv_ops += 1;
                self.set(hi, u.rd, a.checked_div(b).unwrap_or(u32::MAX));
            }
            UKind::Rem => {
                self.muldiv_ops += 1;
                let v = if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                };
                self.set(hi, u.rd, v);
            }
            UKind::Remu => {
                self.muldiv_ops += 1;
                self.set(hi, u.rd, if b == 0 { a } else { a % b });
            }
            UKind::PSyncm => {} // functional memory is always drained
            UKind::PSet => self.set(hi, u.rd, IdentityWord::from_bits(a).set(id).bits()),
            UKind::PMerge => self.set(
                hi,
                u.rd,
                IdentityWord::from_bits(a)
                    .merge(IdentityWord::from_bits(b))
                    .bits(),
            ),
            UKind::PLwcv => {
                let addr = cv_base(&self.cfg, id).wrapping_add(imm as u32);
                let v = self.mem_load(hi, addr, 4, false)?;
                self.set(hi, u.rd, v);
            }
            UKind::PSwcv => {
                let target = HartId::new(a & 0xffff);
                if target.core() as usize == core {
                    let addr = cv_base(&self.cfg, target).wrapping_add(imm as u32);
                    self.mem_store(hi, addr, b, 4)?;
                } else if target.core() as usize == core + 1
                    && (target.core() as usize) < self.cfg.cores
                {
                    // Forward-link CvWrite: delivered immediately, never
                    // counted as a bank access of the sender.
                    self.cv_store(target, imm as u32, b)?;
                } else {
                    return Err(SimError::Protocol {
                        hart: id,
                        what: format!(
                            "p_swcv to hart {target}, which is neither on this core nor the next"
                        ),
                    });
                }
            }
            UKind::PLwre => {
                let slot = imm as usize;
                match self.harts[hi].recv.get_mut(slot) {
                    Some(q) if !q.is_empty() => {
                        let v = q.pop_front().expect("checked non-empty");
                        self.set(hi, u.rd, v);
                    }
                    // Empty or out-of-range slot: issue-gated, blocks with
                    // no side effects (out-of-range blocks forever, like
                    // the cycle-exact machine).
                    _ => {
                        self.harts[hi].wait = FWait::Result { slot };
                        self.sched_dirty = true;
                        return Ok(false);
                    }
                }
            }
            UKind::PSwre => {
                let target = IdentityWord::from_bits(a).join_hart();
                if target.core() > core as u32 {
                    return Err(SimError::Protocol {
                        hart: id,
                        what: format!(
                            "p_swre to hart {target}, which follows this core: the backward \
                             line cannot send data forward in the sequential order"
                        ),
                    });
                }
                let slot = imm as u32;
                let tg = target.global() as usize;
                let q = self.harts[tg].recv.get_mut(slot as usize).ok_or_else(|| {
                    SimError::Protocol {
                        hart: target,
                        what: format!("p_swre to out-of-range result slot {slot}"),
                    }
                })?;
                q.push_back(b);
                if self.harts[tg].wait
                    == (FWait::Result {
                        slot: slot as usize,
                    })
                {
                    self.harts[tg].wait = FWait::Ready;
                    self.sched_dirty = true;
                }
            }
            UKind::PFc => {
                self.alloc_q[core].push_back(id);
                self.harts[hi].wait = FWait::Fork { rd: u.rd };
                self.try_alloc(core);
                return Ok(true); // progress: the request is queued
            }
            UKind::PFn => {
                if core + 1 >= self.cfg.cores {
                    return Err(SimError::Protocol {
                        hart: id,
                        what: "p_fn on the last core: the core line does not wrap".to_owned(),
                    });
                }
                self.alloc_q[core + 1].push_back(id);
                self.harts[hi].wait = FWait::Fork { rd: u.rd };
                self.try_alloc(core + 1);
                return Ok(true);
            }
            UKind::PJal => {
                let target = HartId::new(a & 0xffff);
                self.validate_start_target(id, target)?;
                self.deliver_start(target, pc.wrapping_add(4))?;
                self.harts[hi].team_succ = Some(target);
                self.set(hi, u.rd, 0);
                next = pc.wrapping_add(imm as u32);
            }
            UKind::PCall => {
                let target = IdentityWord::from_bits(a).allocated_hart();
                self.validate_start_target(id, target)?;
                self.deliver_start(target, pc.wrapping_add(4))?;
                self.harts[hi].team_succ = Some(target);
                self.set(hi, u.rd, 0);
                next = b & !1;
            }
            UKind::PRet => {
                // Commit gate: the team predecessor's ending signal.
                if !self.harts[hi].end_signal {
                    self.harts[hi].wait = FWait::EndSignal;
                    self.sched_dirty = true;
                    return Ok(false);
                }
                let word = IdentityWord::from_bits(b);
                if a == 0 && word.is_exit_sentinel() {
                    // The exit boundary: park *before* the exit p_ret so
                    // the cycle-exact engine retires it.
                    self.at_exit = true;
                    self.harts[hi].wait = FWait::AtExit;
                    self.sched_dirty = true;
                    return Ok(false);
                }
                self.harts[hi].end_signal = false; // consumed
                self.retire(hi, pc);
                if a == 0 {
                    if word.joins_to(id) {
                        // Type 2: wait for a join address.
                        self.harts[hi].state = HartState::WaitingJoin;
                        self.forward_end_signal(hi);
                    } else {
                        // Type 1: the hart ends.
                        self.forward_end_signal(hi);
                        self.end_hart(hi);
                    }
                } else {
                    // Type 4: send the continuation backward, then end
                    // (or wait, on a self-join). No end-signal forward.
                    let target = word.join_hart();
                    if target.core() > core as u32 {
                        return Err(SimError::Protocol {
                            hart: id,
                            what: format!("join address sent forward to hart {target}"),
                        });
                    }
                    if target == id {
                        self.harts[hi].state = HartState::WaitingJoin;
                        self.deliver_join(target, a)?;
                    } else {
                        self.end_hart(hi);
                        self.deliver_join(target, a)?;
                    }
                }
                return Ok(true);
            }
            UKind::Invalid => {
                return Err(SimError::Decode {
                    pc,
                    word: u.imm as u32,
                    hart: id,
                });
            }
        }
        self.harts[hi].pc = next;
        self.retire(hi, pc);
        Ok(true)
    }

    /// Describes every blocked hart (functional deadlock diagnostics).
    fn blocked_report(&self) -> Vec<BlockedHart> {
        let mut blocked = Vec::new();
        for hi in 0..self.harts.len() {
            let h = &self.harts[hi];
            let reason = match (h.state, h.wait) {
                (HartState::Free, _) => continue,
                (_, FWait::Fork { .. }) => {
                    format!("a free hart on core {} (fork pending)", {
                        // The request sits in whichever queue holds it.
                        self.alloc_q
                            .iter()
                            .position(|q| q.contains(&self.id(hi)))
                            .unwrap_or(hi / HARTS_PER_CORE)
                    })
                }
                (HartState::Reserved, _) => "its start pc (p_jal/p_jalr)".to_owned(),
                (HartState::WaitingJoin, _) => "a join address (p_ret)".to_owned(),
                (_, FWait::EndSignal) => "the ending-hart signal (p_ret)".to_owned(),
                (_, FWait::Result { slot }) => {
                    format!("data in result slot {slot} (p_lwre)")
                }
                (_, FWait::AtExit) => continue, // parked at the exit, not stuck
                (HartState::Running, FWait::Ready) => {
                    "an event that can no longer happen".to_owned()
                }
            };
            blocked.push(BlockedHart {
                hart: self.id(hi),
                waiting_on: reason,
            });
        }
        blocked
    }

    /// Runs the engine until `stop` is met (then drains pending fork
    /// allocations to the next rendezvous-quiet point), the exit `p_ret`
    /// is reached, or `max_steps` instructions have executed.
    ///
    /// The schedule is deterministic: one instruction per runnable hart
    /// per round, in hart order. The interleaving approximates the
    /// cycle-exact machine's concurrency, which matters for hart
    /// *allocation* fidelity — a run-to-block schedule would let early
    /// team members end (freeing their harts) before later forks arrive,
    /// so `p_fc` would reuse harts the concurrent machine never frees in
    /// time. The runnable set is cached and rebuilt only when a hart
    /// parks, wakes, or changes state, so serial phases stay fast.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when no hart can make progress,
    /// [`SimError::Timeout`] when the step budget runs out, or any fatal
    /// fault the program raises (same classes as the cycle-exact engine).
    pub fn run(&mut self, stop: FastStop, max_steps: u64) -> Result<FastSummary, SimError> {
        let mut steps = 0u64;
        let mut clamped = 0u64;
        let mut stopping = self.stop_met(stop);
        let mut stop_hart: Option<HartId> = None;
        let mut include_stopped = false;
        let mut runnable: Vec<usize> = Vec::new();
        self.sched_dirty = true;
        'outer: loop {
            if self.at_exit || (stopping && self.rendezvous_quiet()) {
                break;
            }
            if self.sched_dirty {
                runnable = (0..self.harts.len())
                    .filter(|&h| self.runnable(h))
                    .collect();
                self.sched_dirty = false;
            }
            let mut progress = false;
            for &hi in &runnable {
                if !self.runnable(hi) {
                    continue; // parked or freed since the set was built
                }
                if stopping {
                    if self.rendezvous_quiet() {
                        break 'outer;
                    }
                    if !include_stopped && stop_hart == Some(self.id(hi)) {
                        continue; // keep the ROI hart parked while draining
                    }
                } else if let FastStop::Pc(p) = stop {
                    if self.harts[hi].pc == p {
                        stopping = true;
                        stop_hart = Some(self.id(hi));
                        continue;
                    }
                }
                let before = self.total_retired;
                let stepped = self.step(hi)?;
                if self.at_exit {
                    break 'outer;
                }
                if !stepped {
                    continue; // parked with a wait reason; pruned on rebuild
                }
                progress = true;
                steps += 1;
                if steps > max_steps {
                    return Err(SimError::Timeout { cycles: max_steps });
                }
                if stopping {
                    clamped += self.total_retired - before;
                } else if self.stop_met(stop) {
                    stopping = true;
                }
            }
            if self.at_exit || (stopping && self.rendezvous_quiet()) {
                break;
            }
            if !progress {
                if self.sched_dirty {
                    continue; // a hart parked or woke mid-round: rebuild and retry
                }
                if stopping {
                    if !include_stopped && stop_hart.is_some() {
                        include_stopped = true; // the ROI hart is the only way forward
                        continue;
                    }
                    break; // cannot drain: hand off anyway (not clean)
                }
                return Err(SimError::Deadlock {
                    cycle: self.virtual_cycle(),
                    blocked: self.blocked_report(),
                });
            }
        }
        Ok(FastSummary {
            retired: self.total_retired,
            virtual_cycle: self.virtual_cycle(),
            at_exit: self.at_exit,
            clamped,
            rendezvous_clean: self.rendezvous_quiet(),
            stop_hart,
        })
    }

    fn stop_met(&self, stop: FastStop) -> bool {
        match stop {
            FastStop::Retired(n) => self.total_retired >= n,
            FastStop::Pc(_) | FastStop::Exit => false,
        }
    }

    /// Builds a cycle-exact [`Machine`](crate::Machine) from the current
    /// architectural state — the hybrid handoff. Every pipeline is empty,
    /// no message is in flight, and the machine's clock is set to the
    /// engine's virtual cycle with the per-core cycle-accounting invariant
    /// (`retired + stalls == cycles`) preserved by padding the synthetic
    /// stall budget into the `idle` bucket.
    ///
    /// At zero retired instructions the materialized machine is
    /// bit-identical (snapshot bytes) to `Machine::new(cfg, image)`.
    ///
    /// # Errors
    ///
    /// Refuses fault plans the hybrid timeline cannot honor: message
    /// (drop/delay) faults, and cycle-triggered faults whose trigger falls
    /// inside the fast-forwarded warm phase (trigger ≤ virtual cycle).
    pub fn materialize(&self, image: &Image) -> Result<crate::Machine, SimError> {
        crate::machine::materialize_from_fast(self, image)
    }

    // ---- accessors used by the materialization glue in machine.rs ----

    pub(crate) fn cfg(&self) -> &LbpConfig {
        &self.cfg
    }

    pub(crate) fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.forks,
            self.joins,
            self.muldiv_ops,
            self.local_accesses,
            self.remote_accesses,
        )
    }

    pub(crate) fn free_queues(&self) -> &[VecDeque<u32>] {
        &self.free_q
    }

    pub(crate) fn bank_contents(&self) -> (&[Vec<u8>], &[Vec<u8>]) {
        (&self.local, &self.shared)
    }

    pub(crate) fn hart_view(&self, hi: usize) -> FastHartView<'_> {
        let h = &self.harts[hi];
        FastHartView {
            state: h.state,
            pc: if h.state == HartState::Running {
                Some(h.pc)
            } else {
                None
            },
            regs: &h.regs,
            recv: &h.recv,
            end_signal: h.end_signal,
            team_succ: h.team_succ,
        }
    }
}

/// A read-only architectural view of one functional hart, consumed by the
/// materialization glue.
pub(crate) struct FastHartView<'a> {
    pub state: HartState,
    pub pc: Option<u32>,
    pub regs: &'a [u32; 32],
    pub recv: &'a [VecDeque<u32>],
    pub end_signal: bool,
    pub team_succ: Option<HartId>,
}

/// The fixed continuation-value frame base of a hart (mirrors
/// `MemSys::cv_base` without needing the bank structures).
fn cv_base(cfg: &LbpConfig, hart: HartId) -> u32 {
    let stack = cfg.local_bank_bytes / HARTS_PER_CORE as u32;
    LOCAL_BASE + (hart.local() + 1) * stack - CV_FRAME_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_asm::assemble;
    use lbp_isa::Reg;

    fn engine(src: &str, cores: usize) -> FastEngine {
        let image = assemble(src).unwrap();
        FastEngine::new(LbpConfig::cores(cores), &image).unwrap()
    }

    #[test]
    fn runs_arithmetic_to_the_exit_boundary() {
        let mut e = engine(
            "main:
                li   a0, 6
                li   a1, 7
                mul  a2, a0, a1
                li   t0, -1
                li   a0, 0
                p_ret a0, t0",
            1,
        );
        let s = e.run(FastStop::Exit, 1_000).unwrap();
        assert!(s.at_exit);
        assert!(s.rendezvous_clean);
        // The exit p_ret itself is NOT executed functionally.
        assert_eq!(s.retired, 5);
        assert_eq!(e.reg(HartId::FIRST, Reg::A2), 42);
        assert_eq!(e.muldiv_ops, 1);
    }

    #[test]
    fn memory_and_counters() {
        let mut e = engine(
            "main:
                la   a0, cell
                li   a1, 1234
                sw   a1, 0(a0)
                lw   a2, 0(a0)
                li   t0, -1
                li   ra, 0
                p_ret
            .data
            cell: .word 0",
            2,
        );
        e.run(FastStop::Exit, 1_000).unwrap();
        assert_eq!(e.reg(HartId::FIRST, Reg::A2), 1234);
        assert_eq!(e.peek_shared(SHARED_BASE).unwrap(), 1234);
        // cell sits in bank 0, the executing core's own slice.
        assert_eq!(e.local_accesses, 2);
        assert_eq!(e.remote_accesses, 0);
    }

    #[test]
    fn fork_team_runs_functionally() {
        // The crate-level doc example: a two-hart Fig. 8 team.
        let mut e = engine(
            "main:
                li    t0, -1
                addi  sp, sp, -8
                sw    ra, 0(sp)
                sw    t0, 4(sp)
                p_set t0
                la    ra, rp
                p_fc   t6
                p_swcv ra, t6, 0
                p_swcv t0, t6, 4
                p_merge t0, t0, t6
                p_syncm
                la    a0, child
                p_jalr ra, t0, a0
                p_lwcv ra, 0
                p_lwcv t0, 4
                p_set t0
                la    a0, child
                jalr  a0
                lw    ra, 0(sp)
                lw    t0, 4(sp)
                addi  sp, sp, 8
                p_ret
            rp:
                lw    ra, 0(sp)
                lw    t0, 4(sp)
                addi  sp, sp, 8
                p_ret
            child:
                p_ret
            ",
            1,
        );
        let s = e.run(FastStop::Exit, 10_000).unwrap();
        assert!(s.at_exit);
        assert_eq!(e.forks, 1);
        // Two join deliveries: the child's self-join after its inline
        // call, then the backward join that resumes the parent.
        assert_eq!(e.joins, 2);
    }

    #[test]
    fn retired_stop_clamps_to_rendezvous_quiet() {
        let mut e = engine(
            "main:
                li   t0, -1
                p_fc t6          # retires as instruction 2
                li   a0, 5
                li   ra, 0
                p_ret",
            1,
        );
        // Ask to stop mid-way; the fork either completed (quiet) already
        // or the drain pushes past it.
        let s = e.run(FastStop::Retired(2), 1_000).unwrap();
        assert!(s.rendezvous_clean);
        assert!(s.retired >= 2);
    }

    #[test]
    fn functional_deadlock_is_reported() {
        let mut e = engine(
            "main:
                p_lwre a0, 3     # nobody ever sends a result
                li   t0, -1
                li   ra, 0
                p_ret",
            1,
        );
        let err = e.run(FastStop::Exit, 1_000).unwrap_err();
        match err {
            SimError::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].waiting_on.contains("result slot"));
            }
            other => panic!("expected deadlock, got {other}"),
        }
        assert!(!e.at_exit());
    }

    #[test]
    fn pc_stop_parks_before_the_marker() {
        let mut e = engine(
            "main:
                li   a0, 1
                li   a1, 2
            roi:
                add  a2, a0, a1
                li   t0, -1
                li   ra, 0
                p_ret",
            1,
        );
        let image = assemble(
            "main:
                li   a0, 1
                li   a1, 2
            roi:
                add  a2, a0, a1
                li   t0, -1
                li   ra, 0
                p_ret",
        )
        .unwrap();
        let roi = image.symbol("roi").unwrap();
        let s = e.run(FastStop::Pc(roi), 1_000).unwrap();
        assert_eq!(s.stop_hart, Some(HartId::FIRST));
        assert_eq!(s.retired, 2); // the add has NOT run
        assert_eq!(e.reg(HartId::FIRST, Reg::A2), 0);
    }

    #[test]
    fn sabotage_changes_the_functional_copy_only() {
        let src = "main:
                li   a0, 6
                li   a1, 7
                add  a2, a0, a1
                li   t0, -1
                li   ra, 0
                p_ret";
        let mut e = engine(src, 1);
        let image = assemble(src).unwrap();
        // Corrupt the add into something else (flip a bit in rs2).
        e.sabotage_code(8, 1 << 20);
        e.run(FastStop::Exit, 1_000).unwrap();
        assert_ne!(e.reg(HartId::FIRST, Reg::A2), 13);
        // The image itself is untouched.
        assert_eq!(image.text[2], assemble(src).unwrap().text[2]);
    }

    #[test]
    fn commit_log_records_per_hart_pcs() {
        let mut e = engine(
            "main:
                li   a0, 1
                li   a1, 2
                li   t0, -1
                li   ra, 0
                p_ret",
            1,
        );
        e.enable_commit_log();
        e.run(FastStop::Exit, 1_000).unwrap();
        assert_eq!(e.commit_log()[0], vec![0, 4, 8, 12]);
    }
}
