//! A simple functional instruction-set simulator (ISS).
//!
//! Executes single-hart RV32IM programs sequentially — one instruction
//! at a time, memory strictly in order. Two uses:
//!
//! - a fast *functional* reference when cycle accuracy is not needed;
//! - a differential oracle: the pipelined [`Machine`](crate::Machine)
//!   executes out of order with unordered memory, but for a single hart
//!   whose program uses `p_syncm` correctly, its architectural results
//!   must match this ISS exactly (property-tested in
//!   `tests/differential.rs`).
//!
//! Supported: all of RV32IM, `p_syncm` (a no-op here: the ISS is always
//! ordered), `p_set` (hart 0's identity) and the exit form of `p_ret`.
//! Other X_PAR instructions fork or message harts, which a sequential
//! model cannot express — they raise [`IssError::Parallel`].

use lbp_asm::Image;
use lbp_isa::{HartId, IdentityWord, Instr, Reg, Region, LOCAL_BASE, SHARED_BASE};

/// Errors a functional execution can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssError {
    /// Fetch left the text section or hit an undecodable word.
    BadFetch {
        /// The faulting pc.
        pc: u32,
    },
    /// A data access left the modelled memory.
    BadAccess {
        /// The faulting address.
        addr: u32,
    },
    /// The program used a parallel X_PAR instruction.
    Parallel {
        /// The offending instruction.
        instr: String,
    },
    /// The step budget ran out.
    Timeout,
}

impl std::fmt::Display for IssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssError::BadFetch { pc } => write!(f, "bad fetch at {pc:#010x}"),
            IssError::BadAccess { addr } => write!(f, "bad access at {addr:#010x}"),
            IssError::Parallel { instr } => {
                write!(
                    f,
                    "`{instr}` needs the full machine, not the sequential ISS"
                )
            }
            IssError::Timeout => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for IssError {}

/// The sequential reference machine: one hart, flat memory.
#[derive(Debug, Clone)]
pub struct Iss {
    /// Architectural registers.
    pub regs: [u32; 32],
    pc: u32,
    text: Vec<u32>,
    /// Local bank (stack) bytes.
    local: Vec<u8>,
    /// Shared memory bytes.
    shared: Vec<u8>,
    /// Instructions retired.
    pub retired: u64,
    exited: bool,
}

impl Iss {
    /// Loads an image with the given local/shared sizes; `sp` starts at
    /// the top of the local bank (mirroring the machine's hart-0 cv
    /// base when given the same configuration).
    pub fn new(image: &Image, local_bytes: u32, shared_bytes: u32, sp: u32) -> Iss {
        let mut shared = vec![0u8; shared_bytes as usize];
        shared[..image.data.len()].copy_from_slice(&image.data);
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = sp;
        Iss {
            regs,
            pc: image.entry,
            text: image.text.clone(),
            local: vec![0u8; local_bytes as usize],
            shared,
            retired: 0,
            exited: false,
        }
    }

    /// Whether the program has executed its exit `p_ret`.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// The pc of the next instruction to execute (what a lockstep checker
    /// compares against a committed pc).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Reads a 32-bit shared-memory word.
    ///
    /// # Errors
    ///
    /// Fails if the address is outside the shared region.
    pub fn peek_shared(&self, addr: u32) -> Result<u32, IssError> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.byte(addr + i)? as u32) << (8 * i);
        }
        Ok(v)
    }

    fn byte(&self, addr: u32) -> Result<u8, IssError> {
        match Region::of(addr) {
            Region::Local => self
                .local
                .get((addr - LOCAL_BASE) as usize)
                .copied()
                .ok_or(IssError::BadAccess { addr }),
            Region::Shared => self
                .shared
                .get((addr - SHARED_BASE) as usize)
                .copied()
                .ok_or(IssError::BadAccess { addr }),
            _ => Err(IssError::BadAccess { addr }),
        }
    }

    fn read(&self, addr: u32, size: u8, signed: bool) -> Result<u32, IssError> {
        if !addr.is_multiple_of(size as u32) {
            return Err(IssError::BadAccess { addr });
        }
        let mut raw = 0u32;
        for i in 0..size as u32 {
            raw |= (self.byte(addr + i)? as u32) << (8 * i);
        }
        Ok(match (size, signed) {
            (1, true) => raw as u8 as i8 as i32 as u32,
            (2, true) => raw as u16 as i16 as i32 as u32,
            _ => raw,
        })
    }

    fn write(&mut self, addr: u32, value: u32, size: u8) -> Result<(), IssError> {
        if !addr.is_multiple_of(size as u32) {
            return Err(IssError::BadAccess { addr });
        }
        for i in 0..size as u32 {
            let b = (value >> (8 * i)) as u8;
            match Region::of(addr) {
                Region::Local => {
                    let off = (addr + i - LOCAL_BASE) as usize;
                    *self
                        .local
                        .get_mut(off)
                        .ok_or(IssError::BadAccess { addr })? = b;
                }
                Region::Shared => {
                    let off = (addr + i - SHARED_BASE) as usize;
                    *self
                        .shared
                        .get_mut(off)
                        .ok_or(IssError::BadAccess { addr })? = b;
                }
                _ => return Err(IssError::BadAccess { addr }),
            }
        }
        Ok(())
    }

    fn set(&mut self, rd: Reg, v: u32) {
        if !rd.is_zero() {
            self.regs[rd.index()] = v;
        }
    }

    fn get(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates fetch/access faults and parallel-instruction use.
    pub fn step(&mut self) -> Result<(), IssError> {
        if self.exited {
            return Ok(());
        }
        let pc = self.pc;
        let word = *self
            .text
            .get((pc / 4) as usize)
            .filter(|_| pc.is_multiple_of(4))
            .ok_or(IssError::BadFetch { pc })?;
        let instr = Instr::decode(word).map_err(|_| IssError::BadFetch { pc })?;
        let mut next = pc.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => self.set(rd, imm),
            Instr::Auipc { rd, imm } => self.set(rd, pc.wrapping_add(imm)),
            Instr::Jal { rd, offset } => {
                self.set(rd, pc.wrapping_add(4));
                next = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.get(rs1).wrapping_add(offset as u32) & !1;
                self.set(rd, pc.wrapping_add(4));
                next = target;
            }
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                if kind.taken(self.get(rs1), self.get(rs2)) {
                    next = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.get(rs1).wrapping_add(offset as u32);
                let signed = matches!(kind, lbp_isa::LoadKind::B | lbp_isa::LoadKind::H);
                let v = self.read(addr, kind.size() as u8, signed)?;
                self.set(rd, v);
            }
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.get(rs1).wrapping_add(offset as u32);
                self.write(addr, self.get(rs2), kind.size() as u8)?;
            }
            Instr::OpImm { kind, rd, rs1, imm } => {
                self.set(rd, kind.eval(self.get(rs1), imm));
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                self.set(rd, kind.eval(self.get(rs1), self.get(rs2)));
            }
            Instr::PSyncm => {} // the ISS is always ordered
            Instr::PSet { rd, rs1 } => {
                let w = IdentityWord::from_bits(self.get(rs1)).set(HartId::FIRST);
                self.set(rd, w.bits());
            }
            Instr::PMerge { rd, rs1, rs2 } => {
                let w = IdentityWord::from_bits(self.get(rs1))
                    .merge(IdentityWord::from_bits(self.get(rs2)));
                self.set(rd, w.bits());
            }
            Instr::PJalr { rd, rs1, rs2 } if rd.is_zero() => {
                let (ra, t0) = (self.get(rs1), self.get(rs2));
                if ra == 0 && IdentityWord::from_bits(t0).is_exit_sentinel() {
                    self.exited = true;
                } else if ra == 0 && IdentityWord::from_bits(t0).joins_to(HartId::FIRST) {
                    // A single-hart "team of one" self-wait can never be
                    // joined sequentially.
                    return Err(IssError::Parallel {
                        instr: instr.to_string(),
                    });
                } else if ra != 0 {
                    // Treat the self-join of the last team member as a
                    // plain return so the Fig. 7 idiom works one-hart.
                    next = ra;
                } else {
                    return Err(IssError::Parallel {
                        instr: instr.to_string(),
                    });
                }
            }
            other @ (Instr::PFc { .. }
            | Instr::PFn { .. }
            | Instr::PJal { .. }
            | Instr::PJalr { .. }
            | Instr::PLwcv { .. }
            | Instr::PSwcv { .. }
            | Instr::PLwre { .. }
            | Instr::PSwre { .. }) => {
                return Err(IssError::Parallel {
                    instr: other.to_string(),
                });
            }
        }
        self.retired += 1;
        self.pc = next;
        Ok(())
    }

    /// Runs until exit or the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates step errors; returns [`IssError::Timeout`] when the
    /// budget runs out.
    pub fn run(&mut self, max_steps: u64) -> Result<(), IssError> {
        for _ in 0..max_steps {
            if self.exited {
                return Ok(());
            }
            self.step()?;
        }
        if self.exited {
            Ok(())
        } else {
            Err(IssError::Timeout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_asm::assemble;

    fn run_iss(src: &str) -> Iss {
        let image = assemble(src).unwrap();
        let mut iss = Iss::new(&image, 0x10000, 0x10000, LOCAL_BASE + 0x4000);
        iss.run(1_000_000).unwrap();
        iss
    }

    #[test]
    fn executes_arithmetic() {
        let iss = run_iss(
            "main:
    li   a0, 6
    li   a1, 7
    mul  a2, a0, a1
    li   t0, -1
    li   ra, 0
    p_ret",
        );
        assert_eq!(iss.reg(Reg::A2), 42);
        assert!(iss.exited());
    }

    #[test]
    fn memory_round_trip() {
        let iss = run_iss(
            "main:
    la   a0, cell
    li   a1, 1234
    sw   a1, 0(a0)
    lw   a2, 0(a0)
    li   t0, -1
    li   ra, 0
    p_ret
.data
cell: .word 0",
        );
        assert_eq!(iss.reg(Reg::A2), 1234);
        assert_eq!(iss.peek_shared(SHARED_BASE).unwrap(), 1234);
    }

    #[test]
    fn forks_are_rejected() {
        let image = assemble("main: p_fc t6\n p_ret").unwrap();
        let mut iss = Iss::new(&image, 0x1000, 0x1000, LOCAL_BASE + 0x800);
        assert!(matches!(iss.run(100), Err(IssError::Parallel { .. })));
    }

    #[test]
    fn counts_retired() {
        let iss = run_iss("main:\n li t0, -1\n li ra, 0\n p_ret");
        assert_eq!(iss.retired, 3);
    }
}
