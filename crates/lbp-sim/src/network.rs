//! The hierarchical router interconnect (paper Figs. 13-15).
//!
//! Four cores share a level-one router (r1), four r1s share a level-two
//! router (r2), four r2s a level-three router (r3) — and the pattern is
//! "extensible" (paper §5.3): with more than 64 cores the hierarchy
//! simply grows another level, which models the paper's Fig. 15
//! multi-chip line sharing a last-level interconnect.
//!
//! Every directed link moves **one message per cycle**; contention queues
//! at the link in deterministic FIFO order, so the whole network is
//! cycle-reproducible. (The hardware has finite link buffers; the model
//! uses unbounded queues with identical 1-message-per-cycle-per-link
//! bandwidth, which preserves the contention behaviour the paper
//! evaluates.)

use std::collections::VecDeque;

use crate::msg::NetMsg;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// Children per router at every level (cores per r1, r1s per r2, ...).
const FANOUT: u32 = 4;

/// A position in the hierarchy: `level` 0 = cores/banks, `level` 1 = r1
/// routers, and so on; `index` counts within the level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    level: u32,
    index: u32,
}

/// The destination endpoints attached below level 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Core(u32),
    Bank(u32),
}

/// One directed link with its FIFO queue.
#[derive(Debug)]
struct Edge {
    queue: VecDeque<NetMsg>,
    /// Where a message landing off this edge is processed.
    dest: Dest,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    Router(Node),
    Deliver(Endpoint),
}

/// The memory network connecting cores to the distributed shared banks.
#[derive(Debug)]
pub struct Network {
    cores: u32,
    shared_bank_bytes: u32,
    #[cfg_attr(not(test), allow(dead_code))] // reported by levels(), used in tests
    levels: u32,
    /// Routers per level, `routers[0] == cores` (a pseudo-level).
    routers: Vec<u32>,
    edges: Vec<Edge>,
    /// Requests that arrived at each bank's network port.
    bank_inbox: Vec<VecDeque<NetMsg>>,
    /// Responses/acks that arrived back at each core.
    core_inbox: Vec<Vec<NetMsg>>,
    /// Total link traversals (for utilization statistics).
    pub hops: u64,
    /// Message-cycles lost to link contention: each cycle, every message
    /// left waiting behind the one a link carried adds one.
    pub contended: u64,
}

impl Network {
    /// Builds the hierarchy for `cores` cores: as many levels as needed
    /// so the top level has a single router (or none for 1-4 cores,
    /// where the single r1 *is* the top).
    pub fn new(cores: usize, shared_bank_bytes: u32) -> Network {
        let cores = cores as u32;
        let mut routers = vec![cores];
        loop {
            let prev = *routers.last().expect("nonempty");
            let next = prev.div_ceil(FANOUT);
            routers.push(next);
            if next <= 1 {
                break;
            }
        }
        let levels = routers.len() as u32 - 1;
        let mut net = Network {
            cores,
            shared_bank_bytes,
            levels,
            routers,
            edges: Vec::new(),
            bank_inbox: (0..cores).map(|_| VecDeque::new()).collect(),
            core_inbox: (0..cores).map(|_| Vec::new()).collect(),
            hops: 0,
            contended: 0,
        };
        // Level-0 <-> level-1 edges: core up, core down, bank req, bank
        // resp — four per core, in core order.
        for c in 0..cores {
            let r1 = Node {
                level: 1,
                index: c / FANOUT,
            };
            net.edges.push(Edge {
                queue: VecDeque::new(),
                dest: Dest::Router(r1),
            }); // core up
            net.edges.push(Edge {
                queue: VecDeque::new(),
                dest: Dest::Deliver(Endpoint::Core(c)),
            }); // core down
            net.edges.push(Edge {
                queue: VecDeque::new(),
                dest: Dest::Deliver(Endpoint::Bank(c)),
            }); // bank req
            net.edges.push(Edge {
                queue: VecDeque::new(),
                dest: Dest::Router(r1),
            }); // bank resp
        }
        // Inter-router edges: one up and one down per router per level
        // boundary.
        for level in 1..levels {
            let count = net.routers[level as usize];
            for i in 0..count {
                let parent = Node {
                    level: level + 1,
                    index: i / FANOUT,
                };
                let child = Node { level, index: i };
                net.edges.push(Edge {
                    queue: VecDeque::new(),
                    dest: Dest::Router(parent),
                }); // up
                net.edges.push(Edge {
                    queue: VecDeque::new(),
                    dest: Dest::Router(child),
                }); // down
            }
        }
        net
    }

    /// Number of router levels (1 = r1 only, 3 = the paper's 64-core
    /// r1/r2/r3, 4 = the multi-chip Fig. 15 arrangement).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    // Edge numbering helpers (must mirror the construction above).

    fn e_core_up(&self, c: u32) -> usize {
        (c * 4) as usize
    }

    fn e_core_down(&self, c: u32) -> usize {
        (c * 4 + 1) as usize
    }

    fn e_bank_req(&self, b: u32) -> usize {
        (b * 4 + 2) as usize
    }

    fn e_bank_resp(&self, b: u32) -> usize {
        (b * 4 + 3) as usize
    }

    fn inter_base(&self, level: u32) -> usize {
        let mut base = (self.cores * 4) as usize;
        for l in 1..level {
            base += self.routers[l as usize] as usize * 2;
        }
        base
    }

    fn e_up(&self, node: Node) -> usize {
        self.inter_base(node.level) + node.index as usize * 2
    }

    fn e_down(&self, node: Node) -> usize {
        self.inter_base(node.level) + node.index as usize * 2 + 1
    }

    /// Injects a request from a core into the network (the core's
    /// up-link).
    pub fn send_from_core(&mut self, core: u32, msg: NetMsg) {
        let e = self.e_core_up(core);
        self.edges[e].queue.push_back(msg);
    }

    /// Injects a response from a bank's network port.
    pub fn send_from_bank(&mut self, bank: u32, msg: NetMsg) {
        let e = self.e_bank_resp(bank);
        self.edges[e].queue.push_back(msg);
    }

    /// The requests waiting at a bank's network port.
    pub fn bank_queue(&mut self, bank: u32) -> &mut VecDeque<NetMsg> {
        &mut self.bank_inbox[bank as usize]
    }

    /// Takes the responses delivered to a core this cycle.
    pub fn take_core_inbox(&mut self, core: u32) -> Vec<NetMsg> {
        std::mem::take(&mut self.core_inbox[core as usize])
    }

    /// Whether nothing is in flight: every link queue, bank port and core
    /// inbox is empty. Feeds the machine's quiescence-based deadlock
    /// detector.
    pub fn is_quiet(&self) -> bool {
        self.edges.iter().all(|e| e.queue.is_empty())
            && self.bank_inbox.iter().all(VecDeque::is_empty)
            && self.core_inbox.iter().all(Vec::is_empty)
    }

    /// Messages currently travelling or queued anywhere in the hierarchy
    /// (crash dumps).
    pub fn in_flight(&self) -> usize {
        self.edges.iter().map(|e| e.queue.len()).sum::<usize>()
            + self.bank_inbox.iter().map(VecDeque::len).sum::<usize>()
            + self.core_inbox.iter().map(Vec::len).sum::<usize>()
    }

    /// Advances every link by one cycle: each edge delivers at most one
    /// message one hop onward.
    pub fn tick(&mut self) {
        // Phase 1: pop one message per edge (the link's bandwidth).
        let mut moved: Vec<(Dest, NetMsg)> = Vec::new();
        for e in &mut self.edges {
            if let Some(msg) = e.queue.pop_front() {
                moved.push((e.dest, msg));
                self.contended += e.queue.len() as u64;
            }
        }
        self.hops += moved.len() as u64;
        // Phase 2: route each message at the node it just reached.
        for (dest, msg) in moved {
            match dest {
                Dest::Deliver(Endpoint::Core(c)) => self.core_inbox[c as usize].push(msg),
                Dest::Deliver(Endpoint::Bank(b)) => self.bank_inbox[b as usize].push_back(msg),
                Dest::Router(node) => self.route(node, msg),
            }
        }
    }

    /// Serializes the routing parameters and every in-flight message.
    /// The topology itself is not serialized — it is a pure function of
    /// `(cores, shared_bank_bytes)` and is rebuilt on restore, with the
    /// per-edge queues refilled in edge-index order.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.cores);
        w.u32(self.shared_bank_bytes);
        w.seq(self.edges.len());
        for e in &self.edges {
            w.seq(e.queue.len());
            for msg in &e.queue {
                msg.snap(w);
            }
        }
        w.seq(self.bank_inbox.len());
        for q in &self.bank_inbox {
            w.seq(q.len());
            for msg in q {
                msg.snap(w);
            }
        }
        w.seq(self.core_inbox.len());
        for inbox in &self.core_inbox {
            w.seq(inbox.len());
            for msg in inbox {
                msg.snap(w);
            }
        }
        w.u64(self.hops);
        w.u64(self.contended);
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Network, SnapError> {
        let cores = r.u32()?;
        let shared_bank_bytes = r.u32()?;
        if cores == 0 {
            return Err(SnapError::Corrupt("network has zero cores".to_owned()));
        }
        let mut net = Network::new(cores as usize, shared_bank_bytes);
        let edges = r.seq()?;
        if edges != net.edges.len() {
            return Err(SnapError::Corrupt(format!(
                "network has {edges} edges, topology for {cores} cores has {}",
                net.edges.len()
            )));
        }
        for e in &mut net.edges {
            for _ in 0..r.seq()? {
                e.queue.push_back(NetMsg::unsnap(r)?);
            }
        }
        let banks = r.seq()?;
        if banks != net.bank_inbox.len() {
            return Err(SnapError::Corrupt(format!(
                "{banks} bank inboxes for {cores} cores"
            )));
        }
        for q in &mut net.bank_inbox {
            for _ in 0..r.seq()? {
                q.push_back(NetMsg::unsnap(r)?);
            }
        }
        let inboxes = r.seq()?;
        if inboxes != net.core_inbox.len() {
            return Err(SnapError::Corrupt(format!(
                "{inboxes} core inboxes for {cores} cores"
            )));
        }
        for inbox in &mut net.core_inbox {
            for _ in 0..r.seq()? {
                inbox.push(NetMsg::unsnap(r)?);
            }
        }
        net.hops = r.u64()?;
        net.contended = r.u64()?;
        Ok(net)
    }

    /// The level-0 endpoint index a message is heading to.
    fn target(&self, msg: &NetMsg) -> (u32, bool) {
        if let Some(bank) = msg.dest_bank(self.shared_bank_bytes) {
            (bank, true)
        } else {
            (msg.dest_core().expect("message has a destination"), false)
        }
    }

    /// Routes a message sitting at `node`: down toward the target if the
    /// target is in this router's subtree, else up.
    fn route(&mut self, node: Node, msg: NetMsg) {
        let (target, is_request) = self.target(&msg);
        let subtree = FANOUT.pow(node.level);
        let e = if target / subtree == node.index {
            // Descend one level.
            if node.level == 1 {
                if is_request {
                    self.e_bank_req(target)
                } else {
                    self.e_core_down(target)
                }
            } else {
                let child = Node {
                    level: node.level - 1,
                    index: target / FANOUT.pow(node.level - 1),
                };
                self.e_down(child)
            }
        } else {
            self.e_up(node)
        };
        self.edges[e].queue.push_back(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use lbp_isa::{HartId, SHARED_BASE};

    fn read_req(addr: u32, hart: u32) -> NetMsg {
        NetMsg::ReadReq {
            addr,
            hart: HartId::new(hart),
            size: 4,
            signed: false,
        }
    }

    /// Ticks until the request reaches the bank inbox; returns the cycle.
    /// A lost message surfaces as a structured `SimError` (the network
    /// going quiet before delivery is exactly a deadlock), not a panic.
    fn cycles_to_bank(cores: usize, from_core: u32, to_bank: u32) -> Result<u32, SimError> {
        let bank_bytes = 0x10000;
        let mut net = Network::new(cores, bank_bytes);
        let addr = SHARED_BASE + to_bank * bank_bytes;
        net.send_from_core(from_core, read_req(addr, from_core * 4));
        for cycle in 1..100 {
            net.tick();
            if !net.bank_queue(to_bank).is_empty() {
                return Ok(cycle);
            }
            if net.is_quiet() {
                return Err(SimError::Deadlock {
                    cycle: cycle as u64,
                    blocked: Vec::new(),
                });
            }
        }
        Err(SimError::Timeout { cycles: 100 })
    }

    #[test]
    fn level_counts() {
        assert_eq!(Network::new(1, 0x10000).levels(), 1);
        assert_eq!(Network::new(4, 0x10000).levels(), 1);
        assert_eq!(Network::new(16, 0x10000).levels(), 2);
        assert_eq!(Network::new(64, 0x10000).levels(), 3);
        assert_eq!(Network::new(256, 0x10000).levels(), 4); // Fig. 15
    }

    #[test]
    fn same_group_takes_two_hops() {
        assert_eq!(cycles_to_bank(16, 0, 1).unwrap(), 2);
    }

    #[test]
    fn cross_r1_takes_four_hops() {
        assert_eq!(cycles_to_bank(16, 0, 12).unwrap(), 4);
    }

    #[test]
    fn cross_r2_takes_six_hops() {
        assert_eq!(cycles_to_bank(64, 0, 63).unwrap(), 6);
    }

    #[test]
    fn multi_chip_cross_r3_takes_eight_hops() {
        // 256 cores = four 64-core chips (Fig. 15): core 0 to the last
        // bank crosses the whole four-level hierarchy.
        assert_eq!(cycles_to_bank(256, 0, 255).unwrap(), 8);
    }

    #[test]
    fn response_routes_back_to_core() {
        let mut net = Network::new(64, 0x10000);
        net.send_from_bank(
            63,
            NetMsg::ReadResp {
                addr: SHARED_BASE,
                value: 7,
                hart: HartId::new(0),
            },
        );
        let mut arrived = 0;
        for cycle in 1..100 {
            net.tick();
            let inbox = net.take_core_inbox(0);
            if !inbox.is_empty() {
                arrived = cycle;
                assert_eq!(inbox.len(), 1);
                break;
            }
        }
        assert_eq!(arrived, 6);
    }

    #[test]
    fn link_bandwidth_is_one_per_cycle() {
        let mut net = Network::new(4, 0x10000);
        net.send_from_core(0, read_req(SHARED_BASE + 0x10000, 0));
        net.send_from_core(0, read_req(SHARED_BASE + 0x10000, 1));
        net.tick();
        net.tick();
        assert_eq!(net.bank_queue(1).len(), 1);
        net.tick();
        assert_eq!(net.bank_queue(1).len(), 2);
    }

    #[test]
    fn contention_is_fifo_deterministic() {
        let mut net = Network::new(4, 0x10000);
        for c in 0..4 {
            net.send_from_core(c, read_req(SHARED_BASE, c * 4));
        }
        let mut order = Vec::new();
        for _ in 0..16 {
            net.tick();
            while let Some(m) = net.bank_queue(0).pop_front() {
                if let NetMsg::ReadReq { hart, .. } = m {
                    order.push(hart.global());
                }
            }
        }
        assert_eq!(order, vec![0, 4, 8, 12]);
    }

    #[test]
    fn hop_counter_accumulates() {
        let mut net = Network::new(4, 0x10000);
        net.send_from_core(0, read_req(SHARED_BASE + 0x10000, 0));
        for _ in 0..4 {
            net.tick();
        }
        assert_eq!(net.hops, 2);
    }

    #[test]
    fn odd_core_counts_work() {
        // Non-power-of-four machines still route correctly.
        for cores in [3usize, 5, 7, 12, 20, 100] {
            let hops = cycles_to_bank(cores, 0, cores as u32 - 1).unwrap();
            assert!(hops >= 2, "{cores} cores: {hops} hops");
        }
    }

    /// An r1-boundary crossing to the *adjacent* group costs exactly the
    /// up-and-over path: core 3 (last of group 0) to bank 4 (first of
    /// group 1) is 4 hops, same as any other cross-group pair.
    #[test]
    fn adjacent_group_boundary_still_pays_the_full_climb() {
        assert_eq!(cycles_to_bank(16, 3, 4).unwrap(), 4);
        assert_eq!(cycles_to_bank(16, 4, 3).unwrap(), 4);
    }

    /// A core's request to its own bank still takes the network (two
    /// hops through r1) — the local fast path is the bank port, not a
    /// zero-hop network route.
    #[test]
    fn own_bank_via_network_takes_two_hops() {
        assert_eq!(cycles_to_bank(4, 2, 2).unwrap(), 2);
    }

    /// Converging traffic across an r1/r2 boundary, cycle by cycle: all
    /// four r1 groups of a 16-core machine target bank 0, so the single
    /// down-link from r1#0 into bank 0 is the bottleneck. Deliveries
    /// must serialize at one per cycle with deterministic order: the
    /// in-group request first (it skips r2), then the cross-group
    /// requests in core order (FIFO at every merge point).
    #[test]
    fn r2_convergence_serializes_on_the_last_link() {
        let bank_bytes = 0x10000;
        let mut net = Network::new(16, bank_bytes);
        for c in [0u32, 4, 8, 12] {
            net.send_from_core(c, read_req(SHARED_BASE, c * 4));
        }
        let mut deliveries: Vec<(u32, u32)> = Vec::new(); // (cycle, hart)
        for cycle in 1..=12 {
            net.tick();
            while let Some(m) = net.bank_queue(0).pop_front() {
                if let NetMsg::ReadReq { hart, .. } = m {
                    deliveries.push((cycle, hart.global()));
                }
            }
        }
        assert_eq!(
            deliveries,
            vec![(2, 0), (4, 16), (5, 32), (6, 48)],
            "in-group first, then one cross-group arrival per cycle"
        );
        assert!(net.is_quiet());
    }

    /// The network's contention counter charges message-cycles at the
    /// shared link, and only there: two same-cycle requests from one
    /// core contend, requests from different cores on disjoint paths do
    /// not.
    #[test]
    fn contention_charges_only_shared_links() {
        let bank_bytes = 0x10000;
        // Same core, same up-link: the second request waits one cycle.
        let mut net = Network::new(4, bank_bytes);
        net.send_from_core(0, read_req(SHARED_BASE + bank_bytes, 0));
        net.send_from_core(0, read_req(SHARED_BASE + bank_bytes, 1));
        for _ in 0..4 {
            net.tick();
        }
        assert_eq!(net.contended, 1);

        // Different cores, disjoint paths to their own groups' banks:
        // no contention at all.
        let mut net = Network::new(8, bank_bytes);
        net.send_from_core(0, read_req(SHARED_BASE + bank_bytes, 0)); // bank 1, group 0
        net.send_from_core(4, read_req(SHARED_BASE + 5 * bank_bytes, 16)); // bank 5, group 1
        for _ in 0..4 {
            net.tick();
        }
        assert_eq!(net.contended, 0);
        assert_eq!(net.bank_queue(1).len(), 1);
        assert_eq!(net.bank_queue(5).len(), 1);
    }

    /// Requests and responses ride separate links: a read request into a
    /// bank and the response leaving it in the same cycles never queue
    /// behind each other (full duplex between a core/bank pair).
    #[test]
    fn request_and_response_links_are_full_duplex() {
        let bank_bytes = 0x10000;
        let mut net = Network::new(4, bank_bytes);
        net.send_from_core(0, read_req(SHARED_BASE + bank_bytes, 0));
        net.send_from_bank(
            1,
            NetMsg::ReadResp {
                addr: SHARED_BASE + bank_bytes,
                value: 9,
                hart: HartId::new(0),
            },
        );
        net.tick();
        net.tick();
        assert_eq!(net.bank_queue(1).len(), 1, "request arrived");
        assert_eq!(net.take_core_inbox(0).len(), 1, "response arrived");
        assert_eq!(net.contended, 0, "opposite directions never contend");
    }

    /// Two-core machines (the smallest with remote traffic) keep exact
    /// cycle accounting: request out on cycle 2, response back on
    /// cycle 4 after a same-cycle bank turnaround.
    #[test]
    fn two_core_round_trip_is_four_hops() {
        let bank_bytes = 0x10000;
        let mut net = Network::new(2, bank_bytes);
        net.send_from_core(0, read_req(SHARED_BASE + bank_bytes, 0));
        net.tick();
        net.tick();
        let req = net
            .bank_queue(1)
            .pop_front()
            .expect("request after 2 cycles");
        let addr = match req {
            NetMsg::ReadReq { addr, .. } => addr,
            _ => panic!("expected a read request"),
        };
        net.send_from_bank(
            1,
            NetMsg::ReadResp {
                addr,
                value: 1,
                hart: HartId::new(0),
            },
        );
        net.tick();
        assert!(net.take_core_inbox(0).is_empty());
        net.tick();
        assert_eq!(
            net.take_core_inbox(0).len(),
            1,
            "response after 2 more cycles"
        );
        assert_eq!(net.hops, 4);
    }
}
