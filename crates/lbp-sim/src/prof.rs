//! Guest-program profiling collectors (the machine side of `lbp-prof`).
//!
//! When profiling is enabled ([`Machine::enable_profiling`]
//! (crate::Machine::enable_profiling)), the machine attributes every core
//! cycle to a program counter: a retiring cycle to the committed
//! instruction's pc, a stall slot to the pc the stall classifier blames
//! (the oldest in-flight instruction of the hart it singled out). The
//! attribution refines the six-bucket stall partition of
//! [`Stats`](crate::Stats) down to program locations while preserving its
//! exactness: per core, the attributed retired and stall counts sum to
//! the machine cycle count.
//!
//! The collectors also record a shared-traffic matrix (requests from each
//! source core to each shared bank — the load the deterministic routes
//! place on the NoC links), a bank-conflict matrix (queued request-cycles
//! at the shared banks by requester core), and a fork-tree timeline
//! (fork/start/join/end events), all sampled per interval when the
//! configuration sets `sample_interval`.
//!
//! Profiling is strictly observational: every mutator is reached through
//! an `Option` that is `None` unless profiling was enabled, so a
//! non-profiled run executes the same instruction sequence, emits the
//! same trace and reaches the same final state bit for bit. The profiler
//! is *not* part of a snapshot, exactly like the trace and streaming
//! sink: a restored machine starts with profiling off.

use std::collections::BTreeMap;

use lbp_isa::HartId;

use crate::stats::{CoreStalls, StallKind};

/// Cycle attribution of one (core, pc) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Cycles this pc retired on this core.
    pub retired: u64,
    /// Stall slots blamed on this pc, by bucket.
    pub stalls: CoreStalls,
}

impl PcCounters {
    /// Total cycles attributed to the pc (retired + stall slots).
    pub fn cycles(&self) -> u64 {
        self.retired + self.stalls.total()
    }
}

/// One fork-tree / hart-lifetime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfEventKind {
    /// A hart was allocated (`p_fc`/`p_fn` satisfied).
    Fork {
        /// The hart whose fork instruction requested the allocation.
        parent: HartId,
        /// The allocated hart.
        child: HartId,
    },
    /// A start pc was delivered: the hart begins fetching.
    Start {
        /// The started hart.
        hart: HartId,
        /// Its first pc.
        pc: u32,
    },
    /// A join address resumed a waiting hart.
    Join {
        /// The resumed hart.
        hart: HartId,
        /// The resumption pc.
        pc: u32,
    },
    /// The hart ended and became free (`p_ret` types 1 and 4).
    End {
        /// The ending hart.
        hart: HartId,
    },
    /// The exiting `p_ret` committed (`p_ret` type 3).
    Exit {
        /// The exiting hart.
        hart: HartId,
    },
}

impl ProfEventKind {
    /// The event's stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ProfEventKind::Fork { .. } => "fork",
            ProfEventKind::Start { .. } => "start",
            ProfEventKind::Join { .. } => "join",
            ProfEventKind::End { .. } => "end",
            ProfEventKind::Exit { .. } => "exit",
        }
    }

    /// The hart the event happens to (the child for a fork).
    pub fn hart(&self) -> HartId {
        match *self {
            ProfEventKind::Fork { child, .. } => child,
            ProfEventKind::Start { hart, .. }
            | ProfEventKind::Join { hart, .. }
            | ProfEventKind::End { hart }
            | ProfEventKind::Exit { hart } => hart,
        }
    }
}

/// One timeline entry: what happened and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfEvent {
    /// The cycle the event occurred on.
    pub cycle: u64,
    /// What happened.
    pub kind: ProfEventKind,
}

/// One per-interval sample of the traffic matrices: the *deltas* over
/// the `interval` cycles ending at `cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfInterval {
    /// The cycle the interval ends on.
    pub cycle: u64,
    /// The number of cycles the interval covers.
    pub interval: u64,
    /// Shared requests issued during the interval, `[src * cores + bank]`.
    pub noc_requests: Vec<u64>,
    /// Conflict request-cycles during the interval, `[req * cores + bank]`.
    pub bank_conflicts: Vec<u64>,
}

/// All profiling collectors of one machine.
///
/// Row-major square matrices of side `cores`: `noc_requests[src][bank]`
/// counts shared-memory requests from `src` to shared bank `bank` (the
/// diagonal is the own-slice local port; off-diagonal requests ride the
/// router hierarchy), `bank_conflicts[req][bank]` counts request-cycles
/// a requester's messages spent queued at a busy shared-bank port.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfData {
    cores: usize,
    per_pc: Vec<BTreeMap<u32, PcCounters>>,
    unattributed: Vec<CoreStalls>,
    noc_requests: Vec<u64>,
    bank_conflicts: Vec<u64>,
    timeline: Vec<ProfEvent>,
    intervals: Vec<ProfInterval>,
    cursor_noc: Vec<u64>,
    cursor_conflicts: Vec<u64>,
}

impl ProfData {
    /// Creates empty collectors for a `cores`-core machine.
    pub fn new(cores: usize) -> ProfData {
        ProfData {
            cores,
            per_pc: vec![BTreeMap::new(); cores],
            unattributed: vec![CoreStalls::default(); cores],
            noc_requests: vec![0; cores * cores],
            bank_conflicts: vec![0; cores * cores],
            timeline: Vec::new(),
            intervals: Vec::new(),
            cursor_noc: vec![0; cores * cores],
            cursor_conflicts: vec![0; cores * cores],
        }
    }

    /// Attributes one retiring cycle of `core` to the committed `pc`.
    pub(crate) fn retired(&mut self, core: usize, pc: u32) {
        self.per_pc[core].entry(pc).or_default().retired += 1;
    }

    /// Attributes one stall slot of `core` to the blamed `pc` (or to the
    /// core's unattributed bucket when no instruction is blamable, e.g.
    /// an idle core).
    pub(crate) fn stalled(&mut self, core: usize, pc: Option<u32>, kind: StallKind) {
        match pc {
            Some(pc) => self.per_pc[core].entry(pc).or_default().stalls.bump(kind),
            None => self.unattributed[core].bump(kind),
        }
    }

    /// Counts one shared-memory request from `src` to shared bank `bank`.
    pub(crate) fn noc_request(&mut self, src: usize, bank: usize) {
        self.noc_requests[src * self.cores + bank] += 1;
    }

    /// Adds `n` queued request-cycles of `requester` at shared bank
    /// `bank`.
    pub(crate) fn bank_conflict(&mut self, requester: usize, bank: usize, n: u64) {
        self.bank_conflicts[requester * self.cores + bank] += n;
    }

    /// Appends one fork-tree timeline event.
    pub(crate) fn event(&mut self, cycle: u64, kind: ProfEventKind) {
        self.timeline.push(ProfEvent { cycle, kind });
    }

    /// Closes the current interval: records the matrix deltas since the
    /// previous sample (mirrors the stats interval sampler).
    pub(crate) fn take_interval(&mut self, cycle: u64, interval: u64) {
        let delta = |cur: &[u64], cursor: &[u64]| -> Vec<u64> {
            cur.iter().zip(cursor).map(|(&c, &p)| c - p).collect()
        };
        self.intervals.push(ProfInterval {
            cycle,
            interval,
            noc_requests: delta(&self.noc_requests, &self.cursor_noc),
            bank_conflicts: delta(&self.bank_conflicts, &self.cursor_conflicts),
        });
        self.cursor_noc.copy_from_slice(&self.noc_requests);
        self.cursor_conflicts.copy_from_slice(&self.bank_conflicts);
    }

    /// The machine size the collectors were built for.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The per-pc attribution of one core, in pc order.
    pub fn per_pc(&self, core: usize) -> impl Iterator<Item = (u32, &PcCounters)> {
        self.per_pc[core].iter().map(|(&pc, c)| (pc, c))
    }

    /// Stall slots of one core no instruction could be blamed for.
    pub fn unattributed(&self, core: usize) -> &CoreStalls {
        &self.unattributed[core]
    }

    /// The cumulative shared-request matrix, row-major `[src][bank]`.
    pub fn noc_matrix(&self) -> &[u64] {
        &self.noc_requests
    }

    /// The cumulative bank-conflict matrix, row-major `[req][bank]`.
    pub fn conflict_matrix(&self) -> &[u64] {
        &self.bank_conflicts
    }

    /// The fork-tree timeline, in event order.
    pub fn timeline(&self) -> &[ProfEvent] {
        &self.timeline
    }

    /// The per-interval matrix samples.
    pub fn intervals(&self) -> &[ProfInterval] {
        &self.intervals
    }

    /// Total cycles attributed to one core: per-pc retired + per-pc
    /// stalls + unattributed stalls. Equals the machine cycle count for
    /// every core of a profiled run (the exactness invariant).
    pub fn attributed_cycles(&self, core: usize) -> u64 {
        self.per_pc[core]
            .values()
            .map(PcCounters::cycles)
            .sum::<u64>()
            + self.unattributed[core].total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_partitions() {
        let mut p = ProfData::new(2);
        p.retired(0, 0x10);
        p.retired(0, 0x10);
        p.stalled(0, Some(0x14), StallKind::MemWait);
        p.stalled(0, None, StallKind::Idle);
        p.stalled(1, None, StallKind::Idle);
        assert_eq!(p.attributed_cycles(0), 4);
        assert_eq!(p.attributed_cycles(1), 1);
        let cells: Vec<_> = p.per_pc(0).collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, 0x10);
        assert_eq!(cells[0].1.retired, 2);
        assert_eq!(cells[1].1.stalls.mem_wait, 1);
        assert_eq!(p.unattributed(0).idle, 1);
    }

    #[test]
    fn matrices_and_intervals_delta() {
        let mut p = ProfData::new(2);
        p.noc_request(0, 1);
        p.noc_request(0, 1);
        p.bank_conflict(1, 0, 3);
        p.take_interval(100, 100);
        p.noc_request(1, 0);
        p.take_interval(200, 100);
        assert_eq!(p.noc_matrix()[1], 2); // [0][1]
        assert_eq!(p.conflict_matrix()[2], 3); // [1][0]
        assert_eq!(p.intervals().len(), 2);
        assert_eq!(p.intervals()[0].noc_requests[1], 2);
        assert_eq!(p.intervals()[1].noc_requests[1], 0);
        assert_eq!(p.intervals()[1].noc_requests[2], 1);
        assert_eq!(p.intervals()[1].bank_conflicts[2], 0);
    }

    #[test]
    fn timeline_records_order() {
        let mut p = ProfData::new(1);
        let h = HartId::new(0);
        p.event(
            1,
            ProfEventKind::Fork {
                parent: h,
                child: h,
            },
        );
        p.event(2, ProfEventKind::Exit { hart: h });
        assert_eq!(p.timeline().len(), 2);
        assert_eq!(p.timeline()[0].kind.name(), "fork");
        assert_eq!(p.timeline()[1].cycle, 2);
    }
}
