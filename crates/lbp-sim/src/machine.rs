//! The top-level LBP machine: cores + banks + interconnect + devices.

use lbp_asm::Image;
use lbp_isa::HartId;

use crate::bank::MemSys;
use crate::config::LbpConfig;
use crate::core::{Core, Env};
use crate::dump::SimFailure;
use crate::error::SimError;
use crate::fabric::Fabric;
use crate::fault::Fault;
use crate::hart::{HartCtx, HartState, RbWait};
use crate::io::IoBus;
use crate::json::Json;
use crate::msg::{CoreMsg, NetMsg};
use crate::prof::{ProfData, ProfEventKind};
use crate::race::{RaceData, RaceWitness};
use crate::snapshot::{MachineState, SnapError, SnapReader, SnapWriter};
use crate::stats::{CoreStalls, IntervalSample, Stats};
use crate::trace::{Event, EventKind, Trace, TraceSink};

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Cycle and instruction counters.
    pub stats: Stats,
    /// Whether the program exited (`p_ret` type 3) within the budget.
    pub exited: bool,
}

impl RunReport {
    /// The machine-readable report: the stats JSON (schema
    /// `lbp-stats-v1`) with the run's `exited` flag added.
    pub fn to_json(&self) -> Json {
        let mut v = self.stats.to_json();
        if let Json::Obj(pairs) = &mut v {
            // Keep `schema` first, then the exit state, then the counters.
            pairs.insert(1, ("exited".to_owned(), Json::Bool(self.exited)));
        }
        v
    }
}

/// Why a [`Machine::run_cooperative`] call returned without an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPause {
    /// The program exited (`p_ret` type 3).
    Exited,
    /// The machine reached the target cycle without exiting.
    Target,
    /// The poll callback asked to stop at a slice boundary.
    Cancelled,
}

/// Snapshot of the cumulative counters at the last interval boundary,
/// used to turn cumulative stats into per-interval deltas.
#[derive(Debug, Default, Clone, Copy)]
struct SampleCursor {
    cycle: u64,
    retired: u64,
    link_hops: u64,
    stalls: CoreStalls,
}

/// A full LBP machine instance executing one loaded program.
///
/// # Examples
///
/// ```
/// use lbp_sim::{LbpConfig, Machine};
///
/// let image = lbp_asm::assemble(
///     "main:
///         li   t0, -1
///         li   a0, 0
///         p_ret a0, t0   # ra-equivalent 0, t0 -1: exit",
/// )?;
/// let mut m = Machine::new(LbpConfig::cores(1), &image)?;
/// let report = m.run(10_000)?;
/// assert!(report.exited);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Machine {
    pub(crate) cfg: LbpConfig,
    pub(crate) cores: Vec<Core>,
    pub(crate) mem: MemSys,
    pub(crate) fabric: Fabric,
    stats: Stats,
    trace: Trace,
    sink: Option<Box<dyn TraceSink>>,
    /// Profiling collectors; `None` (off) unless
    /// [`Machine::enable_profiling`] was called. Like the trace and the
    /// sink, never part of a snapshot.
    prof: Option<Box<ProfData>>,
    /// Race-witness collector; `None` (off) unless
    /// [`Machine::enable_race_witness`] was called. Observational like
    /// `prof`, and likewise never part of a snapshot.
    race: Option<Box<RaceData>>,
    cursor: SampleCursor,
    pub(crate) cycle: u64,
    pub(crate) exited: bool,
    /// Cycle-triggered faults from the plan, not yet applied.
    pending_faults: Vec<Fault>,
    /// Cycle-triggered faults that fired (the fabric counts its own).
    pub(crate) faults_applied: u64,
    /// Consecutive cycles without a retirement anywhere; once it reaches
    /// [`QUIET_CYCLES`] the deadlock detector starts checking.
    quiet_cycles: u64,
}

/// Cycles without any retirement before the deadlock detector runs. The
/// value only delays detection — the quiescence check itself is exact —
/// but skipping the busiest cycles keeps the common case free.
const QUIET_CYCLES: u64 = 8;

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cfg", &self.cfg)
            .field("cycle", &self.cycle)
            .field("exited", &self.exited)
            .field("stats", &self.stats)
            .field("streaming", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine and loads the program image: the text into every
    /// core's code bank, the data into the distributed shared banks, and
    /// boots hart 0 of core 0 at the entry point.
    ///
    /// # Errors
    ///
    /// Fails if the initialized data exceeds the configured shared space,
    /// or if the configuration's fault plan targets something outside the
    /// machine (a hart, register, address or code word that does not
    /// exist).
    pub fn new(cfg: LbpConfig, image: &Image) -> Result<Machine, SimError> {
        validate_fault_plan(&cfg, image)?;
        let mut drop_nth = Vec::new();
        let mut delay_nth = Vec::new();
        let mut pending_faults = Vec::new();
        for &fault in &cfg.faults.faults {
            match fault {
                Fault::DropMsg { nth } => drop_nth.push(nth),
                Fault::DelayMsg { nth, cycles } => delay_nth.push((nth, cycles)),
                _ => pending_faults.push(fault),
            }
        }
        let mut fabric = Fabric::new(cfg.cores);
        fabric.set_faults(drop_nth, delay_nth);
        let mem = MemSys::new(&cfg, &image.text, &image.data)?;
        let mut cores: Vec<Core> = (0..cfg.cores as u32)
            .map(|c| {
                Core::new(c, |id| {
                    HartCtx::new(
                        id,
                        cfg.phys_regs,
                        cfg.it_entries,
                        cfg.rob_entries,
                        cfg.result_slots,
                    )
                })
            })
            .collect();
        let boot_sp = mem.cv_base(HartId::FIRST);
        cores[0].harts[0].boot(image.entry, boot_sp);
        cores[0].free_q.retain(|&l| l != 0); // the boot hart starts running, not free
        Ok(Machine {
            fabric,
            stats: Stats::new(cfg.harts()),
            trace: Trace::new(),
            sink: None,
            prof: None,
            race: None,
            cursor: SampleCursor::default(),
            cycle: 0,
            exited: false,
            pending_faults,
            faults_applied: 0,
            quiet_cycles: 0,
            cores,
            mem,
            cfg,
        })
    }

    /// Whether the program has executed its exit `p_ret`.
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// The machine's configuration.
    pub fn config(&self) -> &LbpConfig {
        &self.cfg
    }

    /// The I/O bus, for attaching scripted devices before a run.
    pub fn io_mut(&mut self) -> &mut IoBus {
        &mut self.mem.io
    }

    /// Reads a word of shared memory (e.g. to check results after a run).
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    pub fn peek_shared(&mut self, addr: u32) -> Result<u32, SimError> {
        Ok(self.mem.peek_shared(addr)?)
    }

    /// Writes a word of shared memory directly, bypassing the pipeline —
    /// for harness-side data initialization before a run (the equivalent
    /// of the paper's statically initialized matrices, which cost no
    /// retired instructions).
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    pub fn poke_shared(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let bank = self.mem.shared_bank_of(addr);
        Ok(self.mem.write(bank, addr, value, 4, HartId::FIRST)?)
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The event trace (empty unless the configuration enables tracing).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Attaches a streaming trace sink. Every machine event is forwarded
    /// to the sink as it happens — independent of the in-memory trace
    /// toggle (`cfg.trace`), so multi-million-cycle runs can be traced in
    /// O(1) memory. Call [`Machine::finish_trace`] after the run to flush.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Enables guest-program profiling: from now on every core cycle is
    /// attributed to a program counter, shared traffic and bank conflicts
    /// are recorded per (core, bank), and fork/start/join/end events feed
    /// the fork-tree timeline (see [`ProfData`]).
    ///
    /// Profiling is observational only: the run's instruction sequence,
    /// trace, statistics and final state are bit-identical with profiling
    /// on or off. The collectors are not serialized into snapshots — a
    /// restored machine starts with profiling off.
    pub fn enable_profiling(&mut self) {
        if self.prof.is_none() {
            self.prof = Some(Box::new(ProfData::new(self.cfg.cores)));
        }
    }

    /// The profiling collectors, if [`Machine::enable_profiling`] was
    /// called.
    pub fn profile(&self) -> Option<&ProfData> {
        self.prof.as_deref()
    }

    /// Turns on the dynamic race-witness collector (see [`RaceData`]).
    /// Every subsequent shared-memory access is checked byte-by-byte for
    /// cross-hart overlap with no fork/join protocol message in between.
    ///
    /// Collection is observational only: the run's instruction sequence,
    /// trace, statistics and final state are bit-identical with the
    /// collector on or off, and it is not serialized into snapshots — a
    /// restored machine starts with collection off.
    pub fn enable_race_witness(&mut self) {
        if self.race.is_none() {
            self.race = Some(Box::new(RaceData::new(self.cfg.cores)));
        }
    }

    /// The race witnesses collected so far; empty when
    /// [`Machine::enable_race_witness`] was never called (or when the
    /// program is race-free).
    pub fn race_witnesses(&self) -> &[RaceWitness] {
        self.race.as_deref().map_or(&[], |r| r.witnesses.as_slice())
    }

    /// Finalizes and flushes the attached streaming sink, if any (closes
    /// the Chrome JSON array, reports buffered I/O errors).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink encountered during the run.
    pub fn finish_trace(&mut self) -> std::io::Result<()> {
        match self.sink.as_mut() {
            Some(sink) => sink.finish(),
            None => Ok(()),
        }
    }

    /// Runs until the program exits or the cycle budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the budget runs out,
    /// [`SimError::Deadlock`] the moment the machine quiesces without
    /// exiting, or any fatal fault raised by the program.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, SimError> {
        self.run_diagnosed(max_cycles).map_err(|f| f.error)
    }

    /// Like [`Machine::run`], but every error arrives packaged with a
    /// [`MachineDump`](crate::MachineDump) snapshot taken at the moment
    /// it was raised (what `lbp-run --dump-on-error` writes out).
    ///
    /// Includes the deadlock detector: once a few quiet cycles pass with no
    /// retirement anywhere, each further quiet cycle checks whether the
    /// machine can ever make progress again, and reports
    /// [`SimError::Deadlock`] with every blocked hart the moment it
    /// cannot — typically orders of magnitude before the timeout budget
    /// would expire.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`], boxed with the crash dump.
    pub fn run_diagnosed(&mut self, max_cycles: u64) -> Result<RunReport, Box<SimFailure>> {
        if !self.run_to(max_cycles)? {
            return Err(self.failure(SimError::Timeout { cycles: max_cycles }));
        }
        Ok(self.report())
    }

    /// Runs until the program exits or the machine reaches cycle `target`,
    /// whichever comes first — the checkpointing primitive: stopping at a
    /// cycle boundary is not an error, so a run can be resumed (or a
    /// snapshot taken) and continued to the same final state a single
    /// uninterrupted run would reach.
    ///
    /// Returns whether the program has exited.
    ///
    /// # Errors
    ///
    /// Any fatal fault or deadlock, packaged with a crash dump. Unlike
    /// [`Machine::run`], reaching `target` is a normal return, not a
    /// timeout.
    pub fn run_to(&mut self, target: u64) -> Result<bool, Box<SimFailure>> {
        while !self.exited {
            if self.cycle >= target {
                return Ok(false);
            }
            let retired_before = self.stats.retired();
            if let Err(e) = self.tick() {
                return Err(self.failure(e));
            }
            if self.stats.retired() > retired_before {
                self.quiet_cycles = 0;
            } else {
                self.quiet_cycles += 1;
                if self.quiet_cycles >= QUIET_CYCLES && !self.exited {
                    if let Some(blocked) = crate::deadlock::check(self) {
                        let err = SimError::Deadlock {
                            cycle: self.cycle,
                            blocked,
                        };
                        return Err(self.failure(err));
                    }
                }
            }
        }
        // Close the time series with the final partial interval so the
        // samples cover the whole run.
        if self.cfg.sample_interval > 0 && self.cycle > self.cursor.cycle {
            self.take_sample();
        }
        Ok(true)
    }

    /// Runs toward cycle `target` in slices of at most `slice` cycles,
    /// calling `poll` between slices — the cooperative-cancellation
    /// primitive behind watchdogs and graceful daemon shutdown.
    ///
    /// `poll` sees the paused machine (inspect the cycle, take a
    /// snapshot, write a checkpoint) and returns whether to continue;
    /// returning `false` stops the run at the current cycle boundary.
    /// Because every stop lands on a cycle boundary, a cancelled run can
    /// be snapshotted and resumed to the exact state an uninterrupted
    /// run would reach — cancellation is invisible to the simulation.
    ///
    /// # Errors
    ///
    /// Any fatal fault or deadlock, packaged with a crash dump, exactly
    /// as [`Machine::run_to`]. Reaching `target` or cancelling are
    /// normal returns, distinguished by [`RunPause`].
    pub fn run_cooperative<F>(
        &mut self,
        target: u64,
        slice: u64,
        mut poll: F,
    ) -> Result<RunPause, Box<SimFailure>>
    where
        F: FnMut(&Machine) -> bool,
    {
        let slice = slice.max(1);
        loop {
            let stop = self.cycle.saturating_add(slice).min(target);
            if self.run_to(stop)? {
                return Ok(RunPause::Exited);
            }
            if self.cycle >= target {
                return Ok(RunPause::Target);
            }
            if !poll(self) {
                return Ok(RunPause::Cancelled);
            }
        }
    }

    /// The report a completed [`Machine::run`] would return right now.
    pub fn report(&self) -> RunReport {
        RunReport {
            stats: self.stats.clone(),
            exited: self.exited,
        }
    }

    /// Toggles in-memory event tracing (the `cfg.trace` flag) on a live
    /// machine — used by the divergence bisector to capture events only
    /// around the cycle under inspection.
    pub fn set_trace(&mut self, on: bool) {
        self.cfg.trace = on;
    }

    /// Serializes the complete simulation state into a [`MachineState`].
    ///
    /// The snapshot captures everything the machine's evolution depends
    /// on: architectural and micro-architectural hart state, memory banks,
    /// every in-flight message, statistics, and the fault plan. It does
    /// *not* capture the in-memory trace, an attached streaming sink, or
    /// the profiling collectors — a restored machine starts with an empty
    /// trace, no sink and profiling off, but emits exactly the events the
    /// original would emit from this cycle on.
    ///
    /// The payload has two sections: a *static* one (configuration and
    /// fault plan — fixed at construction) and a *dynamic* one (everything
    /// execution-determined). [`MachineState::dynamic_bytes`] exposes the
    /// latter so two machines that differ only in their fault plan can be
    /// compared state-for-state.
    pub fn snapshot(&self) -> MachineState {
        let mut w = SnapWriter::new();
        w.u64(self.cycle);
        w.u64(self.cfg.cores as u64);
        let dyn_patch = w.position();
        w.u64(0); // dyn_offset, patched once the static section is written
                  // Static section.
        self.cfg.snap(&mut w);
        w.seq(self.pending_faults.len());
        for fault in &self.pending_faults {
            w.str(&fault.to_string());
        }
        w.u64(self.faults_applied);
        self.fabric.snap_static(&mut w);
        let dyn_offset = w.position() as u64;
        w.patch_u64(dyn_patch, dyn_offset);
        // Dynamic section.
        w.bool(self.exited);
        w.u64(self.quiet_cycles);
        w.u64(self.cursor.cycle);
        w.u64(self.cursor.retired);
        w.u64(self.cursor.link_hops);
        self.cursor.stalls.snap(&mut w);
        self.stats.snap(&mut w);
        w.seq(self.cores.len());
        for core in &self.cores {
            core.snap(&mut w);
        }
        self.mem.snap(&mut w);
        self.fabric.snap_dyn(&mut w);
        MachineState::from_bytes(w.into_bytes()).expect("a freshly written snapshot parses")
    }

    /// Reconstructs a machine from a [`MachineState`], bit-identical to
    /// the one that produced it: `restore(m.snapshot())` then running `M`
    /// cycles yields the same stats, trace events and memory as running
    /// the original `M` more cycles.
    ///
    /// # Errors
    ///
    /// Rejects truncated or internally inconsistent state with
    /// [`SnapError`]; a valid snapshot never fails.
    pub fn restore(state: &MachineState) -> Result<Machine, SnapError> {
        let mut r = SnapReader::new(state.as_bytes());
        let cycle = r.u64()?;
        let header_cores = r.u64()?;
        let _dyn_offset = r.u64()?;
        // Static section.
        let cfg = LbpConfig::unsnap(&mut r)?;
        if cfg.cores as u64 != header_cores {
            return Err(SnapError::Corrupt(format!(
                "header says {header_cores} cores, configuration says {}",
                cfg.cores
            )));
        }
        let mut pending_faults = Vec::new();
        for _ in 0..r.seq()? {
            let spec = r.str()?;
            pending_faults.push(Fault::parse(&spec).map_err(SnapError::Corrupt)?);
        }
        let faults_applied = r.u64()?;
        let (drop_nth, delay_nth, fabric_faults) = Fabric::unsnap_static(&mut r)?;
        // Dynamic section.
        let exited = r.bool()?;
        let quiet_cycles = r.u64()?;
        let cursor = SampleCursor {
            cycle: r.u64()?,
            retired: r.u64()?,
            link_hops: r.u64()?,
            stalls: CoreStalls::unsnap(&mut r)?,
        };
        let stats = Stats::unsnap(&mut r)?;
        let ncores = r.seq()?;
        if ncores != cfg.cores {
            return Err(SnapError::Corrupt(format!(
                "snapshot holds {ncores} cores, configuration says {}",
                cfg.cores
            )));
        }
        let cores = (0..ncores)
            .map(|_| Core::unsnap(&mut r))
            .collect::<Result<Vec<_>, _>>()?;
        let mem = MemSys::unsnap(&mut r)?;
        let fabric = Fabric::unsnap_dyn(&mut r, drop_nth, delay_nth, fabric_faults)?;
        r.finish()?;
        Ok(Machine {
            cfg,
            cores,
            mem,
            fabric,
            stats,
            trace: Trace::new(),
            sink: None,
            prof: None,
            race: None,
            cursor,
            cycle,
            exited,
            pending_faults,
            faults_applied,
            quiet_cycles,
        })
    }

    /// Advances the machine by one cycle.
    pub fn tick(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        let now = self.cycle;
        // 0. Cycle-triggered fault injection (validated at construction).
        if !self.pending_faults.is_empty() {
            self.apply_due_faults();
        }
        // 1. Links move one hop.
        self.fabric.tick();
        self.mem.net.tick();
        // 2. Deliver arrivals to harts.
        self.deliver()?;
        // 3. Core pipelines.
        for c in 0..self.cores.len() {
            let mut env = Env {
                mem: &mut self.mem,
                fabric: &mut self.fabric,
                stats: &mut self.stats,
                trace: &mut self.trace,
                trace_on: self.cfg.trace,
                sink: self.sink.as_deref_mut().map(|s| s as &mut dyn TraceSink),
                lat: self.cfg.latencies,
                now,
                cores: self.cfg.cores,
                exited: &mut self.exited,
                prof: self.prof.as_deref_mut(),
                race: self.race.as_deref_mut(),
            };
            self.cores[c].tick(&mut env)?;
        }
        // 4. Banks serve their ports.
        self.mem.tick(now, self.prof.as_deref_mut())?;
        self.stats.cycles = self.cycle;
        self.stats.link_hops = self.mem.net.hops + self.fabric.hops;
        self.stats.bank_conflicts = self.mem.conflicts;
        self.stats.link_contention = self.mem.net.contended + self.fabric.contended;
        // 5. Interval sampler.
        let interval = self.cfg.sample_interval;
        if interval > 0 && self.cycle.is_multiple_of(interval) {
            self.take_sample();
        }
        Ok(())
    }

    /// Applies every pending fault whose trigger cycle has arrived.
    fn apply_due_faults(&mut self) {
        let now = self.cycle;
        let mut i = 0;
        while i < self.pending_faults.len() {
            if self.pending_faults[i].cycle().is_some_and(|c| c <= now) {
                let fault = self.pending_faults.remove(i);
                self.apply_fault(fault);
                self.faults_applied += 1;
            } else {
                i += 1;
            }
        }
    }

    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::FlipReg { hart, reg, bit, .. } => {
                let h = self.hart_mut(hart);
                let phys = h.rat[reg.index()] as usize;
                h.prf[phys].value ^= 1 << bit;
            }
            Fault::FlipMem { addr, bit, .. } => self.mem.flip_shared_bit(addr, bit),
            Fault::CorruptInstr { pc, xor, .. } => self.mem.corrupt_code(pc, xor),
            Fault::DropMsg { .. } | Fault::DelayMsg { .. } => {
                unreachable!("message faults are handled inside the fabric")
            }
        }
    }

    /// Appends one [`IntervalSample`] covering the cycles since the last
    /// sample (or the start of the run).
    fn take_sample(&mut self) {
        let retired = self.stats.retired();
        let stalls = self.stats.stalls_total();
        if let Some(p) = self.prof.as_deref_mut() {
            p.take_interval(self.cycle, self.cycle - self.cursor.cycle);
        }
        self.stats.samples.push(IntervalSample {
            cycle: self.cycle,
            interval: self.cycle - self.cursor.cycle,
            retired: retired - self.cursor.retired,
            link_hops: self.stats.link_hops - self.cursor.link_hops,
            stalls: stalls.since(&self.cursor.stalls),
        });
        self.cursor = SampleCursor {
            cycle: self.cycle,
            retired,
            link_hops: self.stats.link_hops,
            stalls,
        };
    }

    /// Delivers network responses and fabric messages that completed their
    /// last hop.
    fn deliver(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        for c in 0..self.cores.len() as u32 {
            // Memory responses: from the network and from the local ports.
            let mut resps = self.mem.net.take_core_inbox(c);
            resps.extend(self.mem.take_staged(c));
            for msg in resps {
                self.deliver_mem(c, msg)?;
            }
            // Fork/join fabric messages.
            let msgs = self.fabric.take_inbox(c);
            for msg in msgs {
                self.deliver_core_msg(c, msg, now)?;
            }
        }
        Ok(())
    }

    fn hart_mut(&mut self, id: HartId) -> &mut HartCtx {
        &mut self.cores[id.core() as usize].harts[id.local() as usize]
    }

    fn emit(&mut self, hart: HartId, kind: EventKind) {
        if !self.cfg.trace && self.sink.is_none() {
            return;
        }
        let event = Event {
            cycle: self.cycle,
            hart,
            kind,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(&event);
        }
        if self.cfg.trace {
            self.trace.push(event.cycle, event.hart, event.kind);
        }
    }

    /// Decrements a hart's outstanding-memory counter, turning underflow
    /// (a response nobody waits for, e.g. after a fault scrambled the
    /// protocol) into a structured error instead of a panic.
    fn mem_completion(&mut self, hart: HartId, what: &str) -> Result<(), SimError> {
        let h = self.hart_mut(hart);
        h.in_flight_mem = h
            .in_flight_mem
            .checked_sub(1)
            .ok_or_else(|| SimError::Protocol {
                hart,
                what: format!("{what} arrived with no outstanding memory access"),
            })?;
        Ok(())
    }

    fn deliver_mem(&mut self, _core: u32, msg: NetMsg) -> Result<(), SimError> {
        match msg {
            NetMsg::ReadResp { addr, value, hart } => {
                self.mem_completion(hart, "a load response")?;
                let h = self.hart_mut(hart);
                let rb = h.rb.as_mut().ok_or_else(|| SimError::Protocol {
                    hart,
                    what: format!("load response for {addr:#010x} with no result buffer"),
                })?;
                debug_assert!(matches!(rb.wait, RbWait::Mem));
                rb.wait = RbWait::Done { value: Some(value) };
                self.emit(hart, EventKind::MemResp { addr });
            }
            NetMsg::WriteAck { addr, hart } => {
                self.mem_completion(hart, "a store acknowledgement")?;
                self.emit(hart, EventKind::MemResp { addr });
            }
            other => {
                return Err(SimError::Protocol {
                    hart: HartId::FIRST,
                    what: format!("request {other:?} delivered to a core"),
                })
            }
        }
        Ok(())
    }

    fn deliver_core_msg(&mut self, core: u32, msg: CoreMsg, now: u64) -> Result<(), SimError> {
        // Rendezvous deliveries are synchronization edges for the race
        // collector: the recipient is provably not executing when they
        // arrive (blocked on the fork result, not yet started, or waiting
        // in `p_ret`), so it happens-after everything recorded so far.
        // `CvWrite`/`CvAck`/`EndSignal`/`Result` can reach a hart that is
        // still running and must NOT count — they would fabricate an
        // ordering for accesses already in flight.
        if let Some(r) = self.race.as_deref_mut() {
            match &msg {
                CoreMsg::ForkReply { to, .. }
                | CoreMsg::Start { to, .. }
                | CoreMsg::Join { to, .. } => r.sync(*to),
                CoreMsg::ForkReq { .. }
                | CoreMsg::CvWrite { .. }
                | CoreMsg::CvAck { .. }
                | CoreMsg::EndSignal { .. }
                | CoreMsg::Result { .. } => {}
            }
        }
        match msg {
            CoreMsg::ForkReq { from } => {
                self.cores[core as usize].alloc_q.push_back(from);
            }
            CoreMsg::ForkReply { to, child } => {
                let rb = self
                    .hart_mut(to)
                    .rb
                    .as_mut()
                    .ok_or_else(|| SimError::Protocol {
                        hart: to,
                        what: "fork reply with no pending p_fn".to_owned(),
                    })?;
                debug_assert!(matches!(rb.wait, RbWait::Fork));
                rb.wait = RbWait::Done {
                    value: Some(child.global()),
                };
            }
            CoreMsg::Start { to, pc } => {
                let h = self.hart_mut(to);
                if h.state != HartState::Reserved {
                    return Err(SimError::Protocol {
                        hart: to,
                        what: format!(
                            "start pc {pc:#x} delivered to a hart in state {:?}",
                            h.state
                        ),
                    });
                }
                h.state = HartState::Running;
                h.pc = Some(pc);
                h.unsuspend_now();
                self.emit(to, EventKind::Start { pc });
                if let Some(p) = self.prof.as_deref_mut() {
                    p.event(now, ProfEventKind::Start { hart: to, pc });
                }
            }
            CoreMsg::CvWrite {
                to,
                offset,
                value,
                from,
            } => {
                self.mem.cv_write(to, offset, value)?;
                // Acknowledge toward the writer (feeds its p_syncm).
                self.fabric.send(core, CoreMsg::CvAck { to: from });
            }
            CoreMsg::CvAck { to } => {
                self.mem_completion(to, "a cv-write acknowledgement")?;
            }
            CoreMsg::EndSignal { to } => {
                self.hart_mut(to).end_signal = true;
            }
            CoreMsg::Join { to, pc } => {
                let h = self.hart_mut(to);
                if h.state != HartState::WaitingJoin {
                    return Err(SimError::Protocol {
                        hart: to,
                        what: format!(
                            "join address {pc:#x} delivered to a hart in state {:?}",
                            h.state
                        ),
                    });
                }
                h.state = HartState::Running;
                h.pc = Some(pc);
                h.unsuspend_now();
                h.end_signal = true; // everything sequentially prior committed
                self.stats.joins += 1;
                self.emit(to, EventKind::Join { pc });
                if let Some(p) = self.prof.as_deref_mut() {
                    p.event(now, ProfEventKind::Join { hart: to, pc });
                }
            }
            CoreMsg::Result { to, slot, value } => {
                let h = self.hart_mut(to);
                let slot_q = h
                    .recv
                    .get_mut(slot as usize)
                    .ok_or_else(|| SimError::Protocol {
                        hart: to,
                        what: format!("p_swre to out-of-range result slot {slot}"),
                    })?;
                slot_q.push_back(value);
                self.emit(to, EventKind::ResultDelivered { slot, value });
            }
        }
        let _ = now;
        Ok(())
    }

    /// The architectural value of a register of a hart, read through its
    /// renaming table (test/debug helper; meaningful when the hart's
    /// pipeline is drained).
    pub fn reg(&self, hart: HartId, reg: lbp_isa::Reg) -> u32 {
        let h = &self.cores[hart.core() as usize].harts[hart.local() as usize];
        h.prf[h.rat[reg.index()] as usize].value
    }

    /// An FNV-1a-64 hash of the machine's *architectural* state: hart
    /// states, program counters, architectural registers (read through the
    /// renaming tables), receive slots, end signals, team successors,
    /// per-hart retired counts, the architectural event counters
    /// (forks/joins/muldiv/local/remote accesses) and the full memory
    /// image — but **no** timing state (cycles, stalls, hops, conflicts,
    /// in-flight messages, pipeline contents).
    ///
    /// This is the hybrid-handoff equality oracle: a fast-forwarded
    /// warm-then-measure run of a race-free program must end with the
    /// same architectural hash as the pure cycle-exact run. Meaningful
    /// when the machine is quiescent (exited or at a cycle boundary with
    /// drained pipelines).
    pub fn arch_hash(&self) -> u64 {
        let mut h = ArchHasher::new();
        h.u8(self.exited as u8);
        for core in &self.cores {
            for hart in &core.harts {
                let tag = match hart.state {
                    HartState::Free => 0u8,
                    HartState::Reserved => 1,
                    HartState::Running => 2,
                    HartState::WaitingJoin => 3,
                };
                h.u8(tag);
                if hart.state == HartState::Free {
                    continue; // dead registers carry stale values
                }
                match hart.pc {
                    Some(pc) => {
                        h.u8(1);
                        h.u32(pc);
                    }
                    None => h.u8(0),
                }
                for r in 0..32 {
                    h.u32(hart.prf[hart.rat[r] as usize].value);
                }
                for q in &hart.recv {
                    h.u64(q.len() as u64);
                    for &v in q {
                        h.u32(v);
                    }
                }
                h.u8(hart.end_signal as u8);
                match hart.team_succ {
                    Some(succ) => {
                        h.u8(1);
                        h.u32(succ.global());
                    }
                    None => h.u8(0),
                }
            }
        }
        for &n in &self.stats.retired_per_hart {
            h.u64(n);
        }
        h.u64(self.stats.forks);
        h.u64(self.stats.joins);
        h.u64(self.stats.muldiv_ops);
        h.u64(self.stats.local_accesses);
        h.u64(self.stats.remote_accesses);
        for bank in self.mem.local_banks() {
            h.bytes(bank);
        }
        for bank in self.mem.shared_banks() {
            h.bytes(bank);
        }
        h.finish()
    }
}

/// FNV-1a-64 over architectural state (same constants as `lbp-snap`).
struct ArchHasher(u64);

impl ArchHasher {
    fn new() -> ArchHasher {
        ArchHasher(0xcbf2_9ce4_8422_2325)
    }
    fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.u8(b);
        }
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Builds a cycle-exact [`Machine`] from a functional engine's
/// architectural state — the hybrid handoff behind
/// [`FastEngine::materialize`](crate::fast::FastEngine::materialize).
///
/// The produced machine is indistinguishable from one that ran the warm
/// phase cycle-exactly and then had every timing counter zeroed: all
/// pipelines empty, no message in flight, the clock at the engine's
/// virtual cycle, and the per-core accounting invariant
/// (`retired + stalls == cycles`) preserved by padding the synthetic
/// stall budget into the `idle` bucket.
pub(crate) fn materialize_from_fast(
    fast: &crate::fast::FastEngine,
    image: &Image,
) -> Result<Machine, SimError> {
    let cfg = fast.cfg().clone();
    let vcycle = fast.virtual_cycle();
    // The hybrid timeline cannot honor every fault plan: message faults
    // count fabric messages the warm phase never sends, and a
    // cycle-triggered fault inside the warm window would have hit a state
    // the fast engine never modeled. Refuse both up front.
    for fault in &cfg.faults.faults {
        match fault {
            Fault::DropMsg { .. } | Fault::DelayMsg { .. } => {
                return Err(SimError::Protocol {
                    hart: HartId::FIRST,
                    what: format!(
                        "fault `{fault}` counts fabric messages, which functional \
                         fast-forwarding does not model; run cycle-exact from cycle 0"
                    ),
                });
            }
            _ => {
                if vcycle > 0 && fault.cycle().is_some_and(|c| c <= vcycle) {
                    return Err(SimError::Protocol {
                        hart: HartId::FIRST,
                        what: format!(
                            "fault `{fault}` triggers at cycle {} but the functional warm \
                             phase already covers cycles 1..={vcycle}; schedule it after the \
                             handoff or shrink --warm",
                            fault.cycle().unwrap_or(0)
                        ),
                    });
                }
            }
        }
    }
    let mut m = Machine::new(cfg, image)?;
    m.cycle = vcycle;
    m.stats.cycles = vcycle;
    let (forks, joins, muldiv_ops, local_accesses, remote_accesses) = fast.counters();
    m.stats.forks = forks;
    m.stats.joins = joins;
    m.stats.muldiv_ops = muldiv_ops;
    m.stats.local_accesses = local_accesses;
    m.stats.remote_accesses = remote_accesses;
    m.stats
        .retired_per_hart
        .copy_from_slice(fast.retired_per_hart());
    for c in 0..m.cfg.cores {
        let retired = m.stats.retired_by_core(c);
        m.stats.stalls_per_core[c] = CoreStalls {
            idle: vcycle - retired,
            ..CoreStalls::default()
        };
    }
    m.mem.local_served = local_accesses;
    m.mem.remote_served = remote_accesses;
    let harts = m.cfg.harts();
    for hi in 0..harts {
        let view = fast.hart_view(hi);
        let id = HartId::new(hi as u32);
        let h = m.hart_mut(id);
        h.state = view.state;
        h.pc = view.pc;
        h.fetch_suspended = view.pc.is_none();
        h.resume_at = 0;
        h.end_signal = view.end_signal;
        h.team_succ = view.team_succ;
        if view.state != HartState::Free {
            // The renaming table of an untouched hart is the identity, so
            // architectural register r lives in physical register r.
            for r in 0..32 {
                let phys = h.rat[r] as usize;
                h.prf[phys].value = view.regs[r];
                h.prf[phys].ready = true;
            }
        }
        for (q, src) in h.recv.iter_mut().zip(view.recv) {
            q.clone_from(src);
        }
    }
    for (core, q) in fast.free_queues().iter().enumerate() {
        m.cores[core].free_q.clone_from(q);
    }
    let (local, shared) = fast.bank_contents();
    for (dst, src) in m.mem.local_banks_mut().iter_mut().zip(local) {
        dst.copy_from_slice(src);
    }
    for (dst, src) in m.mem.shared_banks_mut().iter_mut().zip(shared) {
        dst.copy_from_slice(src);
    }
    m.cursor = SampleCursor {
        cycle: vcycle,
        retired: m.stats.retired(),
        link_hops: 0,
        stalls: m.stats.stalls_total(),
    };
    Ok(m)
}

/// Rejects fault plans that target something outside the machine, so the
/// injectors themselves never need bounds checks.
fn validate_fault_plan(cfg: &LbpConfig, image: &Image) -> Result<(), SimError> {
    let bad = |fault: &Fault, why: &str| -> SimError {
        SimError::Protocol {
            hart: HartId::FIRST,
            what: format!("invalid fault plan: `{fault}`: {why}"),
        }
    };
    for fault in &cfg.faults.faults {
        match *fault {
            Fault::FlipReg { hart, reg, bit, .. } => {
                if hart.global() as usize >= cfg.harts() {
                    return Err(bad(fault, "no such hart in this configuration"));
                }
                if reg.is_zero() {
                    return Err(bad(fault, "x0 is hard-wired to zero"));
                }
                if bit >= 32 {
                    return Err(bad(fault, "registers have 32 bits"));
                }
            }
            Fault::FlipMem { addr, bit, .. } => {
                if bit >= 32 {
                    return Err(bad(fault, "memory words have 32 bits"));
                }
                if lbp_isa::Region::of(addr) != lbp_isa::Region::Shared
                    || ((addr - lbp_isa::SHARED_BASE) as u64) >= cfg.shared_bytes()
                {
                    return Err(bad(fault, "address is outside the shared space"));
                }
            }
            Fault::CorruptInstr { pc, .. } => {
                if !pc.is_multiple_of(4) || (pc / 4) as usize >= image.text.len() {
                    return Err(bad(fault, "pc is not a code word of the image"));
                }
            }
            Fault::DropMsg { .. } => {}
            Fault::DelayMsg { cycles, .. } => {
                if cycles == 0 {
                    return Err(bad(fault, "a delay of 0 cycles injects nothing"));
                }
            }
        }
    }
    Ok(())
}
