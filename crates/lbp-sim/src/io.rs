//! Scripted I/O devices (paper §6, Figs. 16-17).
//!
//! LBP is non-interruptible: devices never raise interrupts. Controller
//! harts *poll* memory-mapped device registers and move values with
//! `p_swre`/`p_lwre` pairs. Devices here are scripted — each input value
//! becomes visible at a programmed (possibly jittered) cycle — which lets
//! tests demonstrate the paper's claim that *semantic* determinism
//! survives non-deterministic device timing.
//!
//! Address map: device `i` occupies 16 bytes at `IO_BASE + 16*i`:
//! offset 0 reads the input register (`0x8000_0000 | value` when ready,
//! consuming the value; `0` otherwise) and offset 4 writes the output
//! register.

use std::collections::VecDeque;

use lbp_isa::IO_BASE;

use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// Bytes of address space per device.
pub const DEVICE_STRIDE: u32 = 16;

/// A scripted input device: each entry becomes readable at its cycle.
#[derive(Debug, Clone, Default)]
pub struct InputDevice {
    /// `(ready_cycle, value)` pairs, in schedule order.
    schedule: VecDeque<(u64, u32)>,
}

impl InputDevice {
    /// Creates a device from `(ready_cycle, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the cycles are not non-decreasing.
    pub fn scripted(schedule: impl IntoIterator<Item = (u64, u32)>) -> InputDevice {
        let schedule: VecDeque<_> = schedule.into_iter().collect();
        assert!(
            schedule
                .iter()
                .zip(schedule.iter().skip(1))
                .all(|(a, b)| a.0 <= b.0),
            "input schedule must be time-ordered"
        );
        InputDevice { schedule }
    }

    /// Polls the device at `now`: consumes and returns the head value if
    /// its ready-cycle has passed.
    fn poll(&mut self, now: u64) -> u32 {
        match self.schedule.front() {
            Some(&(at, value)) if at <= now => {
                self.schedule.pop_front();
                0x8000_0000 | value
            }
            _ => 0,
        }
    }
}

/// An output device recording every value written to it, with the cycle.
#[derive(Debug, Clone, Default)]
pub struct OutputDevice {
    received: Vec<(u64, u32)>,
}

impl OutputDevice {
    /// The `(cycle, value)` pairs written so far.
    pub fn received(&self) -> &[(u64, u32)] {
        &self.received
    }

    /// Just the values, in write order.
    pub fn values(&self) -> Vec<u32> {
        self.received.iter().map(|&(_, v)| v).collect()
    }
}

/// The memory-mapped I/O bus.
#[derive(Debug, Clone, Default)]
pub struct IoBus {
    inputs: Vec<InputDevice>,
    outputs: Vec<OutputDevice>,
}

impl IoBus {
    /// A bus with no devices (I/O accesses fault).
    pub fn new() -> IoBus {
        IoBus::default()
    }

    /// Attaches an input device; returns its index.
    pub fn add_input(&mut self, dev: InputDevice) -> usize {
        self.inputs.push(dev);
        self.inputs.len() - 1
    }

    /// Attaches an output device; returns its index.
    pub fn add_output(&mut self) -> usize {
        self.outputs.push(OutputDevice::default());
        self.outputs.len() - 1
    }

    /// The output device at `index`.
    pub fn output(&self, index: usize) -> &OutputDevice {
        &self.outputs[index]
    }

    /// The register address of input device `i`.
    pub fn input_addr(i: usize) -> u32 {
        IO_BASE + DEVICE_STRIDE * i as u32
    }

    /// The register address of output device `i`.
    pub fn output_addr(i: usize) -> u32 {
        IO_BASE + DEVICE_STRIDE * i as u32 + 4
    }

    /// Serves a load from the I/O region. Returns `None` for an unmapped
    /// register.
    pub fn read(&mut self, addr: u32, now: u64) -> Option<u32> {
        let off = addr - IO_BASE;
        let (dev, reg) = ((off / DEVICE_STRIDE) as usize, off % DEVICE_STRIDE);
        match reg {
            0 => Some(self.inputs.get_mut(dev)?.poll(now)),
            _ => None,
        }
    }

    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.inputs.len());
        for dev in &self.inputs {
            w.seq(dev.schedule.len());
            for &(at, value) in &dev.schedule {
                w.u64(at);
                w.u32(value);
            }
        }
        w.seq(self.outputs.len());
        for dev in &self.outputs {
            w.seq(dev.received.len());
            for &(at, value) in &dev.received {
                w.u64(at);
                w.u32(value);
            }
        }
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<IoBus, SnapError> {
        let mut bus = IoBus::new();
        for _ in 0..r.seq()? {
            let mut schedule = VecDeque::new();
            for _ in 0..r.seq()? {
                schedule.push_back((r.u64()?, r.u32()?));
            }
            bus.inputs.push(InputDevice { schedule });
        }
        for _ in 0..r.seq()? {
            let mut received = Vec::new();
            for _ in 0..r.seq()? {
                received.push((r.u64()?, r.u32()?));
            }
            bus.outputs.push(OutputDevice { received });
        }
        Ok(bus)
    }

    /// Serves a store to the I/O region. Returns `None` for an unmapped
    /// register.
    pub fn write(&mut self, addr: u32, value: u32, now: u64) -> Option<()> {
        let off = addr - IO_BASE;
        let (dev, reg) = ((off / DEVICE_STRIDE) as usize, off % DEVICE_STRIDE);
        match reg {
            4 => {
                self.outputs.get_mut(dev)?.received.push((now, value));
                Some(())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_becomes_ready_at_cycle() {
        let mut bus = IoBus::new();
        bus.add_input(InputDevice::scripted([(10, 42)]));
        let addr = IoBus::input_addr(0);
        assert_eq!(bus.read(addr, 9), Some(0));
        assert_eq!(bus.read(addr, 10), Some(0x8000_0000 | 42));
        // Consumed: next poll sees nothing.
        assert_eq!(bus.read(addr, 11), Some(0));
    }

    #[test]
    fn output_records_cycle_and_value() {
        let mut bus = IoBus::new();
        bus.add_output();
        bus.write(IoBus::output_addr(0), 7, 100).unwrap();
        assert_eq!(bus.output(0).received(), &[(100, 7)]);
        assert_eq!(bus.output(0).values(), vec![7]);
    }

    #[test]
    fn unmapped_registers_are_none() {
        let mut bus = IoBus::new();
        assert_eq!(bus.read(IoBus::input_addr(0), 0), None);
        assert_eq!(bus.read(IO_BASE + 8, 0), None);
        assert_eq!(bus.write(IO_BASE, 1, 0), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn disordered_schedule_rejected() {
        let _ = InputDevice::scripted([(10, 1), (5, 2)]);
    }
}
