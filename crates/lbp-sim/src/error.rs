//! Simulation errors.

use std::fmt;

use lbp_isa::HartId;

use crate::bank::MemFault;

/// A fatal simulation error. LBP has no traps or interrupts, so any of
/// these conditions would hang or corrupt the real hardware; the simulator
/// surfaces them as errors instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory access faulted.
    Mem(MemFault),
    /// An instruction word failed to decode.
    Decode {
        /// The fetch address.
        pc: u32,
        /// The undecodable word.
        word: u32,
        /// The fetching hart.
        hart: HartId,
    },
    /// The X_PAR fork/join protocol was violated (e.g. `p_fn` on the last
    /// core, a start pc delivered to a hart that was never allocated, a
    /// `p_swre` sent forward in the sequential order).
    Protocol {
        /// The offending hart.
        hart: HartId,
        /// Description of the violation.
        what: String,
    },
    /// The run did not exit within the cycle budget.
    Timeout {
        /// The budget that was exhausted.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(m) => write!(f, "{m}"),
            SimError::Decode { pc, word, hart } => write!(
                f,
                "hart {hart} fetched undecodable word {word:#010x} at pc {pc:#010x}"
            ),
            SimError::Protocol { hart, what } => {
                write!(f, "hart {hart} violated the fork/join protocol: {what}")
            }
            SimError::Timeout { cycles } => {
                write!(f, "run did not exit within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemFault> for SimError {
    fn from(m: MemFault) -> SimError {
        SimError::Mem(m)
    }
}
