//! Simulation errors.

use std::fmt;

use lbp_isa::HartId;

use crate::bank::MemFault;

/// One hart of a deadlocked machine and the event it is stuck on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedHart {
    /// The blocked hart.
    pub hart: HartId,
    /// Human-readable description of what the hart waits for.
    pub waiting_on: String,
}

impl fmt::Display for BlockedHart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hart {} waiting for {}", self.hart, self.waiting_on)
    }
}

/// A fatal simulation error. LBP has no traps or interrupts, so any of
/// these conditions would hang or corrupt the real hardware; the simulator
/// surfaces them as errors instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory access faulted.
    Mem(MemFault),
    /// An instruction word failed to decode.
    Decode {
        /// The fetch address.
        pc: u32,
        /// The undecodable word.
        word: u32,
        /// The fetching hart.
        hart: HartId,
    },
    /// The X_PAR fork/join protocol was violated (e.g. `p_fn` on the last
    /// core, a start pc delivered to a hart that was never allocated, a
    /// `p_swre` sent forward in the sequential order).
    Protocol {
        /// The offending hart.
        hart: HartId,
        /// Description of the violation.
        what: String,
    },
    /// The machine quiesced without exiting: every hart is blocked on an
    /// event that can no longer happen (no message in flight, no bank
    /// operation pending). On real LBP hardware this hangs forever; the
    /// detector reports it the moment it becomes certain instead of
    /// burning the remaining cycle budget.
    Deadlock {
        /// The cycle the deadlock was detected at.
        cycle: u64,
        /// Every blocked hart and what it waits on. Empty when all harts
        /// ended without any of them executing the exit `p_ret`.
        blocked: Vec<BlockedHart>,
    },
    /// The run did not exit within the cycle budget.
    Timeout {
        /// The budget that was exhausted.
        cycles: u64,
    },
}

impl SimError {
    /// A short machine-readable class name, stable across releases: used
    /// for the `error_class` field of `lbp-dump-v1` dumps and to derive
    /// `lbp-run`'s per-class process exit codes.
    pub fn class(&self) -> &'static str {
        match self {
            SimError::Mem(_) => "mem",
            SimError::Decode { .. } => "decode",
            SimError::Protocol { .. } => "protocol",
            SimError::Deadlock { .. } => "deadlock",
            SimError::Timeout { .. } => "timeout",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(m) => write!(f, "{m}"),
            SimError::Decode { pc, word, hart } => write!(
                f,
                "hart {hart} fetched undecodable word {word:#010x} at pc {pc:#010x}"
            ),
            SimError::Protocol { hart, what } => {
                write!(f, "hart {hart} violated the fork/join protocol: {what}")
            }
            SimError::Deadlock { cycle, blocked } => {
                if blocked.is_empty() {
                    write!(
                        f,
                        "deadlock at cycle {cycle}: every hart ended but the program never \
                         executed its exit p_ret"
                    )
                } else {
                    write!(
                        f,
                        "deadlock at cycle {cycle}: {} hart(s) blocked: ",
                        blocked.len()
                    )?;
                    for (i, b) in blocked.iter().enumerate() {
                        if i > 0 {
                            write!(f, "; ")?;
                        }
                        write!(f, "{b}")?;
                    }
                    Ok(())
                }
            }
            SimError::Timeout { cycles } => {
                write!(f, "run did not exit within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemFault> for SimError {
    fn from(m: MemFault) -> SimError {
        SimError::Mem(m)
    }
}
