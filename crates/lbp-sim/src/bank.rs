//! Memory banks and the per-core memory ports.
//!
//! Each core owns three banks (paper Fig. 13): a code bank (a copy of the
//! program image; read by the fetch stage, one word per cycle, never
//! contended), a local bank (hart stacks and cv frames, private to the
//! core) and one slice of the distributed shared memory. Shared banks are
//! dual-ported: the local port serves the owning core, the network port
//! serves remote requests arriving through the r1 router.

use std::collections::VecDeque;

use lbp_isa::{HartId, Region, HARTS_PER_CORE, LOCAL_BASE, SHARED_BASE};

use crate::config::{LbpConfig, CV_FRAME_BYTES};
use crate::io::IoBus;
use crate::msg::NetMsg;
use crate::network::Network;
use crate::prof::ProfData;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// A fatal memory fault. LBP has no traps: a bad access ends the
/// simulation with an error describing the offending access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Address not mapped to any bank of this configuration.
    Unmapped {
        /// The faulting address.
        addr: u32,
        /// The hart that issued the access.
        hart: HartId,
    },
    /// Access not aligned to its size.
    Unaligned {
        /// The faulting address.
        addr: u32,
        /// The access size.
        size: u8,
        /// The hart that issued the access.
        hart: HartId,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::Unmapped { addr, hart } => {
                write!(f, "hart {hart} accessed unmapped address {addr:#010x}")
            }
            MemFault::Unaligned { addr, size, hart } => write!(
                f,
                "hart {hart} made a misaligned {size}-byte access at {addr:#010x}"
            ),
        }
    }
}

impl std::error::Error for MemFault {}

/// A queued request at a bank port, stamped with its arrival cycle so the
/// bank serves it no earlier than the following cycle.
#[derive(Debug, Clone, Copy)]
struct Ported {
    msg: NetMsg,
    arrived: u64,
}

/// All memory state of the machine plus the per-core local ports.
#[derive(Debug)]
pub struct MemSys {
    cores: usize,
    local_bank_bytes: u32,
    shared_bank_bytes: u32,
    /// Per-core local banks (stacks, cv frames).
    local: Vec<Vec<u8>>,
    /// Per-core shared-bank slices.
    shared: Vec<Vec<u8>>,
    /// The code image (identical copy in every core's code bank).
    code: Vec<u32>,
    /// Local-bank port queue, one per core (own loads/stores/`p_lwcv`).
    local_q: Vec<VecDeque<Ported>>,
    /// Own-shared-slice local port queue, one per core.
    shared_q: Vec<VecDeque<Ported>>,
    /// Responses completed by local ports, delivered next cycle.
    staged: Vec<Vec<NetMsg>>,
    /// The r1/r2/r3 network serving remote shared accesses.
    pub net: Network,
    /// Memory-mapped devices (served through the local ports).
    pub io: IoBus,
    /// Count of accesses served by local ports.
    pub local_served: u64,
    /// Count of accesses served by network ports.
    pub remote_served: u64,
    /// Request-cycles spent waiting at a busy bank port: each cycle, every
    /// ready request a port could not serve (because the port serves one
    /// request per cycle) adds one. This measures bank conflicts.
    pub conflicts: u64,
    /// The current cycle, updated by [`MemSys::tick`] (device timing).
    now: u64,
}

impl MemSys {
    /// Builds the memory system and loads the program image copies.
    pub fn new(cfg: &LbpConfig, text: &[u32], data: &[u8]) -> Result<MemSys, MemFault> {
        let cores = cfg.cores;
        let mut mem = MemSys {
            cores,
            local_bank_bytes: cfg.local_bank_bytes,
            shared_bank_bytes: cfg.shared_bank_bytes,
            local: (0..cores)
                .map(|_| vec![0; cfg.local_bank_bytes as usize])
                .collect(),
            shared: (0..cores)
                .map(|_| vec![0; cfg.shared_bank_bytes as usize])
                .collect(),
            code: text.to_vec(),
            local_q: (0..cores).map(|_| VecDeque::new()).collect(),
            shared_q: (0..cores).map(|_| VecDeque::new()).collect(),
            staged: (0..cores).map(|_| Vec::new()).collect(),
            net: Network::new(cores, cfg.shared_bank_bytes),
            io: IoBus::new(),
            local_served: 0,
            remote_served: 0,
            conflicts: 0,
            now: 0,
        };
        // Distribute the initialized data over the shared banks.
        for (i, &byte) in data.iter().enumerate() {
            let addr = SHARED_BASE + i as u32;
            mem.poke_shared(addr, byte, HartId::FIRST)?;
        }
        Ok(mem)
    }

    /// The shared bank (== core number) serving a shared address.
    pub fn shared_bank_of(&self, addr: u32) -> u32 {
        (addr - SHARED_BASE) / self.shared_bank_bytes
    }

    /// Fetches a code word (used by the fetch stage; no contention).
    pub fn fetch(&self, pc: u32, hart: HartId) -> Result<u32, MemFault> {
        if !pc.is_multiple_of(4) {
            return Err(MemFault::Unaligned {
                addr: pc,
                size: 4,
                hart,
            });
        }
        self.code
            .get((pc / 4) as usize)
            .copied()
            .ok_or(MemFault::Unmapped { addr: pc, hart })
    }

    /// The fixed continuation-value frame base address of a hart (within
    /// its core's local bank).
    pub fn cv_base(&self, hart: HartId) -> u32 {
        let stack = self.local_bank_bytes / HARTS_PER_CORE as u32;
        LOCAL_BASE + (hart.local() + 1) * stack - CV_FRAME_BYTES
    }

    /// The per-core local banks (hybrid-handoff materialization and
    /// architectural hashing).
    pub(crate) fn local_banks(&self) -> &[Vec<u8>] {
        &self.local
    }

    /// The per-core shared-bank slices (hybrid-handoff materialization
    /// and architectural hashing).
    pub(crate) fn shared_banks(&self) -> &[Vec<u8>] {
        &self.shared
    }

    /// Mutable per-core local banks (hybrid-handoff materialization).
    pub(crate) fn local_banks_mut(&mut self) -> &mut [Vec<u8>] {
        &mut self.local
    }

    /// Mutable per-core shared-bank slices (hybrid-handoff
    /// materialization).
    pub(crate) fn shared_banks_mut(&mut self) -> &mut [Vec<u8>] {
        &mut self.shared
    }

    /// Writes one byte directly into a shared bank (image loading).
    fn poke_shared(&mut self, addr: u32, byte: u8, hart: HartId) -> Result<(), MemFault> {
        let bank = self.shared_bank_of(addr) as usize;
        if bank >= self.cores {
            return Err(MemFault::Unmapped { addr, hart });
        }
        let off = ((addr - SHARED_BASE) % self.shared_bank_bytes) as usize;
        self.shared[bank][off] = byte;
        Ok(())
    }

    /// Enqueues a request on the owning core's local-bank port.
    pub fn local_request(&mut self, core: u32, msg: NetMsg, now: u64) {
        self.local_q[core as usize].push_back(Ported { msg, arrived: now });
    }

    /// Enqueues a request on the core's own shared-slice local port.
    pub fn shared_local_request(&mut self, core: u32, msg: NetMsg, now: u64) {
        self.shared_q[core as usize].push_back(Ported { msg, arrived: now });
    }

    /// Applies a cross-core `p_swcv` continuation-value write (the forward
    /// link's dedicated port into the local bank).
    pub fn cv_write(&mut self, to: HartId, offset: u32, value: u32) -> Result<(), MemFault> {
        let addr = self.cv_base(to) + offset;
        self.write_local(to.core(), addr, value, 4, to)
    }

    /// Takes the local-port responses staged for a core.
    pub fn take_staged(&mut self, core: u32) -> Vec<NetMsg> {
        std::mem::take(&mut self.staged[core as usize])
    }

    /// One cycle of bank service: each local port and each network port
    /// serves one request that arrived on an earlier cycle. With profiling
    /// enabled the shared-bank backlog (local shared-slice port plus
    /// network port) is also attributed to the requester's core in the
    /// bank-conflict matrix; local-bank (private) backlog stays out of the
    /// matrix, so the matrix totals at most `conflicts`.
    pub fn tick(&mut self, now: u64, mut prof: Option<&mut ProfData>) -> Result<(), MemFault> {
        self.now = now;
        for core in 0..self.cores as u32 {
            // Local-bank port.
            if let Some(p) = self.local_q[core as usize].front().copied() {
                if p.arrived < now {
                    self.local_q[core as usize].pop_front();
                    let resp = self.perform(core, p.msg, PortSide::Local)?;
                    self.staged[core as usize].push(resp);
                    self.local_served += 1;
                }
            }
            self.conflicts += Self::port_backlog(&self.local_q[core as usize], now);
            // Shared-slice local port.
            if let Some(p) = self.shared_q[core as usize].front().copied() {
                if p.arrived < now {
                    self.shared_q[core as usize].pop_front();
                    let resp = self.perform(core, p.msg, PortSide::Local)?;
                    self.staged[core as usize].push(resp);
                    self.local_served += 1;
                }
            }
            self.conflicts += Self::port_backlog(&self.shared_q[core as usize], now);
            if let Some(p) = prof.as_deref_mut() {
                for ported in self.shared_q[core as usize].iter() {
                    if ported.arrived < now {
                        p.bank_conflict(ported.msg.hart().core() as usize, core as usize, 1);
                    }
                }
            }
            // Network port of the shared bank.
            if let Some(msg) = self.net.bank_queue(core).pop_front() {
                let resp = self.perform(core, msg, PortSide::Network)?;
                self.net.send_from_bank(core, resp);
                self.remote_served += 1;
            }
            self.conflicts += self.net.bank_queue(core).len() as u64;
            if let Some(p) = prof.as_deref_mut() {
                for msg in self.net.bank_queue(core).iter() {
                    p.bank_conflict(msg.hart().core() as usize, core as usize, 1);
                }
            }
        }
        Ok(())
    }

    /// Requests at a port that were ready this cycle but not served.
    fn port_backlog(q: &VecDeque<Ported>, now: u64) -> u64 {
        q.iter().filter(|p| p.arrived < now).count() as u64
    }

    /// Performs a read/write at `bank_core` and builds the response.
    fn perform(
        &mut self,
        bank_core: u32,
        msg: NetMsg,
        _side: PortSide,
    ) -> Result<NetMsg, MemFault> {
        match msg {
            NetMsg::ReadReq {
                addr,
                hart,
                size,
                signed,
            } => {
                let value = if Region::of(addr) == Region::Io {
                    self.io
                        .read(addr, self.now)
                        .ok_or(MemFault::Unmapped { addr, hart })?
                } else {
                    self.read(bank_core, addr, size, signed, hart)?
                };
                Ok(NetMsg::ReadResp { addr, value, hart })
            }
            NetMsg::WriteReq {
                addr,
                value,
                size,
                hart,
            } => {
                if Region::of(addr) == Region::Io {
                    self.io
                        .write(addr, value, self.now)
                        .ok_or(MemFault::Unmapped { addr, hart })?;
                } else {
                    self.write(bank_core, addr, value, size, hart)?;
                }
                Ok(NetMsg::WriteAck { addr, hart })
            }
            other => unreachable!("bank port received a response {other:?}"),
        }
    }

    fn check_align(addr: u32, size: u8, hart: HartId) -> Result<(), MemFault> {
        if !addr.is_multiple_of(size as u32) {
            Err(MemFault::Unaligned { addr, size, hart })
        } else {
            Ok(())
        }
    }

    fn slice_for(
        &mut self,
        bank_core: u32,
        addr: u32,
        size: u8,
        hart: HartId,
    ) -> Result<&mut [u8], MemFault> {
        Self::check_align(addr, size, hart)?;
        let (arr, off) = match Region::of(addr) {
            Region::Local => (
                &mut self.local[bank_core as usize],
                (addr - LOCAL_BASE) as usize,
            ),
            Region::Shared => {
                let bank = self.shared_bank_of(addr) as usize;
                if bank >= self.cores {
                    return Err(MemFault::Unmapped { addr, hart });
                }
                debug_assert_eq!(bank as u32, bank_core, "request routed to wrong bank");
                (
                    &mut self.shared[bank],
                    ((addr - SHARED_BASE) % self.shared_bank_bytes) as usize,
                )
            }
            Region::Code | Region::Io => return Err(MemFault::Unmapped { addr, hart }),
        };
        let end = off + size as usize;
        if end > arr.len() {
            return Err(MemFault::Unmapped { addr, hart });
        }
        Ok(&mut arr[off..end])
    }

    /// Reads a value of `size` bytes at `addr` from `bank_core`'s banks.
    pub fn read(
        &mut self,
        bank_core: u32,
        addr: u32,
        size: u8,
        signed: bool,
        hart: HartId,
    ) -> Result<u32, MemFault> {
        let bytes = self.slice_for(bank_core, addr, size, hart)?;
        let mut raw = 0u32;
        for (i, b) in bytes.iter().enumerate() {
            raw |= (*b as u32) << (8 * i);
        }
        Ok(match (size, signed) {
            (1, true) => (raw as u8 as i8) as i32 as u32,
            (2, true) => (raw as u16 as i16) as i32 as u32,
            _ => raw,
        })
    }

    /// Writes the low `size` bytes of `value` at `addr`.
    pub fn write(
        &mut self,
        bank_core: u32,
        addr: u32,
        value: u32,
        size: u8,
        hart: HartId,
    ) -> Result<(), MemFault> {
        let bytes = self.slice_for(bank_core, addr, size, hart)?;
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn write_local(
        &mut self,
        core: u32,
        addr: u32,
        value: u32,
        size: u8,
        hart: HartId,
    ) -> Result<(), MemFault> {
        self.write(core, addr, value, size, hart)
    }

    /// Directly reads shared memory (for test harnesses and result
    /// extraction after a run).
    pub fn peek_shared(&mut self, addr: u32) -> Result<u32, MemFault> {
        let bank = self.shared_bank_of(addr);
        self.read(bank, addr, 4, false, HartId::FIRST)
    }

    /// Whether every bank port is idle: no queued local request, no staged
    /// response. Feeds the machine's quiescence-based deadlock detector
    /// (the network's own queues are checked separately).
    pub fn ports_quiet(&self) -> bool {
        self.local_q.iter().all(VecDeque::is_empty)
            && self.shared_q.iter().all(VecDeque::is_empty)
            && self.staged.iter().all(Vec::is_empty)
    }

    /// Requests queued at a core's bank ports (crash dumps).
    pub fn queued_at(&self, core: u32) -> usize {
        self.local_q[core as usize].len()
            + self.shared_q[core as usize].len()
            + self.staged[core as usize].len()
    }

    /// XORs one bit of the shared-memory byte holding it (fault
    /// injection). Out-of-range addresses are ignored — the plan was
    /// validated up front.
    pub fn flip_shared_bit(&mut self, addr: u32, bit: u32) {
        let word = addr & !3;
        let bank = self.shared_bank_of(word) as usize;
        if bank >= self.cores {
            return;
        }
        let off = ((word - SHARED_BASE) % self.shared_bank_bytes) as usize + (bit / 8) as usize;
        if let Some(byte) = self.shared[bank].get_mut(off) {
            *byte ^= 1 << (bit % 8);
        }
    }

    /// Serializes the full memory system: bank contents, the code image,
    /// every queued/staged request, the network and the I/O bus.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.cores as u64);
        w.u32(self.local_bank_bytes);
        w.u32(self.shared_bank_bytes);
        for bank in &self.local {
            w.bytes(bank);
        }
        for bank in &self.shared {
            w.bytes(bank);
        }
        w.seq(self.code.len());
        for &word in &self.code {
            w.u32(word);
        }
        let put_ports = |w: &mut SnapWriter, qs: &[VecDeque<Ported>]| {
            for q in qs {
                w.seq(q.len());
                for p in q {
                    p.msg.snap(w);
                    w.u64(p.arrived);
                }
            }
        };
        put_ports(w, &self.local_q);
        put_ports(w, &self.shared_q);
        for staged in &self.staged {
            w.seq(staged.len());
            for msg in staged {
                msg.snap(w);
            }
        }
        self.net.snap(w);
        self.io.snap(w);
        w.u64(self.local_served);
        w.u64(self.remote_served);
        w.u64(self.conflicts);
        w.u64(self.now);
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<MemSys, SnapError> {
        let cores = r.u64()? as usize;
        if cores == 0 {
            return Err(SnapError::Corrupt(
                "memory system has zero cores".to_owned(),
            ));
        }
        let local_bank_bytes = r.u32()?;
        let shared_bank_bytes = r.u32()?;
        let get_banks = |r: &mut SnapReader<'_>, expect: u32| -> Result<Vec<Vec<u8>>, SnapError> {
            (0..cores)
                .map(|_| {
                    let bank = r.bytes()?;
                    if bank.len() != expect as usize {
                        return Err(SnapError::Corrupt(format!(
                            "bank holds {} bytes, configured for {expect}",
                            bank.len()
                        )));
                    }
                    Ok(bank)
                })
                .collect()
        };
        let local = get_banks(r, local_bank_bytes)?;
        let shared = get_banks(r, shared_bank_bytes)?;
        let mut code = Vec::new();
        for _ in 0..r.seq()? {
            code.push(r.u32()?);
        }
        let get_ports = |r: &mut SnapReader<'_>| -> Result<Vec<VecDeque<Ported>>, SnapError> {
            (0..cores)
                .map(|_| {
                    let mut q = VecDeque::new();
                    for _ in 0..r.seq()? {
                        q.push_back(Ported {
                            msg: NetMsg::unsnap(r)?,
                            arrived: r.u64()?,
                        });
                    }
                    Ok(q)
                })
                .collect()
        };
        let local_q = get_ports(r)?;
        let shared_q = get_ports(r)?;
        let mut staged = Vec::with_capacity(cores);
        for _ in 0..cores {
            let mut v = Vec::new();
            for _ in 0..r.seq()? {
                v.push(NetMsg::unsnap(r)?);
            }
            staged.push(v);
        }
        let net = Network::unsnap(r)?;
        let io = IoBus::unsnap(r)?;
        Ok(MemSys {
            cores,
            local_bank_bytes,
            shared_bank_bytes,
            local,
            shared,
            code,
            local_q,
            shared_q,
            staged,
            net,
            io,
            local_served: r.u64()?,
            remote_served: r.u64()?,
            conflicts: r.u64()?,
            now: r.u64()?,
        })
    }

    /// XORs the code word at `pc` with `xor` (fault injection). Every
    /// core's code bank is the same copy, so all cores see the corruption.
    pub fn corrupt_code(&mut self, pc: u32, xor: u32) {
        if let Some(word) = self.code.get_mut((pc / 4) as usize) {
            *word ^= xor;
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum PortSide {
    Local,
    Network,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memsys(cores: usize) -> MemSys {
        MemSys::new(&LbpConfig::cores(cores), &[0x13], &[1, 0, 0, 0]).unwrap()
    }

    #[test]
    fn image_data_lands_in_shared_bank_zero() {
        let mut m = memsys(4);
        assert_eq!(m.peek_shared(SHARED_BASE).unwrap(), 1);
    }

    #[test]
    fn cv_base_is_per_hart() {
        let m = memsys(4);
        // 64 KiB local bank -> 16 KiB stacks.
        assert_eq!(
            m.cv_base(HartId::from_parts(2, 0)),
            LOCAL_BASE + 16 * 1024 - CV_FRAME_BYTES
        );
        assert_eq!(
            m.cv_base(HartId::from_parts(2, 3)),
            LOCAL_BASE + 64 * 1024 - CV_FRAME_BYTES
        );
    }

    #[test]
    fn local_port_serves_one_per_cycle_after_arrival() {
        let mut m = memsys(1);
        let h = HartId::FIRST;
        m.local_request(
            0,
            NetMsg::WriteReq {
                addr: LOCAL_BASE,
                value: 42,
                size: 4,
                hart: h,
            },
            5,
        );
        // Same-cycle service is not allowed.
        m.tick(5, None).unwrap();
        assert!(m.take_staged(0).is_empty());
        m.tick(6, None).unwrap();
        let resp = m.take_staged(0);
        assert_eq!(
            resp,
            vec![NetMsg::WriteAck {
                addr: LOCAL_BASE,
                hart: h
            }]
        );
        assert_eq!(m.read(0, LOCAL_BASE, 4, false, h).unwrap(), 42);
    }

    #[test]
    fn sign_extension() {
        let mut m = memsys(1);
        let h = HartId::FIRST;
        m.write(0, LOCAL_BASE, 0x80, 1, h).unwrap();
        assert_eq!(m.read(0, LOCAL_BASE, 1, true, h).unwrap(), 0xffff_ff80);
        assert_eq!(m.read(0, LOCAL_BASE, 1, false, h).unwrap(), 0x80);
        m.write(0, LOCAL_BASE + 2, 0x8000, 2, h).unwrap();
        assert_eq!(m.read(0, LOCAL_BASE + 2, 2, true, h).unwrap(), 0xffff_8000);
    }

    #[test]
    fn misaligned_access_faults() {
        let mut m = memsys(1);
        let err = m
            .read(0, LOCAL_BASE + 2, 4, false, HartId::FIRST)
            .unwrap_err();
        assert!(matches!(err, MemFault::Unaligned { .. }));
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = memsys(1);
        // Beyond the single 64 KiB shared bank.
        let err = m.peek_shared(SHARED_BASE + 0x10000).unwrap_err();
        assert!(matches!(err, MemFault::Unmapped { .. }));
    }

    #[test]
    fn remote_requests_flow_through_network() {
        let mut m = memsys(4);
        let h = HartId::from_parts(3, 0);
        // Core 3 reads bank 0 remotely.
        m.net.send_from_core(
            3,
            NetMsg::ReadReq {
                addr: SHARED_BASE,
                hart: h,
                size: 4,
                signed: false,
            },
        );
        let mut got = None;
        for now in 1..20 {
            m.net.tick();
            m.tick(now, None).unwrap();
            let inbox = m.net.take_core_inbox(3);
            if !inbox.is_empty() {
                got = Some((now, inbox));
                break;
            }
        }
        let (when, inbox) = got.expect("response arrives");
        assert_eq!(
            inbox,
            vec![NetMsg::ReadResp {
                addr: SHARED_BASE,
                value: 1,
                hart: h
            }]
        );
        // core->r1 (1), r1->bank (2), served (2), bank->r1 (3), r1->core (4).
        assert_eq!(when, 4);
    }

    #[test]
    fn code_fetch_bounds() {
        let m = memsys(1);
        assert_eq!(m.fetch(0, HartId::FIRST).unwrap(), 0x13);
        assert!(m.fetch(4, HartId::FIRST).is_err());
        assert!(m.fetch(2, HartId::FIRST).is_err());
    }
}
