//! Run statistics: the quantities the paper's evaluation reports.

use lbp_isa::HARTS_PER_CORE;

/// Counters for one run, with per-core breakdowns.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Stats {
    /// Total cycles executed.
    pub cycles: u64,
    /// Instructions retired, per hart.
    pub retired_per_hart: Vec<u64>,
    /// Memory accesses served by the local port of the executing core's
    /// banks (local stack + own shared slice).
    pub local_accesses: u64,
    /// Memory accesses that traversed the router hierarchy.
    pub remote_accesses: u64,
    /// Messages that crossed a router link (one count per hop).
    pub link_hops: u64,
    /// Harts allocated by `p_fc`/`p_fn` over the run.
    pub forks: u64,
    /// Join messages delivered.
    pub joins: u64,
    /// Multiply/divide operations issued (they burn more energy and
    /// occupy the functional unit longer than ALU operations).
    pub muldiv_ops: u64,
}

impl Stats {
    /// Creates zeroed statistics for `harts` harts.
    pub fn new(harts: usize) -> Stats {
        Stats {
            retired_per_hart: vec![0; harts],
            ..Stats::default()
        }
    }

    /// Total instructions retired across all harts.
    pub fn retired(&self) -> u64 {
        self.retired_per_hart.iter().sum()
    }

    /// Machine-wide IPC (`retired / cycles`); the paper's peak is one
    /// instruction per core per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired() as f64 / self.cycles as f64
        }
    }

    /// Instructions retired by one core (sum over its four harts).
    pub fn retired_by_core(&self, core: usize) -> u64 {
        self.retired_per_hart[core * HARTS_PER_CORE..(core + 1) * HARTS_PER_CORE]
            .iter()
            .sum()
    }

    /// Total memory accesses (local + remote).
    pub fn mem_ops(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Fraction of memory accesses that stayed local.
    pub fn locality(&self) -> f64 {
        let total = self.local_accesses + self.remote_accesses;
        if total == 0 {
            1.0
        } else {
            self.local_accesses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_locality() {
        let mut s = Stats::new(8);
        s.cycles = 100;
        s.retired_per_hart[0] = 30;
        s.retired_per_hart[5] = 20;
        assert_eq!(s.retired(), 50);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(s.retired_by_core(0), 30);
        assert_eq!(s.retired_by_core(1), 20);
        s.local_accesses = 3;
        s.remote_accesses = 1;
        assert!((s.locality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_defined() {
        let s = Stats::new(4);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.locality(), 1.0);
    }
}
