//! Run statistics: the quantities the paper's evaluation reports, plus
//! the cycle-accurate observability counters (stall attribution,
//! contention, interval samples).

use lbp_isa::HARTS_PER_CORE;

use crate::json::Json;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// Why a core cycle did not retire an instruction.
///
/// The commit stage selects at most one hart per cycle, so every core
/// cycle either retires exactly one instruction or is a *stall slot*;
/// classifying the slot gives an exact partition:
/// `sum(stalls) + retired == cycles` per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The commit stage is starved of instructions: fetch is suspended
    /// waiting for the next pc (every fetch suspends until the next pc is
    /// known — there is no branch predictor) or the pipeline is filling.
    FetchStarved,
    /// A hart is suspended on an outstanding memory access (load response
    /// or store acknowledgement still in flight).
    MemWait,
    /// Instructions are waiting in the instruction table but none has all
    /// source operands (or `p_lwre` slot data) ready.
    OperandWait,
    /// The hart's single-entry result buffer is occupied, blocking issue
    /// (the throttle that makes 4-way multithreading necessary for 1 IPC).
    RbFull,
    /// Synchronization: a committing `p_ret` waits for the ending-hart
    /// signal, a `p_syncm` drains, a fork allocation is pending, or every
    /// allocated hart waits for a join/start message.
    SyncWait,
    /// No hart on the core is allocated.
    Idle,
}

/// Per-core stall-slot counters: one bucket per [`StallKind`].
///
/// The six buckets partition the core's non-retiring cycles, so
/// [`CoreStalls::total`] plus the core's retired-instruction count equals
/// the machine cycle count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStalls {
    /// Cycles lost to [`StallKind::FetchStarved`].
    pub fetch_starved: u64,
    /// Cycles lost to [`StallKind::MemWait`].
    pub mem_wait: u64,
    /// Cycles lost to [`StallKind::OperandWait`].
    pub operand_wait: u64,
    /// Cycles lost to [`StallKind::RbFull`].
    pub rb_full: u64,
    /// Cycles lost to [`StallKind::SyncWait`].
    pub sync_wait: u64,
    /// Cycles with no allocated hart.
    pub idle: u64,
}

impl CoreStalls {
    /// Adds one stall slot of the given kind.
    pub fn bump(&mut self, kind: StallKind) {
        match kind {
            StallKind::FetchStarved => self.fetch_starved += 1,
            StallKind::MemWait => self.mem_wait += 1,
            StallKind::OperandWait => self.operand_wait += 1,
            StallKind::RbFull => self.rb_full += 1,
            StallKind::SyncWait => self.sync_wait += 1,
            StallKind::Idle => self.idle += 1,
        }
    }

    /// Total stall slots across all buckets.
    pub fn total(&self) -> u64 {
        self.fetch_starved
            + self.mem_wait
            + self.operand_wait
            + self.rb_full
            + self.sync_wait
            + self.idle
    }

    /// Element-wise sum.
    pub fn add(&self, other: &CoreStalls) -> CoreStalls {
        CoreStalls {
            fetch_starved: self.fetch_starved + other.fetch_starved,
            mem_wait: self.mem_wait + other.mem_wait,
            operand_wait: self.operand_wait + other.operand_wait,
            rb_full: self.rb_full + other.rb_full,
            sync_wait: self.sync_wait + other.sync_wait,
            idle: self.idle + other.idle,
        }
    }

    /// Element-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CoreStalls) -> CoreStalls {
        CoreStalls {
            fetch_starved: self.fetch_starved - earlier.fetch_starved,
            mem_wait: self.mem_wait - earlier.mem_wait,
            operand_wait: self.operand_wait - earlier.operand_wait,
            rb_full: self.rb_full - earlier.rb_full,
            sync_wait: self.sync_wait - earlier.sync_wait,
            idle: self.idle - earlier.idle,
        }
    }

    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.fetch_starved);
        w.u64(self.mem_wait);
        w.u64(self.operand_wait);
        w.u64(self.rb_full);
        w.u64(self.sync_wait);
        w.u64(self.idle);
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<CoreStalls, SnapError> {
        Ok(CoreStalls {
            fetch_starved: r.u64()?,
            mem_wait: r.u64()?,
            operand_wait: r.u64()?,
            rb_full: r.u64()?,
            sync_wait: r.u64()?,
            idle: r.u64()?,
        })
    }

    /// JSON object with one key per bucket (stable key order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("fetch_starved", Json::U64(self.fetch_starved)),
            ("mem_wait", Json::U64(self.mem_wait)),
            ("operand_wait", Json::U64(self.operand_wait)),
            ("rb_full", Json::U64(self.rb_full)),
            ("sync_wait", Json::U64(self.sync_wait)),
            ("idle", Json::U64(self.idle)),
        ])
    }
}

/// One entry of the interval time series: the activity of the machine
/// during the `interval` cycles ending at `cycle` (the last sample of a
/// run may cover a shorter, partial interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSample {
    /// The cycle the interval ends on.
    pub cycle: u64,
    /// The number of cycles the interval covers.
    pub interval: u64,
    /// Instructions retired during the interval (all harts).
    pub retired: u64,
    /// Router-link and fabric hops during the interval.
    pub link_hops: u64,
    /// Machine-wide stall mix during the interval (summed over cores).
    pub stalls: CoreStalls,
}

impl IntervalSample {
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.cycle);
        w.u64(self.interval);
        w.u64(self.retired);
        w.u64(self.link_hops);
        self.stalls.snap(w);
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<IntervalSample, SnapError> {
        Ok(IntervalSample {
            cycle: r.u64()?,
            interval: r.u64()?,
            retired: r.u64()?,
            link_hops: r.u64()?,
            stalls: CoreStalls::unsnap(r)?,
        })
    }

    /// Machine-wide IPC over the interval.
    pub fn ipc(&self) -> f64 {
        if self.interval == 0 {
            0.0
        } else {
            self.retired as f64 / self.interval as f64
        }
    }

    /// JSON object for the report's `samples` array.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", Json::U64(self.cycle)),
            ("interval", Json::U64(self.interval)),
            ("retired", Json::U64(self.retired)),
            ("ipc", Json::F64(self.ipc())),
            ("link_hops", Json::U64(self.link_hops)),
            ("stalls", self.stalls.to_json()),
        ])
    }
}

/// Counters for one run, with per-core breakdowns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Total cycles executed.
    pub cycles: u64,
    /// Instructions retired, per hart.
    pub retired_per_hart: Vec<u64>,
    /// Memory accesses served by the local port of the executing core's
    /// banks (local stack + own shared slice).
    pub local_accesses: u64,
    /// Memory accesses that traversed the router hierarchy.
    pub remote_accesses: u64,
    /// Messages that crossed a router link (one count per hop).
    pub link_hops: u64,
    /// Harts allocated by `p_fc`/`p_fn` over the run.
    pub forks: u64,
    /// Join messages delivered.
    pub joins: u64,
    /// Multiply/divide operations issued (they burn more energy and
    /// occupy the functional unit longer than ALU operations).
    pub muldiv_ops: u64,
    /// Per-core stall attribution: every non-retiring core cycle lands in
    /// exactly one bucket, so per core
    /// `stalls.total() + retired_by_core(core) == cycles`.
    pub stalls_per_core: Vec<CoreStalls>,
    /// Request-cycles spent queued at a busy bank port (a ready request
    /// that a dual-ported bank could not serve this cycle).
    pub bank_conflicts: u64,
    /// Message-cycles spent queued at a busy router or fabric link (a
    /// message delayed because the 1-message-per-cycle link was taken).
    pub link_contention: u64,
    /// The interval time series (empty unless the configuration sets
    /// `sample_interval`).
    pub samples: Vec<IntervalSample>,
}

impl Stats {
    /// Creates zeroed statistics for `harts` harts.
    pub fn new(harts: usize) -> Stats {
        Stats {
            retired_per_hart: vec![0; harts],
            stalls_per_core: vec![CoreStalls::default(); harts.div_ceil(HARTS_PER_CORE)],
            ..Stats::default()
        }
    }

    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.cycles);
        w.seq(self.retired_per_hart.len());
        for &n in &self.retired_per_hart {
            w.u64(n);
        }
        w.u64(self.local_accesses);
        w.u64(self.remote_accesses);
        w.u64(self.link_hops);
        w.u64(self.forks);
        w.u64(self.joins);
        w.u64(self.muldiv_ops);
        w.seq(self.stalls_per_core.len());
        for s in &self.stalls_per_core {
            s.snap(w);
        }
        w.u64(self.bank_conflicts);
        w.u64(self.link_contention);
        w.seq(self.samples.len());
        for s in &self.samples {
            s.snap(w);
        }
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Stats, SnapError> {
        let cycles = r.u64()?;
        let mut retired_per_hart = Vec::new();
        for _ in 0..r.seq()? {
            retired_per_hart.push(r.u64()?);
        }
        let local_accesses = r.u64()?;
        let remote_accesses = r.u64()?;
        let link_hops = r.u64()?;
        let forks = r.u64()?;
        let joins = r.u64()?;
        let muldiv_ops = r.u64()?;
        let mut stalls_per_core = Vec::new();
        for _ in 0..r.seq()? {
            stalls_per_core.push(CoreStalls::unsnap(r)?);
        }
        let bank_conflicts = r.u64()?;
        let link_contention = r.u64()?;
        let mut samples = Vec::new();
        for _ in 0..r.seq()? {
            samples.push(IntervalSample::unsnap(r)?);
        }
        Ok(Stats {
            cycles,
            retired_per_hart,
            local_accesses,
            remote_accesses,
            link_hops,
            forks,
            joins,
            muldiv_ops,
            stalls_per_core,
            bank_conflicts,
            link_contention,
            samples,
        })
    }

    /// Total instructions retired across all harts.
    pub fn retired(&self) -> u64 {
        self.retired_per_hart.iter().sum()
    }

    /// Machine-wide IPC (`retired / cycles`); the paper's peak is one
    /// instruction per core per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired() as f64 / self.cycles as f64
        }
    }

    /// Instructions retired by one core (sum over its four harts).
    /// An out-of-range core index reads as zero.
    pub fn retired_by_core(&self, core: usize) -> u64 {
        self.retired_per_hart
            .iter()
            .skip(core.saturating_mul(HARTS_PER_CORE))
            .take(HARTS_PER_CORE)
            .sum()
    }

    /// The stall breakdown of one core; an out-of-range index reads as
    /// all-zero.
    pub fn stalls_of_core(&self, core: usize) -> CoreStalls {
        self.stalls_per_core.get(core).copied().unwrap_or_default()
    }

    /// Machine-wide stall totals (summed over cores).
    pub fn stalls_total(&self) -> CoreStalls {
        self.stalls_per_core
            .iter()
            .fold(CoreStalls::default(), |acc, s| acc.add(s))
    }

    /// Total memory accesses (local + remote).
    pub fn mem_ops(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Fraction of memory accesses that stayed local.
    pub fn locality(&self) -> f64 {
        let total = self.mem_ops();
        if total == 0 {
            1.0
        } else {
            self.local_accesses as f64 / total as f64
        }
    }

    /// The machine-readable report (schema `lbp-stats-v1`): global
    /// counters, one `cores[i]` object per core with its retired count
    /// and stall partition, and the interval `samples` series.
    ///
    /// Emission is deterministic: key order is fixed and all values
    /// derive from the (deterministic) simulation, so two runs of the
    /// same program produce byte-identical reports.
    pub fn to_json(&self) -> Json {
        let cores: Vec<Json> = self
            .stalls_per_core
            .iter()
            .enumerate()
            .map(|(c, stalls)| {
                let retired = self.retired_by_core(c);
                Json::obj([
                    ("core", Json::U64(c as u64)),
                    ("retired", Json::U64(retired)),
                    ("stall_cycles", Json::U64(stalls.total())),
                    ("stalls", stalls.to_json()),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str("lbp-stats-v1".to_owned())),
            ("cycles", Json::U64(self.cycles)),
            ("retired", Json::U64(self.retired())),
            ("ipc", Json::F64(self.ipc())),
            ("local_accesses", Json::U64(self.local_accesses)),
            ("remote_accesses", Json::U64(self.remote_accesses)),
            ("locality", Json::F64(self.locality())),
            ("link_hops", Json::U64(self.link_hops)),
            ("bank_conflicts", Json::U64(self.bank_conflicts)),
            ("link_contention", Json::U64(self.link_contention)),
            ("forks", Json::U64(self.forks)),
            ("joins", Json::U64(self.joins)),
            ("muldiv_ops", Json::U64(self.muldiv_ops)),
            (
                "retired_per_hart",
                Json::Arr(
                    self.retired_per_hart
                        .iter()
                        .map(|&r| Json::U64(r))
                        .collect(),
                ),
            ),
            ("cores", Json::Arr(cores)),
            (
                "samples",
                Json::Arr(self.samples.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_locality() {
        let mut s = Stats::new(8);
        s.cycles = 100;
        s.retired_per_hart[0] = 30;
        s.retired_per_hart[5] = 20;
        assert_eq!(s.retired(), 50);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(s.retired_by_core(0), 30);
        assert_eq!(s.retired_by_core(1), 20);
        s.local_accesses = 3;
        s.remote_accesses = 1;
        assert!((s.locality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_defined() {
        let s = Stats::new(4);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.locality(), 1.0);
    }

    #[test]
    fn out_of_range_core_reads_zero() {
        let mut s = Stats::new(8);
        s.retired_per_hart[0] = 5;
        assert_eq!(s.retired_by_core(2), 0);
        assert_eq!(s.retired_by_core(usize::MAX), 0);
        assert_eq!(s.stalls_of_core(99), CoreStalls::default());
    }

    #[test]
    fn stall_buckets_partition() {
        let mut c = CoreStalls::default();
        for kind in [
            StallKind::FetchStarved,
            StallKind::MemWait,
            StallKind::OperandWait,
            StallKind::RbFull,
            StallKind::SyncWait,
            StallKind::Idle,
            StallKind::MemWait,
        ] {
            c.bump(kind);
        }
        assert_eq!(c.total(), 7);
        assert_eq!(c.mem_wait, 2);
        let doubled = c.add(&c);
        assert_eq!(doubled.total(), 14);
        assert_eq!(doubled.since(&c), c);
    }

    #[test]
    fn stats_json_has_core_partition() {
        let mut s = Stats::new(8);
        s.cycles = 10;
        s.retired_per_hart[0] = 4;
        s.stalls_per_core[0].mem_wait = 6;
        s.stalls_per_core[1].idle = 10;
        let j = s.to_json();
        assert_eq!(
            j.get("schema").and_then(|v| v.as_str()),
            Some("lbp-stats-v1")
        );
        let cores = j.get("cores").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(cores.len(), 2);
        for core in cores {
            let retired = core.get("retired").and_then(|v| v.as_u64()).unwrap();
            let stalls = core.get("stall_cycles").and_then(|v| v.as_u64()).unwrap();
            assert_eq!(retired + stalls, s.cycles);
        }
        // The emitted text parses back to the same value.
        let text = j.to_string();
        assert_eq!(crate::json::Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn interval_sample_ipc() {
        let s = IntervalSample {
            cycle: 2000,
            interval: 1000,
            retired: 750,
            link_hops: 12,
            stalls: CoreStalls::default(),
        };
        assert!((s.ipc() - 0.75).abs() < 1e-12);
        assert_eq!(
            s.to_json().get("cycle").and_then(|v| v.as_u64()),
            Some(2000)
        );
    }
}
