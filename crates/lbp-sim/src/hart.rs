//! Per-hart microarchitectural state: program counter, instruction buffer,
//! renaming table, renaming register file, instruction table (waiting
//! station), reorder buffer, result buffer and `p_swre` receive slots
//! (paper Figs. 11-12).

use std::collections::VecDeque;

use lbp_isa::{HartId, Instr, Reg};

use crate::snapshot::{
    get_hart, get_instr, put_hart, put_instr, SnapError, SnapReader, SnapWriter,
};

/// Index into a hart's renaming (physical) register file.
pub(crate) type PhysReg = u16;

/// Lifecycle of a hart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HartState {
    /// Unallocated; a `p_fc`/`p_fn` may claim it.
    Free,
    /// Allocated by a fork, waiting for its start pc (`p_jal`/`p_jalr`).
    Reserved,
    /// Executing.
    Running,
    /// Ended with a type-2 `p_ret`; waiting for a join address.
    WaitingJoin,
}

/// One renamed-register-file entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrfEntry {
    pub value: u32,
    pub ready: bool,
}

/// The fetched instruction sitting in the 1-entry instruction buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub pc: u32,
    pub instr: Instr,
}

/// One instruction-table (waiting station) entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ItEntry {
    pub seq: u64,
    pub pc: u32,
    pub instr: Instr,
    /// Renamed sources (positionally rs1, rs2); `None` reads as zero.
    pub srcs: [Option<PhysReg>; 2],
    /// Renamed destination.
    pub dest: Option<PhysReg>,
}

/// What the 1-entry result buffer is waiting for.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RbWait {
    /// Functional-unit completion at the given cycle.
    Until { at: u64, value: Option<u32> },
    /// An outstanding memory read (value arrives with the response).
    Mem,
    /// A fork allocation result (`p_fc`/`p_fn`).
    Fork,
    /// Complete; ready for the write-back stage.
    Done { value: Option<u32> },
}

/// The result buffer: holds the unique in-flight result of the hart from
/// issue to write-back. Its occupancy is what throttles a single hart and
/// makes 4-way multithreading necessary to reach 1 IPC per core.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rb {
    pub seq: u64,
    pub dest: Option<PhysReg>,
    pub wait: RbWait,
}

/// One reorder-buffer entry (in-order commit).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RobEntry {
    pub seq: u64,
    pub pc: u32,
    pub done: bool,
    /// `(new_phys, old_phys)`: the old mapping is freed at commit.
    pub dest: Option<(PhysReg, Option<PhysReg>)>,
    /// For `p_ret`: the resolved `(ra, t0)` pair, filled at issue.
    pub pret: Option<(u32, u32)>,
    pub is_pret: bool,
}

/// Full per-hart context.
#[derive(Debug)]
pub(crate) struct HartCtx {
    pub id: HartId,
    pub state: HartState,
    pub pc: Option<u32>,
    /// Set after every fetch; cleared when the next pc becomes known
    /// (decode for straight-line/direct-jump code, execute for branches).
    pub fetch_suspended: bool,
    /// The earliest cycle a pipeline-internal unsuspension takes effect:
    /// the next pc computed by decode (or execute) in cycle N can feed a
    /// fetch no earlier than cycle N+1 — which is why a lone hart cannot
    /// fill the pipeline (paper §5.2).
    pub resume_at: u64,
    /// A decoded `p_syncm` is holding the fetch until the hart's memory
    /// accesses drain.
    pub syncm_wait: bool,
    pub ib: Option<Fetched>,
    /// Renaming table: architectural → physical.
    pub rat: [PhysReg; 32],
    pub prf: Vec<PrfEntry>,
    pub free_phys: VecDeque<PhysReg>,
    pub it: Vec<ItEntry>,
    pub rob: VecDeque<RobEntry>,
    pub rb: Option<Rb>,
    pub next_seq: u64,
    /// Memory instructions renamed but not yet issued.
    pub mem_in_it: u32,
    /// Memory accesses issued and not yet completed/acknowledged.
    pub in_flight_mem: u32,
    /// `p_swre` receive slots (the "result buffers" of the X_PAR ISA).
    pub recv: Vec<VecDeque<u32>>,
    /// The ending-hart signal from the team predecessor has arrived;
    /// consumed by the commit of a `p_ret`.
    pub end_signal: bool,
    /// The team successor: the hart this hart's last `p_jal`/`p_jalr`
    /// started (the paper's §3 "the hardware memorizes the necessary
    /// links"). The ending-hart signal is forwarded to it.
    pub team_succ: Option<HartId>,
    /// Capacity limits (from the machine configuration).
    it_capacity: usize,
    rob_capacity: usize,
}

impl HartCtx {
    /// Creates a hart in the `Free` state.
    pub fn new(
        id: HartId,
        phys_regs: usize,
        it_capacity: usize,
        rob_capacity: usize,
        result_slots: usize,
    ) -> HartCtx {
        assert!(phys_regs >= 34, "need at least 32 + 2 physical registers");
        let mut h = HartCtx {
            id,
            state: HartState::Free,
            pc: None,
            fetch_suspended: true,
            resume_at: 0,
            syncm_wait: false,
            ib: None,
            rat: [0; 32],
            prf: vec![
                PrfEntry {
                    value: 0,
                    ready: true
                };
                phys_regs
            ],
            free_phys: VecDeque::new(),
            it: Vec::new(),
            rob: VecDeque::new(),
            rb: None,
            next_seq: 0,
            mem_in_it: 0,
            in_flight_mem: 0,
            recv: (0..result_slots).map(|_| VecDeque::new()).collect(),
            end_signal: false,
            team_succ: None,
            it_capacity,
            rob_capacity,
        };
        h.reset_register_state(0);
        h
    }

    /// Resets the renaming state: architectural register `i` maps to
    /// physical register `i`, all zero except `sp`.
    fn reset_register_state(&mut self, sp: u32) {
        for i in 0..32 {
            self.rat[i] = i as PhysReg;
            self.prf[i] = PrfEntry {
                value: 0,
                ready: true,
            };
        }
        self.prf[Reg::SP.index()] = PrfEntry {
            value: sp,
            ready: true,
        };
        self.free_phys = (32..self.prf.len() as PhysReg).collect();
        self.it.clear();
        self.rob.clear();
        self.rb = None;
        self.ib = None;
        self.mem_in_it = 0;
        self.in_flight_mem = 0;
    }

    /// Claims this hart for a fork: `Reserved`, fresh registers with the
    /// stack pointer at the continuation-value frame base, cleared receive
    /// slots, no ending signal.
    pub fn allocate(&mut self, sp: u32) {
        debug_assert_eq!(self.state, HartState::Free, "allocating a busy hart");
        self.reset_register_state(sp);
        for q in &mut self.recv {
            q.clear();
        }
        self.end_signal = false;
        self.team_succ = None;
        self.syncm_wait = false;
        self.state = HartState::Reserved;
        self.pc = None;
        self.fetch_suspended = true;
    }

    /// Boots this hart as the machine's first hart.
    pub fn boot(&mut self, entry: u32, sp: u32) {
        self.reset_register_state(sp);
        self.state = HartState::Running;
        self.pc = Some(entry);
        self.fetch_suspended = false;
        self.end_signal = true; // nothing precedes the boot hart
    }

    /// Ends the hart (`p_ret` types 1 and 4): back to `Free`.
    pub fn end(&mut self) {
        self.state = HartState::Free;
        self.pc = None;
        self.fetch_suspended = true;
    }

    /// Clears the fetch suspension, effective from the *next* cycle
    /// (pipeline-internal next-pc signals cross a cycle boundary).
    pub fn unsuspend_next(&mut self, now: u64) {
        self.fetch_suspended = false;
        self.resume_at = now + 1;
    }

    /// Clears the fetch suspension immediately (external events: start
    /// pc or join delivery at the cycle boundary).
    pub fn unsuspend_now(&mut self) {
        self.fetch_suspended = false;
        self.resume_at = 0;
    }

    /// Whether the fetch stage may select this hart at `now`.
    pub fn can_fetch(&self, now: u64) -> bool {
        !self.fetch_suspended && now >= self.resume_at
    }

    /// Reads a source operand value if ready.
    pub fn src_ready(&self, src: Option<PhysReg>) -> bool {
        src.is_none_or(|p| self.prf[p as usize].ready)
    }

    /// The value of a renamed source (`None` reads as zero, i.e. `x0`).
    pub fn src_value(&self, src: Option<PhysReg>) -> u32 {
        src.map_or(0, |p| self.prf[p as usize].value)
    }

    /// Whether rename can accept one more instruction.
    pub fn rename_capacity(&self, needs_dest: bool) -> bool {
        self.rob.len() < self.rob_capacity
            && self.it.len() < self.it_capacity
            && (!needs_dest || !self.free_phys.is_empty())
    }

    /// Renames and inserts an instruction; returns its sequence number.
    ///
    /// The caller must have checked [`HartCtx::rename_capacity`].
    pub fn rename(&mut self, f: Fetched) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let srcs = f.instr.sources().map(|s| s.map(|r| self.rat[r.index()]));
        let dest = f.instr.dest().map(|rd| {
            let new = self.free_phys.pop_front().expect("checked by capacity");
            let old = self.rat[rd.index()];
            self.rat[rd.index()] = new;
            self.prf[new as usize].ready = false;
            (rd, new, old)
        });
        self.it.push(ItEntry {
            seq,
            pc: f.pc,
            instr: f.instr,
            srcs,
            dest: dest.map(|(_, new, _)| new),
        });
        self.rob.push_back(RobEntry {
            seq,
            pc: f.pc,
            done: false,
            dest: dest.map(|(_, new, old)| (new, Some(old))),
            pret: None,
            is_pret: f.instr.is_p_ret(),
        });
        if f.instr.is_mem() {
            self.mem_in_it += 1;
        }
        seq
    }

    /// The oldest instruction-table entry whose operands (and special
    /// conditions) are satisfied.
    pub fn oldest_ready(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, e) in self.it.iter().enumerate() {
            if !self.src_ready(e.srcs[0]) || !self.src_ready(e.srcs[1]) {
                continue;
            }
            if let Instr::PLwre { offset, .. } = e.instr {
                let slot = offset as usize;
                if self.recv.get(slot).is_none_or(|q| q.is_empty()) {
                    continue;
                }
            }
            if best.is_none_or(|(s, _)| e.seq < s) {
                best = Some((e.seq, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Marks the ROB entry of `seq` as done.
    pub fn rob_mark_done(&mut self, seq: u64) {
        let e = self
            .rob
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("rob entry for completed instruction");
        e.done = true;
    }

    /// Stores the resolved `(ra, t0)` pair in the ROB entry of a `p_ret`.
    pub fn rob_set_pret(&mut self, seq: u64, ra: u32, t0: u32) {
        let e = self
            .rob
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("rob entry for p_ret");
        e.pret = Some((ra, t0));
    }

    /// Whether every memory access decoded so far has completed
    /// (the `p_syncm` drain condition).
    pub fn mem_drained(&self) -> bool {
        self.mem_in_it == 0 && self.in_flight_mem == 0
    }

    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        put_hart(w, self.id);
        w.u8(match self.state {
            HartState::Free => 0,
            HartState::Reserved => 1,
            HartState::Running => 2,
            HartState::WaitingJoin => 3,
        });
        w.opt(&self.pc, |w, &pc| w.u32(pc));
        w.bool(self.fetch_suspended);
        w.u64(self.resume_at);
        w.bool(self.syncm_wait);
        w.opt(&self.ib, |w, f| {
            w.u32(f.pc);
            put_instr(w, &f.instr);
        });
        for &p in &self.rat {
            w.u16(p);
        }
        w.seq(self.prf.len());
        for e in &self.prf {
            w.u32(e.value);
            w.bool(e.ready);
        }
        w.seq(self.free_phys.len());
        for &p in &self.free_phys {
            w.u16(p);
        }
        w.seq(self.it.len());
        for e in &self.it {
            w.u64(e.seq);
            w.u32(e.pc);
            put_instr(w, &e.instr);
            for s in &e.srcs {
                w.opt(s, |w, &p| w.u16(p));
            }
            w.opt(&e.dest, |w, &p| w.u16(p));
        }
        w.seq(self.rob.len());
        for e in &self.rob {
            w.u64(e.seq);
            w.u32(e.pc);
            w.bool(e.done);
            w.opt(&e.dest, |w, &(new, old)| {
                w.u16(new);
                w.opt(&old, |w, &p| w.u16(p));
            });
            w.opt(&e.pret, |w, &(ra, t0)| {
                w.u32(ra);
                w.u32(t0);
            });
            w.bool(e.is_pret);
        }
        w.opt(&self.rb, |w, rb| {
            w.u64(rb.seq);
            w.opt(&rb.dest, |w, &p| w.u16(p));
            match rb.wait {
                RbWait::Until { at, value } => {
                    w.u8(0);
                    w.u64(at);
                    w.opt(&value, |w, &v| w.u32(v));
                }
                RbWait::Mem => w.u8(1),
                RbWait::Fork => w.u8(2),
                RbWait::Done { value } => {
                    w.u8(3);
                    w.opt(&value, |w, &v| w.u32(v));
                }
            }
        });
        w.u64(self.next_seq);
        w.u32(self.mem_in_it);
        w.u32(self.in_flight_mem);
        w.seq(self.recv.len());
        for q in &self.recv {
            w.seq(q.len());
            for &v in q {
                w.u32(v);
            }
        }
        w.bool(self.end_signal);
        w.opt(&self.team_succ, |w, &h| put_hart(w, h));
        w.u64(self.it_capacity as u64);
        w.u64(self.rob_capacity as u64);
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<HartCtx, SnapError> {
        let id = get_hart(r)?;
        let state = match r.u8()? {
            0 => HartState::Free,
            1 => HartState::Reserved,
            2 => HartState::Running,
            3 => HartState::WaitingJoin,
            other => return Err(SnapError::Corrupt(format!("bad hart state tag {other}"))),
        };
        let pc = r.opt(|r| r.u32())?;
        let fetch_suspended = r.bool()?;
        let resume_at = r.u64()?;
        let syncm_wait = r.bool()?;
        let ib = r.opt(|r| {
            Ok(Fetched {
                pc: r.u32()?,
                instr: get_instr(r)?,
            })
        })?;
        let mut rat = [0 as PhysReg; 32];
        for slot in &mut rat {
            *slot = r.u16()?;
        }
        let mut prf = Vec::new();
        for _ in 0..r.seq()? {
            prf.push(PrfEntry {
                value: r.u32()?,
                ready: r.bool()?,
            });
        }
        let mut free_phys = VecDeque::new();
        for _ in 0..r.seq()? {
            free_phys.push_back(r.u16()?);
        }
        let mut it = Vec::new();
        for _ in 0..r.seq()? {
            let seq = r.u64()?;
            let pc = r.u32()?;
            let instr = get_instr(r)?;
            let srcs = [r.opt(|r| r.u16())?, r.opt(|r| r.u16())?];
            let dest = r.opt(|r| r.u16())?;
            it.push(ItEntry {
                seq,
                pc,
                instr,
                srcs,
                dest,
            });
        }
        let mut rob = VecDeque::new();
        for _ in 0..r.seq()? {
            let seq = r.u64()?;
            let pc = r.u32()?;
            let done = r.bool()?;
            let dest = r.opt(|r| {
                let new = r.u16()?;
                let old = r.opt(|r| r.u16())?;
                Ok((new, old))
            })?;
            let pret = r.opt(|r| Ok((r.u32()?, r.u32()?)))?;
            let is_pret = r.bool()?;
            rob.push_back(RobEntry {
                seq,
                pc,
                done,
                dest,
                pret,
                is_pret,
            });
        }
        let rb = r.opt(|r| {
            let seq = r.u64()?;
            let dest = r.opt(|r| r.u16())?;
            let wait = match r.u8()? {
                0 => RbWait::Until {
                    at: r.u64()?,
                    value: r.opt(|r| r.u32())?,
                },
                1 => RbWait::Mem,
                2 => RbWait::Fork,
                3 => RbWait::Done {
                    value: r.opt(|r| r.u32())?,
                },
                other => return Err(SnapError::Corrupt(format!("bad RbWait tag {other}"))),
            };
            Ok(Rb { seq, dest, wait })
        })?;
        let next_seq = r.u64()?;
        let mem_in_it = r.u32()?;
        let in_flight_mem = r.u32()?;
        let mut recv = Vec::new();
        for _ in 0..r.seq()? {
            let mut q = VecDeque::new();
            for _ in 0..r.seq()? {
                q.push_back(r.u32()?);
            }
            recv.push(q);
        }
        let end_signal = r.bool()?;
        let team_succ = r.opt(get_hart)?;
        let it_capacity = r.u64()? as usize;
        let rob_capacity = r.u64()? as usize;
        // Sanity: every renamed physical register must exist.
        let bound = prf.len() as u64;
        let bad_phys =
            rat.iter().any(|&p| p as u64 >= bound) || free_phys.iter().any(|&p| p as u64 >= bound);
        if bad_phys {
            return Err(SnapError::Corrupt(format!(
                "hart {id}: physical register index beyond the {bound}-entry file"
            )));
        }
        Ok(HartCtx {
            id,
            state,
            pc,
            fetch_suspended,
            resume_at,
            syncm_wait,
            ib,
            rat,
            prf,
            free_phys,
            it,
            rob,
            rb,
            next_seq,
            mem_in_it,
            in_flight_mem,
            recv,
            end_signal,
            team_succ,
            it_capacity,
            rob_capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_isa::OpImmKind;

    fn hart() -> HartCtx {
        HartCtx::new(HartId::new(0), 64, 32, 32, 8)
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Fetched {
        Fetched {
            pc: 0,
            instr: Instr::OpImm {
                kind: OpImmKind::Add,
                rd,
                rs1,
                imm,
            },
        }
    }

    #[test]
    fn rename_allocates_and_tracks_old_mapping() {
        let mut h = hart();
        h.boot(0, 0x1000);
        let before = h.rat[Reg::A0.index()];
        h.rename(addi(Reg::A0, Reg::A0, 1));
        let after = h.rat[Reg::A0.index()];
        assert_ne!(before, after);
        assert_eq!(h.rob[0].dest, Some((after, Some(before))));
        assert!(!h.prf[after as usize].ready);
        // Source was renamed against the old mapping.
        assert_eq!(h.it[0].srcs[0], Some(before));
    }

    #[test]
    fn oldest_ready_respects_dependencies() {
        let mut h = hart();
        h.boot(0, 0x1000);
        h.rename(addi(Reg::A0, Reg::A1, 1)); // ready (a1 ready)
        h.rename(addi(Reg::A2, Reg::A0, 1)); // depends on the first
        let idx = h.oldest_ready().unwrap();
        assert_eq!(h.it[idx].seq, 0);
        // Make the first's dest ready: second becomes eligible, but the
        // first is still older.
        let d = h.it[0].dest.unwrap();
        h.prf[d as usize] = PrfEntry {
            value: 7,
            ready: true,
        };
        h.it.remove(0);
        let idx = h.oldest_ready().unwrap();
        assert_eq!(h.it[idx].seq, 1);
    }

    #[test]
    fn p_lwre_waits_for_slot() {
        let mut h = hart();
        h.boot(0, 0x1000);
        h.rename(Fetched {
            pc: 0,
            instr: Instr::PLwre {
                rd: Reg::A0,
                offset: 2,
            },
        });
        assert_eq!(h.oldest_ready(), None);
        h.recv[2].push_back(99);
        assert!(h.oldest_ready().is_some());
    }

    #[test]
    fn allocation_resets_state() {
        let mut h = hart();
        h.boot(0, 0x1000);
        h.rename(addi(Reg::A0, Reg::A0, 5));
        h.end();
        h.allocate(0x2000);
        assert_eq!(h.state, HartState::Reserved);
        assert!(h.it.is_empty() && h.rob.is_empty());
        assert_eq!(h.prf[h.rat[Reg::SP.index()] as usize].value, 0x2000);
        assert_eq!(h.prf[h.rat[Reg::A0.index()] as usize].value, 0);
        assert!(!h.end_signal);
    }

    #[test]
    fn boot_hart_has_end_signal() {
        let mut h = hart();
        h.boot(0x40, 0x1000);
        assert!(h.end_signal);
        assert_eq!(h.pc, Some(0x40));
    }

    #[test]
    fn x0_sources_read_zero() {
        let h = hart();
        assert!(h.src_ready(None));
        assert_eq!(h.src_value(None), 0);
    }

    #[test]
    fn mem_counters_feed_syncm() {
        let mut h = hart();
        h.boot(0, 0x1000);
        assert!(h.mem_drained());
        h.rename(Fetched {
            pc: 0,
            instr: Instr::Load {
                kind: lbp_isa::LoadKind::W,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 0,
            },
        });
        assert!(!h.mem_drained());
    }
}
