//! Lockstep differential checking: the pipelined machine vs the
//! sequential ISS oracle.
//!
//! The paper's determinism claim cuts both ways: because the machine is
//! deterministic, any architectural divergence from the sequential
//! reference is a hard bug (or an injected fault doing its job), never a
//! scheduling artifact. [`Lockstep`] runs a single-hart program on the
//! full [`Machine`], collects its commit-order pc stream, then replays
//! that stream one instruction at a time against the [`Iss`] oracle and
//! reports the **first** architectural divergence: a mismatched commit
//! pc, a final register difference, or a shared-memory difference.
//!
//! Only sequential (single-hart) programs can be checked — the ISS cannot
//! fork — which is exactly the scope where instruction-level equivalence
//! is well-defined. `lbp-run --lockstep` exposes the checker on the
//! command line; fault-injection tests use it to prove a flipped bit
//! surfaces as a divergence rather than silent corruption.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use lbp_asm::Image;
use lbp_isa::{HartId, Reg, SHARED_BASE};

use crate::config::{LbpConfig, CV_FRAME_BYTES};
use crate::dump::SimFailure;
use crate::iss::{Iss, IssError};
use crate::machine::{Machine, RunReport};
use crate::trace::{Event, EventKind, TraceSink};

/// A sink that collects the machine's commit stream: `(hart, pc)` in
/// commit order.
struct CommitCollector {
    commits: Rc<RefCell<VecDeque<(HartId, u32)>>>,
}

impl TraceSink for CommitCollector {
    fn record(&mut self, event: &Event) {
        if let EventKind::Commit { pc } = event.kind {
            self.commits.borrow_mut().push_back((event.hart, pc));
        }
    }
}

/// The first architectural difference between the machine and the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Commit number `commit` retired a different pc than the oracle was
    /// about to execute.
    Pc {
        /// 0-based index into the commit stream.
        commit: u64,
        /// The pc the machine committed.
        machine_pc: u32,
        /// The pc the oracle expected.
        oracle_pc: u32,
    },
    /// The machine kept committing after the oracle exited.
    MachineRanLong {
        /// 0-based index of the first surplus commit.
        commit: u64,
        /// Its pc.
        machine_pc: u32,
    },
    /// The machine exited before the oracle finished the program.
    MachineExitedEarly {
        /// The pc the oracle still had to execute.
        oracle_pc: u32,
    },
    /// A register differs after both finished.
    Register {
        /// The architectural register.
        reg: Reg,
        /// The machine's final value.
        machine: u32,
        /// The oracle's final value.
        oracle: u32,
    },
    /// A shared-memory word differs after both finished.
    Memory {
        /// The word address.
        addr: u32,
        /// The machine's final value.
        machine: u32,
        /// The oracle's final value.
        oracle: u32,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Pc {
                commit,
                machine_pc,
                oracle_pc,
            } => write!(
                f,
                "commit #{commit}: machine retired pc {machine_pc:#x}, oracle expected \
                 {oracle_pc:#x}"
            ),
            Divergence::MachineRanLong { commit, machine_pc } => write!(
                f,
                "commit #{commit}: machine retired pc {machine_pc:#x} after the oracle exited"
            ),
            Divergence::MachineExitedEarly { oracle_pc } => write!(
                f,
                "machine exited while the oracle still had pc {oracle_pc:#x} to execute"
            ),
            Divergence::Register {
                reg,
                machine,
                oracle,
            } => write!(
                f,
                "final value of {reg}: machine {machine:#x}, oracle {oracle:#x}"
            ),
            Divergence::Memory {
                addr,
                machine,
                oracle,
            } => write!(
                f,
                "final shared word at {addr:#x}: machine {machine:#x}, oracle {oracle:#x}"
            ),
        }
    }
}

/// Why a lockstep check did not complete cleanly.
#[derive(Debug)]
pub enum LockstepError {
    /// The machine could not even be built (bad image or fault plan).
    Setup(crate::SimError),
    /// The machine run itself failed (dump attached).
    Machine(Box<SimFailure>),
    /// The oracle faulted replaying a commit the machine retired fine.
    Oracle {
        /// 0-based index of the commit being replayed.
        commit: u64,
        /// The pc being replayed.
        pc: u32,
        /// The oracle's error.
        error: IssError,
    },
    /// A hart other than hart 0 committed: the program forked, which the
    /// sequential oracle cannot follow.
    Parallel {
        /// The offending hart.
        hart: HartId,
    },
    /// The two models disagreed architecturally.
    Diverged(Divergence),
}

impl fmt::Display for LockstepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockstepError::Setup(e) => write!(f, "could not build the machine: {e}"),
            LockstepError::Machine(fail) => write!(f, "machine run failed: {fail}"),
            LockstepError::Oracle { commit, pc, error } => write!(
                f,
                "oracle faulted at commit #{commit} (pc {pc:#x}): {error}"
            ),
            LockstepError::Parallel { hart } => write!(
                f,
                "hart {hart} committed instructions: lockstep checking needs a single-hart \
                 (sequential) program"
            ),
            LockstepError::Diverged(d) => write!(f, "lockstep divergence: {d}"),
        }
    }
}

impl std::error::Error for LockstepError {}

/// The result of a clean (non-diverging) lockstep run.
#[derive(Debug, Clone)]
pub struct LockstepReport {
    /// The machine's run report.
    pub report: RunReport,
    /// Instructions compared in lockstep.
    pub commits: u64,
}

/// Runs `image` on a machine configured by `cfg` and checks it in
/// lockstep against the sequential ISS oracle.
///
/// # Errors
///
/// [`LockstepError::Diverged`] carries the first architectural
/// difference; the other variants mean one of the models could not
/// finish (machine fault, oracle fault, or a parallel program).
pub fn run_lockstep(
    cfg: LbpConfig,
    image: &Image,
    max_cycles: u64,
) -> Result<LockstepReport, LockstepError> {
    let commits = Rc::new(RefCell::new(VecDeque::new()));
    let shared_bytes = u32::try_from(cfg.shared_bytes()).unwrap_or(u32::MAX);
    let sp = lbp_isa::LOCAL_BASE + cfg.stack_bytes() - CV_FRAME_BYTES;
    let mut oracle = Iss::new(image, cfg.stack_bytes(), shared_bytes, sp);

    let mut machine = Machine::new(cfg, image).map_err(LockstepError::Setup)?;
    machine.set_sink(Box::new(CommitCollector {
        commits: Rc::clone(&commits),
    }));
    let report = machine
        .run_diagnosed(max_cycles)
        .map_err(LockstepError::Machine)?;

    // A commit from any hart but hart 0 means the program forked; report
    // that up front rather than letting the oracle choke on the fork
    // instruction mid-replay.
    let stream = commits.borrow();
    if let Some(&(hart, _)) = stream.iter().find(|(h, _)| *h != HartId::FIRST) {
        return Err(LockstepError::Parallel { hart });
    }

    // Replay the commit stream against the oracle.
    let mut replayed = 0u64;
    for &(_, pc) in stream.iter() {
        if oracle.exited() {
            return Err(LockstepError::Diverged(Divergence::MachineRanLong {
                commit: replayed,
                machine_pc: pc,
            }));
        }
        let oracle_pc = oracle.pc();
        if oracle_pc != pc {
            return Err(LockstepError::Diverged(Divergence::Pc {
                commit: replayed,
                machine_pc: pc,
                oracle_pc,
            }));
        }
        oracle.step().map_err(|error| LockstepError::Oracle {
            commit: replayed,
            pc,
            error,
        })?;
        replayed += 1;
    }
    if !oracle.exited() {
        return Err(LockstepError::Diverged(Divergence::MachineExitedEarly {
            oracle_pc: oracle.pc(),
        }));
    }

    // Final architectural state: registers (through the machine's
    // renaming) and the whole shared space, word by word.
    for reg in Reg::all().skip(1) {
        let machine_v = machine.reg(HartId::FIRST, reg);
        let oracle_v = oracle.reg(reg);
        if machine_v != oracle_v {
            return Err(LockstepError::Diverged(Divergence::Register {
                reg,
                machine: machine_v,
                oracle: oracle_v,
            }));
        }
    }
    for word in 0..(shared_bytes / 4) {
        let addr = SHARED_BASE + word * 4;
        let machine_v = machine.peek_shared(addr).unwrap_or(0);
        let oracle_v = oracle.peek_shared(addr).unwrap_or(0);
        if machine_v != oracle_v {
            return Err(LockstepError::Diverged(Divergence::Memory {
                addr,
                machine: machine_v,
                oracle: oracle_v,
            }));
        }
    }
    Ok(LockstepReport {
        report,
        commits: replayed,
    })
}
