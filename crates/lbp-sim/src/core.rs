//! One LBP core: four harts sharing a five-stage out-of-order pipeline.
//!
//! Every cycle each stage — fetch, decode/rename, issue, write-back,
//! commit — independently selects one eligible hart by round robin (paper
//! Figs. 10-12). A hart is suspended after *every* fetch until its next pc
//! is known: at decode for straight-line code and direct jumps, at execute
//! for conditional branches and indirect calls. There is no branch
//! predictor; multithreading hides the bubble.

use std::collections::VecDeque;

use lbp_isa::{HartId, IdentityWord, Instr, OpKind, Region, HARTS_PER_CORE};

use crate::bank::MemSys;
use crate::config::Latencies;
use crate::error::SimError;
use crate::fabric::Fabric;
use crate::hart::{Fetched, HartCtx, HartState, ItEntry, Rb, RbWait};
use crate::msg::{CoreMsg, NetMsg};
use crate::prof::{ProfData, ProfEventKind};
use crate::race::RaceData;
use crate::stats::{StallKind, Stats};
use crate::trace::{Event, EventKind, Trace, TraceSink};

/// Pipeline stage indices for the round-robin pointers.
const ST_FETCH: usize = 0;
const ST_RENAME: usize = 1;
const ST_ISSUE: usize = 2;
const ST_WB: usize = 3;
const ST_COMMIT: usize = 4;

/// Shared mutable context threaded through the pipeline stages.
pub(crate) struct Env<'a> {
    pub mem: &'a mut MemSys,
    pub fabric: &'a mut Fabric,
    pub stats: &'a mut Stats,
    pub trace: &'a mut Trace,
    pub trace_on: bool,
    pub sink: Option<&'a mut dyn TraceSink>,
    pub lat: Latencies,
    pub now: u64,
    pub cores: usize,
    pub exited: &'a mut bool,
    /// Profiling collectors; `None` unless profiling is enabled, so the
    /// disabled path costs one branch per hook and changes nothing else.
    pub prof: Option<&'a mut ProfData>,
    /// Race-witness collector; `None` unless enabled. Same discipline as
    /// `prof`: observational, one branch per hook when off.
    pub race: Option<&'a mut RaceData>,
}

impl Env<'_> {
    fn emit(&mut self, hart: HartId, kind: EventKind) {
        if !self.trace_on && self.sink.is_none() {
            return;
        }
        let event = Event {
            cycle: self.now,
            hart,
            kind,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(&event);
        }
        if self.trace_on {
            self.trace.push(event.cycle, event.hart, event.kind);
        }
    }
}

/// One core: its four harts, the stage round-robin pointers and the hart
/// allocator queue.
#[derive(Debug)]
pub(crate) struct Core {
    pub index: u32,
    pub harts: Vec<HartCtx>,
    rr: [usize; 5],
    /// Pending fork requests (own `p_fc`s and `ForkReq`s from the
    /// predecessor core), satisfied one per cycle in arrival order.
    pub alloc_q: VecDeque<HartId>,
    /// Allocatable harts, in hand-out order: local indices never yet
    /// allocated (ascending), then recycled harts in the order their
    /// `p_ret`s committed. Because `p_ret` commits are serialized by the
    /// team-predecessor ending signal, this order is a pure function of
    /// the fork/join protocol — not of pipeline or fabric timing — which
    /// is what lets the functional engine reproduce hart assignment
    /// exactly. A set-based "lowest free" policy would instead depend on
    /// *when* an in-flight free lands relative to a fork request.
    pub free_q: VecDeque<u32>,
}

impl Core {
    pub fn new(index: u32, mk_hart: impl Fn(HartId) -> HartCtx) -> Core {
        Core {
            index,
            harts: (0..HARTS_PER_CORE as u32)
                .map(|l| mk_hart(HartId::from_parts(index, l)))
                .collect(),
            rr: [0; 5],
            alloc_q: VecDeque::new(),
            free_q: (0..HARTS_PER_CORE as u32).collect(),
        }
    }

    pub(crate) fn snap(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u32(self.index);
        w.seq(self.harts.len());
        for h in &self.harts {
            h.snap(w);
        }
        for &p in &self.rr {
            w.u64(p as u64);
        }
        w.seq(self.alloc_q.len());
        for &h in &self.alloc_q {
            crate::snapshot::put_hart(w, h);
        }
        w.seq(self.free_q.len());
        for &l in &self.free_q {
            w.u32(l);
        }
    }

    pub(crate) fn unsnap(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Core, crate::snapshot::SnapError> {
        let index = r.u32()?;
        let mut harts = Vec::new();
        for _ in 0..r.seq()? {
            harts.push(HartCtx::unsnap(r)?);
        }
        let mut rr = [0usize; 5];
        for p in &mut rr {
            *p = r.u64()? as usize;
        }
        let mut alloc_q = VecDeque::new();
        for _ in 0..r.seq()? {
            alloc_q.push_back(crate::snapshot::get_hart(r)?);
        }
        let mut free_q = VecDeque::new();
        for _ in 0..r.seq()? {
            let l = r.u32()?;
            if l >= HARTS_PER_CORE as u32 {
                return Err(crate::snapshot::SnapError::Corrupt(format!(
                    "free-queue entry {l} is not a local hart index"
                )));
            }
            free_q.push_back(l);
        }
        Ok(Core {
            index,
            harts,
            rr,
            alloc_q,
            free_q,
        })
    }

    /// Round-robin selection of one hart satisfying `pred`, advancing the
    /// stage pointer past the chosen hart.
    fn select(&mut self, stage: usize, pred: impl Fn(&HartCtx) -> bool) -> Option<usize> {
        let start = self.rr[stage];
        for k in 0..HARTS_PER_CORE {
            let i = (start + k) % HARTS_PER_CORE;
            if pred(&self.harts[i]) {
                self.rr[stage] = (i + 1) % HARTS_PER_CORE;
                return Some(i);
            }
        }
        None
    }

    /// One full core cycle (stages run in reverse pipeline order so each
    /// stage sees the state its predecessors left at the end of the
    /// previous cycle).
    pub fn tick(&mut self, env: &mut Env<'_>) -> Result<(), SimError> {
        self.process_alloc(env)?;
        self.release_syncm(env.now);
        let committed = self.stage_commit(env)?;
        self.stage_writeback(env);
        self.stage_issue(env)?;
        self.stage_rename(env);
        self.stage_fetch(env)?;
        // Stall attribution: commit selects at most one hart per cycle, so
        // a core cycle either retires one instruction or is a stall slot.
        // Classifying each slot into exactly one bucket yields the exact
        // partition `sum(stalls) + retired == cycles` per core.
        match committed {
            Some(pc) => {
                if let Some(p) = env.prof.as_deref_mut() {
                    p.retired(self.index as usize, pc);
                }
            }
            None => {
                let (kind, blamed) = self.classify_stall(env.now);
                env.stats.stalls_per_core[self.index as usize].bump(kind);
                if let Some(p) = env.prof.as_deref_mut() {
                    p.stalled(self.index as usize, blamed, kind);
                }
            }
        }
        Ok(())
    }

    /// The program location a stalling hart is blamed at: the oldest
    /// in-flight instruction (ROB head), else the fetched-but-unrenamed
    /// instruction, else the next fetch pc.
    fn blame_loc(h: &HartCtx) -> Option<u32> {
        h.rob
            .front()
            .map(|e| e.pc)
            .or_else(|| h.ib.as_ref().map(|f| f.pc))
            .or(h.pc)
    }

    /// Attributes a non-retiring cycle to its dominant cause. The checks
    /// run in a fixed priority order (synchronization before memory before
    /// operands before structural hazards), so the classification is as
    /// deterministic as the machine itself. Alongside the bucket, the
    /// classifier names the program location it blames — the oldest
    /// in-flight instruction of the hart that triggered the
    /// classification — or `None` when no instruction is blamable.
    fn classify_stall(&self, now: u64) -> (StallKind, Option<u32>) {
        if self.harts.iter().all(|h| h.state == HartState::Free) {
            return (StallKind::Idle, None);
        }
        let running = |h: &&HartCtx| h.state == HartState::Running;
        // Synchronization: a committing p_ret held by the barrier, or a
        // draining p_syncm.
        for h in self.harts.iter().filter(running) {
            let pret_blocked = h
                .rob
                .front()
                .is_some_and(|e| e.done && e.is_pret && !(h.end_signal && h.in_flight_mem == 0));
            if pret_blocked || h.syncm_wait {
                return (StallKind::SyncWait, Self::blame_loc(h));
            }
        }
        // Outstanding memory traffic (load responses or store acks).
        for h in self.harts.iter().filter(running) {
            if matches!(
                h.rb,
                Some(Rb {
                    wait: RbWait::Mem,
                    ..
                })
            ) || h.in_flight_mem > 0
            {
                return (StallKind::MemWait, Self::blame_loc(h));
            }
        }
        // A pending fork allocation is synchronization with the allocator.
        for h in self.harts.iter().filter(running) {
            if matches!(
                h.rb,
                Some(Rb {
                    wait: RbWait::Fork,
                    ..
                })
            ) {
                return (StallKind::SyncWait, Self::blame_loc(h));
            }
        }
        // Instructions waiting in the table with no ready operands.
        for h in self.harts.iter().filter(running) {
            if !h.it.is_empty() && h.oldest_ready().is_none() {
                return (StallKind::OperandWait, Self::blame_loc(h));
            }
        }
        // The single-entry result buffer is occupied (functional-unit
        // latency not yet hidden): the structural throttle of one hart.
        for h in self.harts.iter().filter(running) {
            if h.rb.is_some() {
                return (StallKind::RbFull, Self::blame_loc(h));
            }
        }
        if !self.harts.iter().any(|h| h.state == HartState::Running) {
            // Only Reserved/WaitingJoin harts: waiting for a start pc or a
            // join message from another core. No local instruction to
            // blame — the cause is on another core.
            return (StallKind::SyncWait, None);
        }
        // Running harts with an empty back end: the front end has not
        // produced a committable instruction (post-fetch suspension
        // waiting for the next pc, or the pipeline is filling). Blame the
        // first running hart's location.
        let _ = now;
        let loc = self.harts.iter().find(running).and_then(Self::blame_loc);
        (StallKind::FetchStarved, loc)
    }

    /// Satisfies at most one pending fork request with the head of the
    /// free queue (never-allocated harts in index order, then recycled
    /// harts in `p_ret`-commit order — see [`Core::free_q`]).
    fn process_alloc(&mut self, env: &mut Env<'_>) -> Result<(), SimError> {
        let Some(&requester) = self.alloc_q.front() else {
            return Ok(());
        };
        let Some(&child_front) = self.free_q.front() else {
            return Ok(()); // all four harts busy: the fork stalls, deterministically
        };
        let child_local = child_front as usize;
        debug_assert_eq!(
            self.harts[child_local].state,
            HartState::Free,
            "free-queue head must be a free hart"
        );
        self.free_q.pop_front();
        self.alloc_q.pop_front();
        let child = HartId::from_parts(self.index, child_local as u32);
        let sp = env.mem.cv_base(child);
        self.harts[child_local].allocate(sp);
        env.stats.forks += 1;
        env.emit(requester, EventKind::Fork { child });
        if let Some(p) = env.prof.as_deref_mut() {
            p.event(
                env.now,
                ProfEventKind::Fork {
                    parent: requester,
                    child,
                },
            );
        }
        if requester.core() == self.index {
            // Complete the local `p_fc`.
            let rb = self.harts[requester.local() as usize]
                .rb
                .as_mut()
                .ok_or_else(|| SimError::Protocol {
                    hart: requester,
                    what: "a fork was allocated for a hart with no pending p_fc".to_owned(),
                })?;
            debug_assert!(matches!(rb.wait, RbWait::Fork));
            rb.wait = RbWait::Done {
                value: Some(child.global()),
            };
        } else {
            // Reply to the predecessor core's `p_fn`.
            env.fabric.send(
                self.index,
                CoreMsg::ForkReply {
                    to: requester,
                    child,
                },
            );
        }
        Ok(())
    }

    /// Releases harts whose `p_syncm` drain condition is now met.
    fn release_syncm(&mut self, now: u64) {
        for h in &mut self.harts {
            if h.syncm_wait && h.mem_drained() {
                h.syncm_wait = false;
                h.unsuspend_next(now);
            }
        }
    }

    fn stage_fetch(&mut self, env: &mut Env<'_>) -> Result<(), SimError> {
        let now = env.now;
        let Some(i) = self.select(ST_FETCH, |h| {
            h.state == HartState::Running && h.pc.is_some() && h.can_fetch(now) && h.ib.is_none()
        }) else {
            return Ok(());
        };
        let h = &mut self.harts[i];
        let pc = h.pc.expect("checked by predicate");
        let word = env.mem.fetch(pc, h.id)?;
        let instr = Instr::decode(word).map_err(|_| SimError::Decode {
            pc,
            word,
            hart: h.id,
        })?;
        h.ib = Some(Fetched { pc, instr });
        h.fetch_suspended = true;
        let id = h.id;
        env.emit(id, EventKind::Fetch { pc });
        Ok(())
    }

    fn stage_rename(&mut self, env: &mut Env<'_>) {
        let Some(i) = self.select(ST_RENAME, |h| {
            h.ib.as_ref()
                .is_some_and(|f| h.rename_capacity(f.instr.dest().is_some()))
        }) else {
            return;
        };
        let h = &mut self.harts[i];
        let f = h.ib.take().expect("checked by predicate");
        h.rename(f);
        // Next-pc resolution (releases the post-fetch suspension).
        match f.instr {
            Instr::Jal { offset, .. } | Instr::PJal { offset, .. } => {
                h.pc = Some(f.pc.wrapping_add(offset as u32));
                h.unsuspend_next(env.now);
            }
            Instr::Branch { .. } | Instr::Jalr { .. } => {
                // Resolved at execute; stay suspended.
            }
            Instr::PJalr { rd, .. } => {
                if rd.is_zero() {
                    // p_ret: the hart fetches nothing more until it is
                    // ended, joined or restarted.
                    h.pc = None;
                } // call form: target known at execute; stay suspended.
            }
            Instr::PSyncm => {
                // Fetch stays blocked until the hart's memory accesses
                // drain (released by `release_syncm`).
                h.pc = Some(f.pc.wrapping_add(4));
                h.syncm_wait = true;
            }
            _ => {
                h.pc = Some(f.pc.wrapping_add(4));
                h.unsuspend_next(env.now);
            }
        }
    }

    fn stage_issue(&mut self, env: &mut Env<'_>) -> Result<(), SimError> {
        let Some(i) = self.select(ST_ISSUE, |h| h.rb.is_none() && h.oldest_ready().is_some())
        else {
            return Ok(());
        };
        let idx = self.harts[i].oldest_ready().expect("checked by predicate");
        let entry = self.harts[i].it.remove(idx);
        if entry.instr.is_mem() {
            self.harts[i].mem_in_it -= 1;
        }
        let wait = self.execute(i, &entry, env)?;
        self.harts[i].rb = Some(Rb {
            seq: entry.seq,
            dest: entry.dest,
            wait,
        });
        Ok(())
    }

    /// Executes one instruction (the issue + functional-unit step),
    /// returning the result-buffer wait state.
    fn execute(
        &mut self,
        hart_idx: usize,
        e: &ItEntry,
        env: &mut Env<'_>,
    ) -> Result<RbWait, SimError> {
        let now = env.now;
        let lat = env.lat;
        let alu = |v: u32| RbWait::Until {
            at: now + lat.alu as u64,
            value: Some(v),
        };
        let silent = RbWait::Until {
            at: now + lat.alu as u64,
            value: None,
        };
        let id = self.harts[hart_idx].id;
        let v1 = self.harts[hart_idx].src_value(e.srcs[0]);
        let v2 = self.harts[hart_idx].src_value(e.srcs[1]);
        Ok(match e.instr {
            Instr::Lui { imm, .. } => alu(imm),
            Instr::Auipc { imm, .. } => alu(e.pc.wrapping_add(imm)),
            Instr::OpImm { kind, imm, .. } => alu(kind.eval(v1, imm)),
            Instr::Op { kind, .. } => {
                if kind.is_muldiv() {
                    env.stats.muldiv_ops += 1;
                }
                let cycles = if kind.is_muldiv() {
                    if matches!(
                        kind,
                        OpKind::Mul | OpKind::Mulh | OpKind::Mulhsu | OpKind::Mulhu
                    ) {
                        lat.mul
                    } else {
                        lat.div
                    }
                } else {
                    lat.alu
                };
                RbWait::Until {
                    at: now + cycles as u64,
                    value: Some(kind.eval(v1, v2)),
                }
            }
            Instr::Jal { .. } => alu(e.pc.wrapping_add(4)),
            Instr::Jalr { offset, .. } => {
                let target = v1.wrapping_add(offset as u32) & !1;
                let h = &mut self.harts[hart_idx];
                h.pc = Some(target);
                h.unsuspend_next(now);
                alu(e.pc.wrapping_add(4))
            }
            Instr::Branch { kind, offset, .. } => {
                let target = if kind.taken(v1, v2) {
                    e.pc.wrapping_add(offset as u32)
                } else {
                    e.pc.wrapping_add(4)
                };
                let h = &mut self.harts[hart_idx];
                h.pc = Some(target);
                h.unsuspend_next(now);
                silent
            }
            Instr::Load { kind, offset, .. } => {
                let addr = v1.wrapping_add(offset as u32);
                if let Some(r) = env.race.as_deref_mut() {
                    r.read(id, e.pc, addr, kind.size() as u8);
                }
                self.send_read(
                    id,
                    addr,
                    kind.size() as u8,
                    matches!(kind, lbp_isa::LoadKind::B | lbp_isa::LoadKind::H),
                    env,
                )?;
                self.harts[hart_idx].in_flight_mem += 1;
                RbWait::Mem
            }
            Instr::Store { kind, offset, .. } => {
                let addr = v1.wrapping_add(offset as u32);
                if let Some(r) = env.race.as_deref_mut() {
                    r.write(id, e.pc, addr, kind.size() as u8);
                }
                self.send_write(id, addr, v2, kind.size() as u8, env)?;
                self.harts[hart_idx].in_flight_mem += 1;
                silent
            }
            Instr::PLwcv { offset, .. } => {
                let addr = env.mem.cv_base(id).wrapping_add(offset as u32);
                self.send_read(id, addr, 4, false, env)?;
                self.harts[hart_idx].in_flight_mem += 1;
                RbWait::Mem
            }
            Instr::PSwcv { offset, .. } => {
                let target = HartId::new(v1 & 0xffff);
                self.harts[hart_idx].in_flight_mem += 1;
                if target.core() == self.index {
                    let addr = env.mem.cv_base(target).wrapping_add(offset as u32);
                    env.mem.local_request(
                        self.index,
                        NetMsg::WriteReq {
                            addr,
                            value: v2,
                            size: 4,
                            hart: id,
                        },
                        now,
                    );
                    env.emit(
                        id,
                        EventKind::MemWrite {
                            addr,
                            bank: self.index,
                            value: v2,
                        },
                    );
                    env.stats.local_accesses += 1;
                } else if target.core() == self.index + 1 && (target.core() as usize) < env.cores {
                    env.fabric.send(
                        self.index,
                        CoreMsg::CvWrite {
                            to: target,
                            offset: offset as u32,
                            value: v2,
                            from: id,
                        },
                    );
                } else {
                    return Err(SimError::Protocol {
                        hart: id,
                        what: format!(
                            "p_swcv to hart {target}, which is neither on this core nor the next"
                        ),
                    });
                }
                silent
            }
            Instr::PLwre { offset, .. } => {
                let slot = offset as usize;
                let value = self.harts[hart_idx].recv[slot]
                    .pop_front()
                    .expect("issue gated on a full slot");
                alu(value)
            }
            Instr::PSwre { offset, .. } => {
                // rs1 is an identity word: the receiving (prior) hart is in
                // the upper half (`p_set` puts it there; `p_merge` keeps it).
                let target = IdentityWord::from_bits(v1).join_hart();
                if target.core() > self.index {
                    return Err(SimError::Protocol {
                        hart: id,
                        what: format!(
                            "p_swre to hart {target}, which follows this core: the backward \
                             line cannot send data forward in the sequential order"
                        ),
                    });
                }
                env.fabric.send(
                    self.index,
                    CoreMsg::Result {
                        to: target,
                        slot: offset as u32,
                        value: v2,
                    },
                );
                silent
            }
            Instr::PFc { .. } => {
                self.alloc_q.push_back(id);
                RbWait::Fork
            }
            Instr::PFn { .. } => {
                if self.index as usize + 1 >= env.cores {
                    return Err(SimError::Protocol {
                        hart: id,
                        what: "p_fn on the last core: the core line does not wrap".to_owned(),
                    });
                }
                env.fabric.send(self.index, CoreMsg::ForkReq { from: id });
                RbWait::Fork
            }
            Instr::PSet { .. } => alu(IdentityWord::from_bits(v1).set(id).bits()),
            Instr::PMerge { .. } => alu(IdentityWord::from_bits(v1)
                .merge(IdentityWord::from_bits(v2))
                .bits()),
            Instr::PSyncm => silent,
            Instr::PJal { .. } => {
                let target = HartId::new(v1 & 0xffff);
                self.send_start(id, target, e.pc.wrapping_add(4), env)?;
                self.harts[hart_idx].team_succ = Some(target);
                alu(0) // rd is cleared
            }
            Instr::PJalr { rd, .. } => {
                if rd.is_zero() {
                    // p_ret: resolved here, acted on at commit (in team
                    // order).
                    self.harts[hart_idx].rob_set_pret(e.seq, v1, v2);
                    silent
                } else {
                    // Parallelized call: jump locally to rs2, start the
                    // allocated hart (low half of rs1) at pc+4, clear rd.
                    let target_hart = IdentityWord::from_bits(v1).allocated_hart();
                    self.send_start(id, target_hart, e.pc.wrapping_add(4), env)?;
                    let h = &mut self.harts[hart_idx];
                    h.team_succ = Some(target_hart);
                    h.pc = Some(v2 & !1);
                    h.unsuspend_next(now);
                    alu(0)
                }
            }
        })
    }

    /// Sends a start pc to an allocated hart (same or next core).
    fn send_start(
        &mut self,
        from: HartId,
        to: HartId,
        pc: u32,
        env: &mut Env<'_>,
    ) -> Result<(), SimError> {
        if (to.core() != self.index && to.core() != self.index + 1)
            || to.core() as usize >= env.cores
        {
            return Err(SimError::Protocol {
                hart: from,
                what: format!("start pc sent to hart {to}, which is neither local nor next-core"),
            });
        }
        env.fabric.send(self.index, CoreMsg::Start { to, pc });
        Ok(())
    }

    /// Routes a read request to the right port.
    fn send_read(
        &mut self,
        hart: HartId,
        addr: u32,
        size: u8,
        signed: bool,
        env: &mut Env<'_>,
    ) -> Result<(), SimError> {
        let msg = NetMsg::ReadReq {
            addr,
            hart,
            size,
            signed,
        };
        self.route_request(hart, addr, msg, env)?;
        let bank = self.bank_of(addr, env);
        env.emit(hart, EventKind::MemRead { addr, bank });
        Ok(())
    }

    /// Routes a write request to the right port.
    fn send_write(
        &mut self,
        hart: HartId,
        addr: u32,
        value: u32,
        size: u8,
        env: &mut Env<'_>,
    ) -> Result<(), SimError> {
        let msg = NetMsg::WriteReq {
            addr,
            value,
            size,
            hart,
        };
        self.route_request(hart, addr, msg, env)?;
        let bank = self.bank_of(addr, env);
        env.emit(hart, EventKind::MemWrite { addr, bank, value });
        Ok(())
    }

    fn bank_of(&self, addr: u32, env: &Env<'_>) -> u32 {
        match Region::of(addr) {
            Region::Shared => env.mem.shared_bank_of(addr),
            _ => self.index,
        }
    }

    fn route_request(
        &mut self,
        hart: HartId,
        addr: u32,
        msg: NetMsg,
        env: &mut Env<'_>,
    ) -> Result<(), SimError> {
        match Region::of(addr) {
            Region::Local | Region::Io => {
                env.mem.local_request(self.index, msg, env.now);
                env.stats.local_accesses += 1;
            }
            Region::Shared => {
                let bank = env.mem.shared_bank_of(addr);
                if bank as usize >= env.cores {
                    return Err(SimError::Mem(crate::bank::MemFault::Unmapped {
                        addr,
                        hart,
                    }));
                }
                if let Some(p) = env.prof.as_deref_mut() {
                    p.noc_request(self.index as usize, bank as usize);
                }
                if bank == self.index {
                    env.mem.shared_local_request(self.index, msg, env.now);
                    env.stats.local_accesses += 1;
                } else {
                    env.mem.net.send_from_core(self.index, msg);
                    env.stats.remote_accesses += 1;
                }
            }
            Region::Code => {
                return Err(SimError::Protocol {
                    hart,
                    what: format!("data access to the code region at {addr:#010x}"),
                });
            }
        }
        Ok(())
    }

    fn stage_writeback(&mut self, env: &mut Env<'_>) {
        let now = env.now;
        let Some(i) = self.select(ST_WB, |h| {
            h.rb.as_ref().is_some_and(|rb| match rb.wait {
                RbWait::Done { .. } => true,
                RbWait::Until { at, .. } => at <= now,
                RbWait::Mem | RbWait::Fork => false,
            })
        }) else {
            return;
        };
        let h = &mut self.harts[i];
        let rb = h.rb.take().expect("checked by predicate");
        let value = match rb.wait {
            RbWait::Done { value } | RbWait::Until { value, .. } => value,
            _ => unreachable!("predicate admits only completed buffers"),
        };
        if let Some(dest) = rb.dest {
            let slot = &mut h.prf[dest as usize];
            slot.value = value.expect("instruction with a destination produced a value");
            slot.ready = true;
        }
        h.rob_mark_done(rb.seq);
    }

    /// Commits at most one instruction; returns the committed pc, if one
    /// retired.
    fn stage_commit(&mut self, env: &mut Env<'_>) -> Result<Option<u32>, SimError> {
        let Some(i) = self.select(ST_COMMIT, |h| {
            h.rob.front().is_some_and(|e| {
                // A p_ret additionally needs the team predecessor's ending
                // signal AND a quiescent memory interface: the hardware
                // barrier guarantees that a consuming region's loads see
                // the producing region's stores (paper §3, Fig. 4), which
                // only holds if a hart's stores are done before it ends.
                e.done && (!e.is_pret || (h.end_signal && h.in_flight_mem == 0))
            })
        }) else {
            return Ok(None);
        };
        let h = &mut self.harts[i];
        let entry = h.rob.pop_front().expect("checked by predicate");
        if let Some((_new, Some(old))) = entry.dest {
            h.free_phys.push_back(old);
        }
        let id = h.id;
        env.stats.retired_per_hart[id.global() as usize] += 1;
        env.emit(id, EventKind::Commit { pc: entry.pc });
        if entry.is_pret {
            self.commit_p_ret(i, entry.pret.expect("p_ret resolved at issue"), env)?;
        }
        Ok(Some(entry.pc))
    }

    /// The four ending types of a committing `p_ret` (paper §4).
    fn commit_p_ret(
        &mut self,
        hart_idx: usize,
        (ra, t0): (u32, u32),
        env: &mut Env<'_>,
    ) -> Result<(), SimError> {
        let id = self.harts[hart_idx].id;
        self.harts[hart_idx].end_signal = false; // consumed
        let word = IdentityWord::from_bits(t0);
        if ra == 0 {
            if word.is_exit_sentinel() {
                // Type 3: process exit.
                *env.exited = true;
                env.emit(id, EventKind::Exit);
                if let Some(p) = env.prof.as_deref_mut() {
                    p.event(env.now, ProfEventKind::Exit { hart: id });
                }
            } else if word.joins_to(id) {
                // Type 2: keep waiting for a join.
                self.harts[hart_idx].state = HartState::WaitingJoin;
                self.forward_end_signal(hart_idx, env);
            } else {
                // Type 1: the hart ends.
                self.harts[hart_idx].end();
                self.free_q.push_back(hart_idx as u32);
                env.emit(id, EventKind::HartEnd);
                if let Some(p) = env.prof.as_deref_mut() {
                    p.event(env.now, ProfEventKind::End { hart: id });
                }
                self.forward_end_signal(hart_idx, env);
            }
        } else {
            // Type 4: end and send the continuation address to the join
            // hart over the backward line. A join to the hart itself (the
            // paper's Fig. 7: the team's last member calls the thread
            // function with a plain `jalr` after `p_set t0`) resumes this
            // same hart, so it waits instead of freeing.
            let target = word.join_hart();
            if target.core() > self.index {
                return Err(SimError::Protocol {
                    hart: id,
                    what: format!("join address sent forward to hart {target}"),
                });
            }
            env.fabric
                .send(self.index, CoreMsg::Join { to: target, pc: ra });
            if target == id {
                self.harts[hart_idx].state = HartState::WaitingJoin;
            } else {
                self.harts[hart_idx].end();
                self.free_q.push_back(hart_idx as u32);
                env.emit(id, EventKind::HartEnd);
                if let Some(p) = env.prof.as_deref_mut() {
                    p.event(env.now, ProfEventKind::End { hart: id });
                }
            }
        }
        Ok(())
    }

    /// Forwards the ending-hart signal to the team successor — the hart
    /// this hart's fork started (recorded at `p_jal`/`p_jalr`). A hart
    /// that forked nothing has no successor and the signal stops.
    fn forward_end_signal(&mut self, hart_idx: usize, env: &mut Env<'_>) {
        let h = &self.harts[hart_idx];
        let id = h.id;
        if let Some(next) = h.team_succ {
            if (next.core() as usize) < env.cores {
                env.fabric.send(self.index, CoreMsg::EndSignal { to: next });
                env.emit(id, EventKind::EndSignal);
            }
        }
    }
}
