//! # lbp-sim — cycle-level simulator of the LBP manycore processor
//!
//! A deterministic, cycle-level model of the *Little Big Processor*
//! (Goossens, Louetsi, Parello, PACT 2021): up to 64 cores of four harts
//! each, five-stage out-of-order pipelines with **no** branch predictor,
//! **no** caches, **no** load/store queue and **no** interrupts; three
//! memory banks per core; a hierarchical r1/r2/r3 bus interconnect; and
//! the X_PAR hardware fork/join fabric (forward inter-core links plus a
//! backward result line).
//!
//! Determinism is by construction: every arbiter is round-robin or FIFO,
//! every queue is serviced in a fixed order, and there is no source of
//! randomness — so a program applied to the same data produces the same
//! cycle-by-cycle event trace on every run, which is the paper's central
//! claim.
//!
//! # Examples
//!
//! Run a two-hart program that forks with the paper's Fig. 8 protocol:
//!
//! ```
//! use lbp_sim::{LbpConfig, Machine};
//!
//! let image = lbp_asm::assemble(
//!     "main:
//!         li    t0, -1
//!         addi  sp, sp, -8
//!         sw    ra, 0(sp)
//!         sw    t0, 4(sp)
//!         p_set t0
//!         la    ra, rp             # the team joins back to rp
//!         p_fc   t6                # fork: child continues after p_jalr
//!         p_swcv ra, t6, 0
//!         p_swcv t0, t6, 4
//!         p_merge t0, t0, t6
//!         p_syncm
//!         la    a0, child
//!         p_jalr ra, t0, a0        # call child locally, continuation on t6
//!         p_lwcv ra, 0             # (these run on the forked hart)
//!         p_lwcv t0, 4
//!         p_set t0
//!         la    a0, child
//!         jalr  a0                 # last member: plain call, self-join
//!         lw    ra, 0(sp)          # reloads rp from the cv frame
//!         lw    t0, 4(sp)
//!         addi  sp, sp, 8
//!         p_ret                    # sends rp back to hart 0
//!     rp:
//!         lw    ra, 0(sp)
//!         lw    t0, 4(sp)
//!         addi  sp, sp, 8
//!         p_ret                    # exit (ra=0, t0=-1)
//!     child:
//!         p_ret                    # end of a team member
//!     ",
//! )?;
//! let mut m = Machine::new(LbpConfig::cores(1), &image)?;
//! let report = m.run(100_000)?;
//! assert!(report.exited);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod config;
mod core;
mod deadlock;
mod dump;
mod error;
mod fabric;
pub mod fast;
mod fault;
mod hart;
mod io;
pub mod iss;
pub mod json;
mod lockstep;
mod machine;
mod msg;
mod network;
mod prof;
mod race;
mod snapshot;
mod stats;
mod trace;

pub use bank::MemFault;
pub use config::{Latencies, LbpConfig, CV_FRAME_BYTES};
pub use dump::{HartDump, MachineDump, SimFailure, DUMP_SCHEMA};
pub use error::{BlockedHart, SimError};
pub use fast::{FastEngine, FastStop, FastSummary};
pub use fault::{Fault, FaultPlan};
pub use io::{InputDevice, IoBus, OutputDevice, DEVICE_STRIDE};
pub use json::{Json, JsonError};
pub use lockstep::{run_lockstep, Divergence, LockstepError, LockstepReport};
pub use machine::{Machine, RunPause, RunReport};
pub use prof::{PcCounters, ProfData, ProfEvent, ProfEventKind, ProfInterval};
pub use race::{RaceData, RaceKind, RaceWitness};
pub use snapshot::{MachineState, SnapError};
pub use stats::{CoreStalls, IntervalSample, StallKind, Stats};
pub use trace::{ChromeSink, Event, EventKind, JsonlSink, TextSink, Trace, TraceSink};
