//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is part of the machine configuration: every fault is
//! pinned to an exact cycle or an exact message ordinal, so an injected
//! run is as reproducible as a clean one. The plan models the classic
//! hardware fault universe — a flipped register or memory bit, a corrupted
//! instruction word, a dropped or delayed fabric message — and exists to
//! prove the robustness layer works: every injected fault must surface as
//! a structured [`SimError`](crate::SimError) (usually `Deadlock`,
//! `Decode` or a lockstep divergence), never as a panic.
//!
//! Faults can be written as compact spec strings (the `--fault` flag of
//! `lbp-run` and the CI smoke matrix use them):
//!
//! ```text
//! flip-reg:HART:REG:BIT:CYCLE    flip-reg:0:a0:3:500
//! flip-mem:ADDR:BIT:CYCLE        flip-mem:0x30000000:7:1000
//! corrupt-instr:PC:XOR:CYCLE     corrupt-instr:0x8:0xffffffff:1
//! drop-msg:NTH                   drop-msg:0
//! delay-msg:NTH:CYCLES           delay-msg:2:40
//! ```

use std::fmt;

use lbp_isa::{HartId, Reg};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR bit `bit` of architectural register `reg` of `hart` (through
    /// its current renaming) at the start of `cycle`.
    FlipReg {
        /// The target hart.
        hart: HartId,
        /// The architectural register (not `x0`).
        reg: Reg,
        /// Bit index, 0-31.
        bit: u32,
        /// The cycle the flip is applied at.
        cycle: u64,
    },
    /// XOR bit `bit` of the shared-memory word containing `addr` at the
    /// start of `cycle`.
    FlipMem {
        /// Any address within the target word (rounded down to 4 bytes).
        addr: u32,
        /// Bit index, 0-31.
        bit: u32,
        /// The cycle the flip is applied at.
        cycle: u64,
    },
    /// XOR the code word at `pc` with `xor` at the start of `cycle`
    /// (every core's code bank is the same copy, so all cores see it).
    CorruptInstr {
        /// The word-aligned code address.
        pc: u32,
        /// The XOR mask (e.g. `0xffff_ffff` inverts the word).
        xor: u32,
        /// The cycle the corruption is applied at.
        cycle: u64,
    },
    /// Silently discard the `nth` message (0-based, in global send order)
    /// entering the fork/join fabric.
    DropMsg {
        /// The 0-based ordinal of the doomed message.
        nth: u64,
    },
    /// Hold the `nth` fabric message back for `cycles` cycles before it
    /// enters its link.
    DelayMsg {
        /// The 0-based ordinal of the delayed message.
        nth: u64,
        /// Extra cycles the message is held (at least 1).
        cycles: u32,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::FlipReg {
                hart,
                reg,
                bit,
                cycle,
            } => write!(f, "flip-reg:{}:{reg}:{bit}:{cycle}", hart.global()),
            Fault::FlipMem { addr, bit, cycle } => {
                write!(f, "flip-mem:{addr:#x}:{bit}:{cycle}")
            }
            Fault::CorruptInstr { pc, xor, cycle } => {
                write!(f, "corrupt-instr:{pc:#x}:{xor:#x}:{cycle}")
            }
            Fault::DropMsg { nth } => write!(f, "drop-msg:{nth}"),
            Fault::DelayMsg { nth, cycles } => write!(f, "delay-msg:{nth}:{cycles}"),
        }
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal number.
fn parse_num(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("`{s}` is not a number"))
}

fn parse_u32(s: &str) -> Result<u32, String> {
    u32::try_from(parse_num(s)?).map_err(|_| format!("`{s}` does not fit in 32 bits"))
}

impl Fault {
    /// Parses a fault spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse(spec: &str) -> Result<Fault, String> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let fields: Vec<&str> = parts.collect();
        let arity = |n: usize| -> Result<(), String> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(format!("`{kind}` takes {n} field(s), got {}", fields.len()))
            }
        };
        match kind {
            "flip-reg" => {
                arity(4)?;
                let reg: Reg = fields[1]
                    .parse()
                    .map_err(|_| format!("`{}` is not a register", fields[1]))?;
                Ok(Fault::FlipReg {
                    hart: HartId::new(parse_u32(fields[0])?),
                    reg,
                    bit: parse_u32(fields[2])?,
                    cycle: parse_num(fields[3])?,
                })
            }
            "flip-mem" => {
                arity(3)?;
                Ok(Fault::FlipMem {
                    addr: parse_u32(fields[0])?,
                    bit: parse_u32(fields[1])?,
                    cycle: parse_num(fields[2])?,
                })
            }
            "corrupt-instr" => {
                arity(3)?;
                Ok(Fault::CorruptInstr {
                    pc: parse_u32(fields[0])?,
                    xor: parse_u32(fields[1])?,
                    cycle: parse_num(fields[2])?,
                })
            }
            "drop-msg" => {
                arity(1)?;
                Ok(Fault::DropMsg {
                    nth: parse_num(fields[0])?,
                })
            }
            "delay-msg" => {
                arity(2)?;
                Ok(Fault::DelayMsg {
                    nth: parse_num(fields[0])?,
                    cycles: parse_u32(fields[1])?,
                })
            }
            other => Err(format!(
                "unknown fault kind `{other}` (expected flip-reg, flip-mem, corrupt-instr, \
                 drop-msg or delay-msg)"
            )),
        }
    }

    /// The cycle a time-triggered fault fires at (`None` for the
    /// message-ordinal faults, which fire on send).
    pub fn cycle(&self) -> Option<u64> {
        match self {
            Fault::FlipReg { cycle, .. }
            | Fault::FlipMem { cycle, .. }
            | Fault::CorruptInstr { cycle, .. } => Some(*cycle),
            Fault::DropMsg { .. } | Fault::DelayMsg { .. } => None,
        }
    }
}

/// A deterministic schedule of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in no particular order (each carries its own trigger).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting nothing (the default configuration).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }
}

impl FromIterator<Fault> for FaultPlan {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> FaultPlan {
        FaultPlan {
            faults: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_display() {
        for spec in [
            "flip-reg:0:a0:3:500",
            "flip-mem:0x30000000:7:1000",
            "corrupt-instr:0x8:0xffffffff:1",
            "drop-msg:0",
            "delay-msg:2:40",
        ] {
            let fault = Fault::parse(spec).unwrap();
            assert_eq!(Fault::parse(&fault.to_string()).unwrap(), fault);
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        assert!(Fault::parse("flip-reg:0:a0:3").unwrap_err().contains("4"));
        assert!(Fault::parse("drop-msg:x").unwrap_err().contains("x"));
        assert!(Fault::parse("melt-cpu:1").unwrap_err().contains("melt-cpu"));
        assert!(Fault::parse("flip-reg:0:q9:3:1")
            .unwrap_err()
            .contains("register"));
    }

    #[test]
    fn hex_and_decimal_numbers_parse() {
        assert_eq!(parse_num("0x10").unwrap(), 16);
        assert_eq!(parse_num("16").unwrap(), 16);
        assert!(parse_num("").is_err());
    }
}
