//! Deterministic binary serialization of full machine state.
//!
//! A [`MachineState`] is a self-contained, byte-exact encoding of a
//! [`Machine`](crate::Machine) at a cycle boundary: configuration and
//! fault plan, every hart's architectural and microarchitectural state
//! (renaming tables, instruction table, reorder buffer, result buffer,
//! receive slots), the three memory banks of every core, every in-flight
//! router and fabric message, the I/O bus, the statistics counters and
//! the cycle count. Restoring it yields a machine whose future is
//! bit-identical to the original's — the paper's cycle-determinism
//! claim means machine state at cycle N is a pure function of
//! (image, configuration, fault plan), so `restore(snapshot_at(N))`
//! followed by M cycles reproduces exactly what cycles N..N+M of the
//! original run would have done.
//!
//! The encoding is a flat little-endian byte stream with no padding and
//! a fixed field order, so two snapshots of identical machines are
//! byte-identical — which is what lets the divergence bisector compare
//! machine states by comparing bytes.
//!
//! The payload is split in two sections. The *static* section holds the
//! configuration, the fault plan and the fault bookkeeping; the
//! *dynamic* section holds everything the program's execution actually
//! determines. [`MachineState::dynamic_bytes`] exposes the latter so
//! two runs under *different* fault plans (e.g. a clean and an injected
//! run) can still be compared state-for-state.

use std::fmt;

/// An error raised while decoding or restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the value it should contain.
    Truncated,
    /// A structural invariant of the encoding does not hold (bad tag,
    /// inconsistent sizes, an instruction word that does not decode).
    Corrupt(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Bytes of the payload header: cycle, core count, dynamic-section
/// offset (three little-endian u64 values).
const HEADER_BYTES: usize = 24;

/// A full machine state, encoded. Produced by
/// [`Machine::snapshot`](crate::Machine::snapshot) and consumed by
/// [`Machine::restore`](crate::Machine::restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    pub(crate) cycle: u64,
    pub(crate) cores: usize,
    pub(crate) dyn_offset: usize,
    pub(crate) bytes: Vec<u8>,
}

impl MachineState {
    /// The cycle the machine was at when the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The machine's core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The raw encoded payload (what `lbp-snap` wraps into its
    /// versioned, content-hashed container).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The dynamic (execution-determined) section of the payload:
    /// everything except the configuration, the fault plan and the
    /// fault bookkeeping. Two machines are in the same execution state
    /// exactly when these bytes are equal — even when their fault plans
    /// differ, which is what divergence bisection compares.
    pub fn dynamic_bytes(&self) -> &[u8] {
        &self.bytes[self.dyn_offset..]
    }

    /// Reassembles a state from payload bytes (e.g. read back from an
    /// `lbp-snap-v1` file).
    ///
    /// Only the header is validated here; full validation happens in
    /// [`Machine::restore`](crate::Machine::restore).
    ///
    /// # Errors
    ///
    /// Fails if the header is truncated or self-inconsistent.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<MachineState, SnapError> {
        let mut r = SnapReader::new(&bytes);
        let cycle = r.u64()?;
        let cores = r.u64()? as usize;
        let dyn_offset = r.u64()? as usize;
        if cores == 0 {
            return Err(SnapError::Corrupt("core count is zero".to_owned()));
        }
        if dyn_offset < HEADER_BYTES || dyn_offset > bytes.len() {
            return Err(SnapError::Corrupt(format!(
                "dynamic-section offset {dyn_offset} is outside the payload"
            )));
        }
        Ok(MachineState {
            cycle,
            cores,
            dyn_offset,
            bytes,
        })
    }
}

/// The snapshot byte writer: little-endian, no padding, fixed order.
#[derive(Debug, Default)]
pub(crate) struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Overwrites the u64 previously written at `pos` (header patching).
    pub fn patch_u64(&mut self, pos: usize, v: u64) {
        self.buf[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// A length-prefixed raw byte block.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// An `Option`: presence tag then the value.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut SnapWriter, &T)) {
        match v {
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
            None => self.u8(0),
        }
    }

    /// A sequence length prefix (pair with a loop over the items).
    pub fn seq(&mut self, len: usize) {
        self.u64(len as u64);
    }
}

/// The snapshot byte reader, mirroring [`SnapWriter`] field for field.
#[derive(Debug)]
pub(crate) struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(data: &'a [u8]) -> SnapReader<'a> {
        SnapReader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt(format!("bad bool tag {other}"))),
        }
    }

    /// A length-prefixed raw byte block.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| SnapError::Corrupt("string is not UTF-8".to_owned()))
    }

    /// An `Option`: presence tag then the value.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            other => Err(SnapError::Corrupt(format!("bad option tag {other}"))),
        }
    }

    /// A sequence length prefix. Every encoded item occupies at least
    /// one byte, so a length beyond the remaining bytes is corruption —
    /// rejecting it here keeps a hostile length from over-allocating.
    pub fn seq(&mut self) -> Result<usize, SnapError> {
        let n = self.u64()? as usize;
        if n > self.remaining() {
            return Err(SnapError::Corrupt(format!(
                "sequence of {n} items in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Requires the stream to be fully consumed (restore ends exactly at
    /// the last byte; trailing garbage means a format mismatch).
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Corrupt(format!(
                "{} unread bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Serializes an instruction as its machine word (every in-flight
/// instruction came from decode, and encode is total on decode's image).
pub(crate) fn put_instr(w: &mut SnapWriter, i: &lbp_isa::Instr) {
    let word = i.encode().expect("a decoded instruction re-encodes");
    w.u32(word);
}

/// Deserializes an instruction from its machine word.
pub(crate) fn get_instr(r: &mut SnapReader<'_>) -> Result<lbp_isa::Instr, SnapError> {
    let word = r.u32()?;
    lbp_isa::Instr::decode(word)
        .map_err(|e| SnapError::Corrupt(format!("instruction word {word:#010x}: {e}")))
}

/// Serializes a hart id as its global number.
pub(crate) fn put_hart(w: &mut SnapWriter, h: lbp_isa::HartId) {
    w.u32(h.global());
}

/// Deserializes a hart id.
pub(crate) fn get_hart(r: &mut SnapReader<'_>) -> Result<lbp_isa::HartId, SnapError> {
    Ok(lbp_isa::HartId::new(r.u32()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX);
        w.bool(true);
        w.str("hi");
        w.opt(&Some(5u32), |w, v| w.u32(*v));
        w.opt(&None::<u32>, |w, v| w.u32(*v));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hi");
        assert_eq!(r.opt(|r| r.u32()).unwrap(), Some(5));
        assert_eq!(r.opt(|r| r.u32()).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let mut bytes = w.into_bytes();
        bytes.pop();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let bytes = [9u8];
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.opt(|r| r.u8()), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn oversized_sequence_rejected() {
        let mut w = SnapWriter::new();
        w.seq(1_000_000);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.seq(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn machine_state_header_parses() {
        let mut w = SnapWriter::new();
        w.u64(42); // cycle
        w.u64(4); // cores
        w.u64(HEADER_BYTES as u64); // dynamic section starts right after
        let state = MachineState::from_bytes(w.into_bytes()).unwrap();
        assert_eq!(state.cycle(), 42);
        assert_eq!(state.cores(), 4);
        assert!(state.dynamic_bytes().is_empty());
        assert!(MachineState::from_bytes(vec![0; 8]).is_err());
    }
}
