//! Machine configuration.

use lbp_isa::HARTS_PER_CORE;

use crate::fault::{Fault, FaultPlan};
use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// Functional-unit and interconnect latencies, in cycles.
///
/// The defaults model the FPGA implementation the paper reports on: a
/// single-cycle ALU, a short pipelined multiplier, an iterative divider,
/// single-cycle link hops and single-cycle bank service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// ALU operations (result available the next cycle).
    pub alu: u32,
    /// RV32M multiplications.
    pub mul: u32,
    /// RV32M divisions/remainders.
    pub div: u32,
    /// One traversal of any inter-core or router link.
    pub link_hop: u32,
    /// Bank access time once a request is at the bank port.
    pub bank: u32,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            alu: 1,
            mul: 3,
            div: 12,
            link_hop: 1,
            bank: 1,
        }
    }
}

/// Full configuration of an LBP machine instance.
///
/// # Examples
///
/// ```
/// use lbp_sim::LbpConfig;
/// let cfg = LbpConfig::cores(16);
/// assert_eq!(cfg.cores, 16);
/// assert_eq!(cfg.harts(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LbpConfig {
    /// Number of cores (the paper evaluates 4, 16 and 64).
    pub cores: usize,
    /// Bytes of local (stack) bank per core; divided evenly among the
    /// core's four harts.
    pub local_bank_bytes: u32,
    /// Bytes of shared bank per core; the global shared space is the
    /// concatenation of all shared banks.
    pub shared_bank_bytes: u32,
    /// Renaming (physical) registers per hart.
    pub phys_regs: usize,
    /// Reorder-buffer entries per hart.
    pub rob_entries: usize,
    /// Instruction-table (waiting-station) entries per hart.
    pub it_entries: usize,
    /// `p_swre`/`p_lwre` result-buffer slots per hart.
    pub result_slots: usize,
    /// Functional-unit and interconnect latencies.
    pub latencies: Latencies,
    /// Record a full event trace (costly; for determinism checks and
    /// debugging).
    pub trace: bool,
    /// Record one [`crate::IntervalSample`] every this many cycles
    /// (0 disables the interval time series).
    pub sample_interval: u64,
    /// Deterministic faults to inject into the run (empty by default).
    pub faults: FaultPlan,
}

impl LbpConfig {
    /// A machine with `cores` cores and default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn cores(cores: usize) -> LbpConfig {
        assert!(cores > 0, "a machine needs at least one core");
        LbpConfig {
            cores,
            local_bank_bytes: 64 * 1024,
            shared_bank_bytes: 64 * 1024,
            phys_regs: 64,
            rob_entries: 32,
            it_entries: 32,
            result_slots: 8,
            latencies: Latencies::default(),
            trace: false,
            sample_interval: 0,
            faults: FaultPlan::none(),
        }
    }

    /// Total hart count (`4 * cores`).
    pub fn harts(&self) -> usize {
        self.cores * HARTS_PER_CORE
    }

    /// Stack bytes available to each hart.
    pub fn stack_bytes(&self) -> u32 {
        self.local_bank_bytes / HARTS_PER_CORE as u32
    }

    /// Total bytes of the global shared space.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bank_bytes as u64 * self.cores as u64
    }

    /// Enables event tracing.
    pub fn with_trace(mut self) -> LbpConfig {
        self.trace = true;
        self
    }

    /// Enables the interval sampler with the given period in cycles.
    pub fn with_interval(mut self, cycles: u64) -> LbpConfig {
        self.sample_interval = cycles;
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> LbpConfig {
        self.faults = faults;
        self
    }
}

impl Latencies {
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.alu);
        w.u32(self.mul);
        w.u32(self.div);
        w.u32(self.link_hop);
        w.u32(self.bank);
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Latencies, SnapError> {
        Ok(Latencies {
            alu: r.u32()?,
            mul: r.u32()?,
            div: r.u32()?,
            link_hop: r.u32()?,
            bank: r.u32()?,
        })
    }
}

impl LbpConfig {
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.cores as u64);
        w.u32(self.local_bank_bytes);
        w.u32(self.shared_bank_bytes);
        w.u64(self.phys_regs as u64);
        w.u64(self.rob_entries as u64);
        w.u64(self.it_entries as u64);
        w.u64(self.result_slots as u64);
        self.latencies.snap(w);
        w.bool(self.trace);
        w.u64(self.sample_interval);
        // Faults serialize as their (round-tripping) spec strings.
        w.seq(self.faults.faults.len());
        for f in &self.faults.faults {
            w.str(&f.to_string());
        }
    }

    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<LbpConfig, SnapError> {
        let cores = r.u64()? as usize;
        if cores == 0 {
            return Err(SnapError::Corrupt(
                "configuration has zero cores".to_owned(),
            ));
        }
        let local_bank_bytes = r.u32()?;
        let shared_bank_bytes = r.u32()?;
        let phys_regs = r.u64()? as usize;
        let rob_entries = r.u64()? as usize;
        let it_entries = r.u64()? as usize;
        let result_slots = r.u64()? as usize;
        let latencies = Latencies::unsnap(r)?;
        let trace = r.bool()?;
        let sample_interval = r.u64()?;
        let mut faults = FaultPlan::none();
        for _ in 0..r.seq()? {
            let spec = r.str()?;
            faults.push(Fault::parse(&spec).map_err(SnapError::Corrupt)?);
        }
        Ok(LbpConfig {
            cores,
            local_bank_bytes,
            shared_bank_bytes,
            phys_regs,
            rob_entries,
            it_entries,
            result_slots,
            latencies,
            trace,
            sample_interval,
            faults,
        })
    }
}

/// Bytes reserved at the top of each hart stack for the continuation-value
/// frame written by `p_swcv` and read by `p_lwcv` (16 word slots).
pub const CV_FRAME_BYTES: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = LbpConfig::cores(64);
        assert_eq!(cfg.harts(), 256);
        assert_eq!(cfg.stack_bytes(), 16 * 1024);
        assert_eq!(cfg.shared_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = LbpConfig::cores(0);
    }
}
