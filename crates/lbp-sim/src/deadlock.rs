//! Quiescence-based deadlock detection.
//!
//! LBP has no traps: a protocol mistake (a join address never sent, a
//! `p_swre` to the wrong slot, a fork that can never be satisfied) hangs
//! the real hardware forever. The simulator can do better — it can *see*
//! that nothing is in flight anywhere and that no hart can take another
//! local step, which makes the hang a certainty, not a guess.
//!
//! The detector runs only once the machine has gone several cycles
//! without retiring anything (see `QUIET_CYCLES` in the machine). It then
//! checks, in order:
//!
//! 1. nothing in flight on the fork/join fabric, the memory network or
//!    any bank port (a message could unblock a hart);
//! 2. no pending fork request that a free hart could satisfy;
//! 3. no hart that can make *local* progress (fetch, rename, issue,
//!    write-back or commit could fire for it).
//!
//! If all three hold the machine state can never change again: the run is
//! reported as [`SimError::Deadlock`](crate::SimError::Deadlock) with
//! every blocked hart and the event it waits for. A busy-waiting program
//! (e.g. `loop: j loop`) retires instructions forever, keeps the quiet
//! counter at zero and still gets the honest
//! [`SimError::Timeout`](crate::SimError::Timeout).

use lbp_isa::Instr;

use crate::error::BlockedHart;
use crate::hart::{HartCtx, HartState, RbWait};
use crate::machine::Machine;

/// What one hart can do next, from its own state alone.
pub(crate) enum HartProgress {
    /// `Free`: not participating; never blocks the machine.
    Inert,
    /// Some pipeline stage can still fire for this hart.
    Ready,
    /// Stuck until an external event arrives — with a description of the
    /// event, for the deadlock report and the crash dump.
    Blocked(String),
}

/// Classifies one hart. `Blocked` reasons are ordered by root cause: the
/// stage closest to retirement wins, because that is what actually holds
/// the hart (everything younger queues behind it).
pub(crate) fn classify(h: &HartCtx) -> HartProgress {
    match h.state {
        HartState::Free => return HartProgress::Inert,
        HartState::Reserved => {
            return HartProgress::Blocked("a start pc (p_jal/p_jalr) that never arrived".to_owned())
        }
        HartState::WaitingJoin => {
            return HartProgress::Blocked("a join address that was never sent".to_owned())
        }
        HartState::Running => {}
    }
    // The result buffer: Until/Done complete on their own; Mem and Fork
    // need a message that (the caller established) is not in flight.
    if let Some(rb) = &h.rb {
        match rb.wait {
            RbWait::Until { .. } | RbWait::Done { .. } => return HartProgress::Ready,
            RbWait::Mem => {
                return HartProgress::Blocked("a memory response that was lost".to_owned())
            }
            RbWait::Fork => {
                return HartProgress::Blocked(
                    "a fork allocation (every hart of the target core stays busy)".to_owned(),
                )
            }
        }
    }
    // Commit: a done ROB head retires — unless it is a p_ret gated on the
    // team barrier.
    if let Some(e) = h.rob.front() {
        if e.done {
            if !e.is_pret || (h.end_signal && h.in_flight_mem == 0) {
                return HartProgress::Ready;
            }
            if !h.end_signal {
                return HartProgress::Blocked(
                    "its team predecessor's ending signal before committing p_ret".to_owned(),
                );
            }
            return HartProgress::Blocked(
                "outstanding memory acknowledgements to drain before committing p_ret".to_owned(),
            );
        }
    }
    // A draining p_syncm (release_syncm fires the moment the drain holds).
    if h.syncm_wait {
        if h.mem_drained() {
            return HartProgress::Ready;
        }
        return HartProgress::Blocked(
            "p_syncm: outstanding memory accesses that never completed".to_owned(),
        );
    }
    // Issue: the instruction table holds work; is any entry eligible?
    if !h.it.is_empty() {
        if h.oldest_ready().is_some() {
            return HartProgress::Ready;
        }
        // Name the first `p_lwre` gated on an empty receive slot — the
        // classic "the producer never sent my result" deadlock.
        for e in &h.it {
            if let Instr::PLwre { offset, .. } = e.instr {
                let slot = offset as usize;
                if h.recv.get(slot).is_none_or(|q| q.is_empty()) {
                    return HartProgress::Blocked(format!(
                        "a p_swre result in slot {slot} that was never sent"
                    ));
                }
            }
        }
        return HartProgress::Blocked("source operands that can never become ready".to_owned());
    }
    // Rename: a fetched instruction waits for capacity.
    if let Some(f) = &h.ib {
        if h.rename_capacity(f.instr.dest().is_some()) {
            return HartProgress::Ready;
        }
        return HartProgress::Blocked(
            "rename capacity (ROB/IT/physical registers) that will never free".to_owned(),
        );
    }
    // Fetch: with a pc and no suspension the front end advances by itself
    // (`resume_at` is always at most one cycle ahead).
    if let Some(pc) = h.pc {
        if !h.fetch_suspended {
            return HartProgress::Ready;
        }
        return HartProgress::Blocked(format!("the next fetch address after {pc:#x} to resolve"));
    }
    // Running, empty pipeline, no pc: nothing can ever wake this hart.
    HartProgress::Blocked("a next pc it has no way to obtain".to_owned())
}

/// Checks the whole machine for quiescent deadlock. Returns `None` while
/// anything can still happen; otherwise the list of blocked harts (empty
/// when every hart ended without the program executing its exit `p_ret`).
pub(crate) fn check(m: &Machine) -> Option<Vec<BlockedHart>> {
    if m.exited {
        return None;
    }
    // Anything in flight can change hart state when it lands.
    if !m.fabric.is_quiet() || !m.mem.net.is_quiet() || !m.mem.ports_quiet() {
        return None;
    }
    // A queued fork request next to a free hart will be satisfied.
    for core in &m.cores {
        if !core.alloc_q.is_empty() && core.harts.iter().any(|h| h.state == HartState::Free) {
            return None;
        }
    }
    let mut blocked = Vec::new();
    for core in &m.cores {
        for h in &core.harts {
            match classify(h) {
                HartProgress::Inert => {}
                HartProgress::Ready => return None,
                HartProgress::Blocked(reason) => blocked.push(BlockedHart {
                    hart: h.id,
                    waiting_on: reason,
                }),
            }
        }
    }
    Some(blocked)
}
