//! Dynamic race-witness collector — the soundness net under the static
//! M-pass (`lbp-verify`'s `LBP-M001`..`M006`).
//!
//! The static analyzer proves cross-member disjointness of shared
//! accesses where it can and *warns* where it cannot (`LBP-M003`/`M004`).
//! This module closes the loop at runtime: with the collector enabled
//! ([`crate::Machine::enable_race_witness`]), every shared-memory load
//! and store is checked, byte by byte, against the accesses that came
//! before it, and a concrete [`RaceWitness`] is recorded whenever two
//! different harts touch the same byte (at least one writing) without an
//! intervening fork/join synchronization edge between them.
//!
//! # Ordering model
//!
//! The fabric's deterministic protocol messages are the only cross-hart
//! synchronization in LBP. The collector keeps one global counter `g`,
//! bumped on every *rendezvous* [`crate::msg::CoreMsg`] delivery — fork
//! reply, start, join — where the recipient is provably not executing
//! (blocked on the fork result, not yet started, or waiting in `p_ret`),
//! plus a per-hart *watermark*: the `g` value of the last rendezvous that
//! hart received. An access is tagged with the current `g`; a later
//! access by hart `b` is considered ordered after a prior access tagged
//! `g_a` iff `watermark[b] > g_a`, i.e. `b` passed a rendezvous after the
//! prior access happened. Deliveries that can reach a hart mid-execution
//! (cv writes and acks, end signals, result-line values) do not bump —
//! they would fabricate an ordering for accesses already in flight.
//!
//! This over-approximates the true happens-before relation (every
//! delivery is treated as a transitive join with the whole machine), so
//! the collector can *miss* exotic races but never fabricates one: a
//! reported witness is two accesses with no protocol message between
//! them, which on this machine means no synchronization at all. That
//! direction is exactly what the cross-validation oracle needs — a
//! statically *accepted* program must produce zero witnesses.
//!
//! Like profiling ([`crate::prof`]), the collector is observational: it
//! hangs off the machine behind an `Option`, costs one branch per hook
//! when disabled, never changes the simulation, and is excluded from
//! snapshots.

use std::collections::{BTreeMap, BTreeSet};

use lbp_isa::{HartId, Region, HARTS_PER_CORE};

/// Witnesses stop accumulating past this count; racy loops would
/// otherwise grow the list with one entry per iteration even after
/// pc-pair deduplication has seen every distinct site.
const MAX_WITNESSES: usize = 64;

/// What the two unsynchronized accesses were.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    /// Two writes to the same byte.
    WriteWrite,
    /// A read of a byte after an unordered write.
    WriteRead,
    /// A write of a byte after an unordered read.
    ReadWrite,
}

impl RaceKind {
    fn as_str(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::WriteRead => "write-read",
            RaceKind::ReadWrite => "read-write",
        }
    }
}

/// One concrete race: two accesses to the same shared byte by different
/// harts with no protocol message between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceWitness {
    /// The contested byte address (first racing byte of the access).
    pub addr: u32,
    /// Write-write, write-read or read-write.
    pub kind: RaceKind,
    /// The earlier access: hart and pc of the instruction.
    pub first: (HartId, u32),
    /// The later access: hart and pc of the instruction.
    pub second: (HartId, u32),
}

impl std::fmt::Display for RaceWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on {:#010x}: hart {} pc {:#x} vs hart {} pc {:#x}",
            self.kind.as_str(),
            self.addr,
            self.first.0,
            self.first.1,
            self.second.0,
            self.second.1,
        )
    }
}

/// Per-byte record of the last shared write: (hart, delivery tag, pc).
type ByteWrite = (u32, u64, u32);

/// The race-witness collector. Created by
/// [`crate::Machine::enable_race_witness`]; read back through
/// [`crate::Machine::race_witnesses`].
#[derive(Debug)]
pub struct RaceData {
    /// Global protocol-delivery counter.
    g: u64,
    /// Per hart (global id): `g` of the last delivery it received.
    watermark: Vec<u64>,
    /// Last write per shared byte.
    last_write: BTreeMap<u32, ByteWrite>,
    /// Reads of each shared byte since its last write, at most one entry
    /// per hart: (hart, delivery tag, pc).
    reads: BTreeMap<u32, Vec<ByteWrite>>,
    /// Deduplication of witnesses by (kind, first pc, second pc).
    seen: BTreeSet<(RaceKind, u32, u32)>,
    /// Collected witnesses, in discovery order, capped at
    /// [`MAX_WITNESSES`] distinct pc pairs.
    pub(crate) witnesses: Vec<RaceWitness>,
}

impl RaceData {
    /// An empty collector for a machine of `cores` cores.
    pub(crate) fn new(cores: usize) -> RaceData {
        RaceData {
            g: 0,
            watermark: vec![0; cores * HARTS_PER_CORE],
            last_write: BTreeMap::new(),
            reads: BTreeMap::new(),
            seen: BTreeSet::new(),
            witnesses: Vec::new(),
        }
    }

    /// A rendezvous message (fork reply / start / join) was delivered to
    /// `to`, which was not executing: everything recorded so far
    /// happens-before whatever `to` does next.
    pub(crate) fn sync(&mut self, to: HartId) {
        self.g += 1;
        self.watermark[to.global() as usize] = self.g;
    }

    fn witness(&mut self, kind: RaceKind, addr: u32, first: (u32, u32), second: (u32, u32)) {
        if self.witnesses.len() >= MAX_WITNESSES {
            return;
        }
        if !self.seen.insert((kind, first.1, second.1)) {
            return;
        }
        self.witnesses.push(RaceWitness {
            addr,
            kind,
            first: (HartId::new(first.0), first.1),
            second: (HartId::new(second.0), second.1),
        });
    }

    /// Records a shared-memory write of `size` bytes at `addr` by `hart`
    /// executing the store at `pc`. Non-shared addresses are ignored.
    pub(crate) fn write(&mut self, hart: HartId, pc: u32, addr: u32, size: u8) {
        if Region::of(addr) != Region::Shared {
            return;
        }
        let h = hart.global();
        let unordered = |tag: u64, wm: &[u64]| wm[h as usize] <= tag;
        for byte in (0..size as u32).map(|i| addr.wrapping_add(i)) {
            if let Some(&(w, gw, wpc)) = self.last_write.get(&byte) {
                if w != h && unordered(gw, &self.watermark) {
                    self.witness(RaceKind::WriteWrite, byte, (w, wpc), (h, pc));
                }
            }
            if let Some(readers) = self.reads.remove(&byte) {
                for (r, gr, rpc) in readers {
                    if r != h && unordered(gr, &self.watermark) {
                        self.witness(RaceKind::ReadWrite, byte, (r, rpc), (h, pc));
                    }
                }
            }
            self.last_write.insert(byte, (h, self.g, pc));
        }
    }

    /// Records a shared-memory read of `size` bytes at `addr` by `hart`
    /// executing the load at `pc`. Non-shared addresses are ignored.
    pub(crate) fn read(&mut self, hart: HartId, pc: u32, addr: u32, size: u8) {
        if Region::of(addr) != Region::Shared {
            return;
        }
        let h = hart.global();
        for byte in (0..size as u32).map(|i| addr.wrapping_add(i)) {
            if let Some(&(w, gw, wpc)) = self.last_write.get(&byte) {
                if w != h && self.watermark[h as usize] <= gw {
                    self.witness(RaceKind::WriteRead, byte, (w, wpc), (h, pc));
                }
            }
            let readers = self.reads.entry(byte).or_default();
            match readers.iter_mut().find(|(r, ..)| *r == h) {
                Some(entry) => *entry = (h, self.g, pc),
                None => readers.push((h, self.g, pc)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hart(n: u32) -> HartId {
        HartId::new(n)
    }

    const A: u32 = 0x8000_0100;

    #[test]
    fn unsynchronized_cross_hart_write_write_is_a_witness() {
        let mut r = RaceData::new(2);
        r.sync(hart(0));
        r.sync(hart(1));
        r.write(hart(0), 0x10, A, 4);
        r.write(hart(1), 0x20, A, 4);
        assert_eq!(r.witnesses.len(), 1, "one witness after pc-pair dedup");
        let w = r.witnesses[0];
        assert_eq!(w.kind, RaceKind::WriteWrite);
        assert_eq!(w.addr, A);
        assert_eq!((w.first.1, w.second.1), (0x10, 0x20));
    }

    #[test]
    fn delivery_between_accesses_orders_them() {
        let mut r = RaceData::new(2);
        r.write(hart(0), 0x10, A, 4);
        r.sync(hart(1)); // e.g. the Join/Start edge
        r.write(hart(1), 0x20, A, 4);
        assert!(r.witnesses.is_empty(), "synchronized accesses do not race");
    }

    #[test]
    fn same_hart_never_races_and_local_is_ignored() {
        let mut r = RaceData::new(1);
        r.write(hart(0), 0x10, A, 4);
        r.write(hart(0), 0x14, A, 4);
        r.read(hart(0), 0x18, A, 4);
        r.write(hart(1), 0x20, 0x4000_0000, 4); // Local region
        r.read(hart(1), 0x24, 0x4000_0000, 4);
        assert!(r.witnesses.is_empty());
    }

    #[test]
    fn read_write_and_write_read_directions_fire() {
        let mut r = RaceData::new(2);
        r.read(hart(0), 0x10, A, 4);
        r.write(hart(1), 0x20, A, 4); // unordered after the read
        r.read(hart(0), 0x30, A + 2, 2); // unordered after the write
        let kinds: Vec<_> = r.witnesses.iter().map(|w| w.kind).collect();
        assert_eq!(kinds, vec![RaceKind::ReadWrite, RaceKind::WriteRead]);
    }

    #[test]
    fn disjoint_bytes_do_not_race() {
        let mut r = RaceData::new(2);
        r.write(hart(0), 0x10, A, 4);
        r.write(hart(1), 0x20, A + 4, 4);
        assert!(r.witnesses.is_empty());
    }

    #[test]
    fn witnesses_dedup_by_pc_pair_and_cap() {
        let mut r = RaceData::new(2);
        for i in 0..100 {
            r.write(hart(0), 0x10, A + 8 * i, 4);
            r.write(hart(1), 0x20, A + 8 * i, 4);
        }
        assert_eq!(r.witnesses.len(), 1, "same pc pair reported once");
    }
}
