//! Cycle-by-cycle event traces and streaming trace sinks.
//!
//! The paper's headline property is *cycle determinism*: "at cycle 467171,
//! core 55, hart 2 sends a memory request to load address 106688 from
//! memory bank 13" holds for every run of the same program on the same
//! data. The trace captures exactly such statements so tests can assert
//! bit-identical replay.
//!
//! Events can either be buffered in memory ([`Trace`], used by the
//! determinism tests) or streamed through a [`TraceSink`] in O(1) memory:
//! [`TextSink`] writes one [`Event::describe`] line per event,
//! [`JsonlSink`] one JSON object per line, and [`ChromeSink`] a Chrome
//! `trace_event` JSON file that opens directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).

use std::io::{self, Write};

use lbp_isa::HartId;

use crate::json::Json;

/// One machine event, stamped with the cycle it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The cycle the event occurred on.
    pub cycle: u64,
    /// The hart the event belongs to.
    pub hart: HartId,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of observable machine events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction word was fetched at `pc`.
    Fetch {
        /// The fetch address.
        pc: u32,
    },
    /// An instruction at `pc` retired (committed in order).
    Commit {
        /// The instruction's address.
        pc: u32,
    },
    /// A memory read request left the hart.
    MemRead {
        /// The target address.
        addr: u32,
        /// The bank (core number) serving the request.
        bank: u32,
    },
    /// A memory write request left the hart.
    MemWrite {
        /// The target address.
        addr: u32,
        /// The bank (core number) serving the request.
        bank: u32,
        /// The value written.
        value: u32,
    },
    /// A memory response (or write ack) was written back.
    MemResp {
        /// The original request address.
        addr: u32,
    },
    /// A hart was allocated by `p_fc`/`p_fn`.
    Fork {
        /// The allocated hart.
        child: HartId,
    },
    /// A start pc was delivered to an allocated hart (by `p_jal`/`p_jalr`).
    Start {
        /// The continuation address the hart starts fetching at.
        pc: u32,
    },
    /// A join address was delivered, resuming a waiting hart.
    Join {
        /// The resumption address.
        pc: u32,
    },
    /// The ending-hart signal was forwarded to the team successor.
    EndSignal,
    /// A `p_swre` value was delivered to a result-buffer slot.
    ResultDelivered {
        /// The slot number.
        slot: u32,
        /// The value.
        value: u32,
    },
    /// The hart ended (`p_ret` types 1 and 4) and became free.
    HartEnd,
    /// The machine exited (`p_ret` type 3).
    Exit,
}

impl EventKind {
    /// The event's stable machine-readable name (the `kind` field of the
    /// JSONL encoding and the Chrome event name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Fetch { .. } => "fetch",
            EventKind::Commit { .. } => "commit",
            EventKind::MemRead { .. } => "mem_read",
            EventKind::MemWrite { .. } => "mem_write",
            EventKind::MemResp { .. } => "mem_resp",
            EventKind::Fork { .. } => "fork",
            EventKind::Start { .. } => "start",
            EventKind::Join { .. } => "join",
            EventKind::EndSignal => "end_signal",
            EventKind::ResultDelivered { .. } => "result",
            EventKind::HartEnd => "hart_end",
            EventKind::Exit => "exit",
        }
    }

    /// The kind-specific payload fields as `(key, value)` pairs.
    fn payload(&self) -> Vec<(String, Json)> {
        let pair = |k: &str, v: u32| (k.to_owned(), Json::U64(v as u64));
        match *self {
            EventKind::Fetch { pc } | EventKind::Commit { pc } => vec![pair("pc", pc)],
            EventKind::MemRead { addr, bank } => vec![pair("addr", addr), pair("bank", bank)],
            EventKind::MemWrite { addr, bank, value } => {
                vec![pair("addr", addr), pair("bank", bank), pair("value", value)]
            }
            EventKind::MemResp { addr } => vec![pair("addr", addr)],
            EventKind::Fork { child } => vec![pair("child", child.global())],
            EventKind::Start { pc } => vec![pair("pc", pc)],
            EventKind::Join { pc } => vec![pair("pc", pc)],
            EventKind::EndSignal | EventKind::HartEnd | EventKind::Exit => vec![],
            EventKind::ResultDelivered { slot, value } => {
                vec![pair("slot", slot), pair("value", value)]
            }
        }
    }
}

impl Event {
    /// Renders the event as one of the paper's invariant statements, e.g.
    /// "at cycle 467171, core 55, hart 2 sends a memory request to load
    /// address 106688 from memory bank 13".
    pub fn describe(&self) -> String {
        let head = format!(
            "at cycle {}, core {}, hart {}",
            self.cycle,
            self.hart.core(),
            self.hart.local()
        );
        match &self.kind {
            EventKind::Fetch { pc } => format!("{head} fetches the instruction at {pc:#x}"),
            EventKind::Commit { pc } => format!("{head} commits the instruction at {pc:#x}"),
            EventKind::MemRead { addr, bank } => format!(
                "{head} sends a memory request to load address {addr:#x} from memory bank {bank}"
            ),
            EventKind::MemWrite { addr, bank, value } => format!(
                "{head} sends a memory request to store {value} at address {addr:#x} in memory bank {bank}"
            ),
            EventKind::MemResp { addr } => {
                format!("{head} writes back the data received for {addr:#x}")
            }
            EventKind::Fork { child } => format!(
                "{head} allocates hart {} of core {}",
                child.local(),
                child.core()
            ),
            EventKind::Start { pc } => format!("{head} starts fetching at {pc:#x}"),
            EventKind::Join { pc } => format!("{head} resumes at {pc:#x} after a join"),
            EventKind::EndSignal => format!("{head} forwards the ending-hart signal"),
            EventKind::ResultDelivered { slot, value } => {
                format!("{head} receives {value} in result buffer {slot}")
            }
            EventKind::HartEnd => format!("{head} ends and becomes free"),
            EventKind::Exit => format!("{head} commits the exiting p_ret"),
        }
    }

    /// The JSONL encoding: a flat object with `cycle`, `core`, `hart`,
    /// `kind` and the kind-specific payload fields.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("cycle".to_owned(), Json::U64(self.cycle)),
            ("core".to_owned(), Json::U64(self.hart.core() as u64)),
            ("hart".to_owned(), Json::U64(self.hart.local() as u64)),
            ("kind".to_owned(), Json::Str(self.kind.name().to_owned())),
        ];
        pairs.extend(self.kind.payload());
        Json::Obj(pairs)
    }

    /// Decodes one JSONL object back into an event (the inverse of
    /// [`Event::to_json`]); `None` on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Option<Event> {
        let cycle = v.get("cycle")?.as_u64()?;
        let core = u32::try_from(v.get("core")?.as_u64()?).ok()?;
        let local = u32::try_from(v.get("hart")?.as_u64()?).ok()?;
        let field = |k: &str| -> Option<u32> { v.get(k)?.as_u64()?.try_into().ok() };
        let kind = match v.get("kind")?.as_str()? {
            "fetch" => EventKind::Fetch { pc: field("pc")? },
            "commit" => EventKind::Commit { pc: field("pc")? },
            "mem_read" => EventKind::MemRead {
                addr: field("addr")?,
                bank: field("bank")?,
            },
            "mem_write" => EventKind::MemWrite {
                addr: field("addr")?,
                bank: field("bank")?,
                value: field("value")?,
            },
            "mem_resp" => EventKind::MemResp {
                addr: field("addr")?,
            },
            "fork" => EventKind::Fork {
                child: HartId::new(field("child")?),
            },
            "start" => EventKind::Start { pc: field("pc")? },
            "join" => EventKind::Join { pc: field("pc")? },
            "end_signal" => EventKind::EndSignal,
            "result" => EventKind::ResultDelivered {
                slot: field("slot")?,
                value: field("value")?,
            },
            "hart_end" => EventKind::HartEnd,
            "exit" => EventKind::Exit,
            _ => return None,
        };
        Some(Event {
            cycle,
            hart: HartId::from_parts(core, local),
            kind,
        })
    }
}

/// A consumer of the machine's event stream.
///
/// The machine calls [`TraceSink::record`] once per event, in
/// deterministic order, and [`TraceSink::finish`] exactly once at the end
/// of the run. Streaming sinks buffer I/O errors internally and report
/// them from `finish` so the simulation hot path stays infallible.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes and finalizes the output (e.g. closes the Chrome JSON
    /// array).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink encountered, if any.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An append-only in-memory trace buffer (also the memory [`TraceSink`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records an event.
    pub fn push(&mut self, cycle: u64, hart: HartId, kind: EventKind) {
        self.events.push(Event { cycle, hart, kind });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for Trace {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Shared state of the streaming sinks: the writer plus the first error.
struct Stream<W: Write> {
    out: W,
    err: Option<io::Error>,
}

impl<W: Write> Stream<W> {
    fn new(out: W) -> Stream<W> {
        Stream { out, err: None }
    }

    fn write(&mut self, text: &str) {
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(text.as_bytes()) {
                self.err = Some(e);
            }
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Streams one [`Event::describe`] line per event.
pub struct TextSink<W: Write> {
    stream: Stream<W>,
}

impl<W: Write> TextSink<W> {
    /// Creates a sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> TextSink<W> {
        TextSink {
            stream: Stream::new(out),
        }
    }
}

impl<W: Write> TraceSink for TextSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = event.describe();
        line.push('\n');
        self.stream.write(&line);
    }

    fn finish(&mut self) -> io::Result<()> {
        self.stream.finish()
    }
}

/// Streams one JSON object per line (JSON Lines). The encoding is
/// [`Event::to_json`]; [`Event::from_json`] parses it back.
pub struct JsonlSink<W: Write> {
    stream: Stream<W>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            stream: Stream::new(out),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = String::new();
        event.to_json().write(&mut line);
        line.push('\n');
        self.stream.write(&line);
    }

    fn finish(&mut self) -> io::Result<()> {
        self.stream.finish()
    }
}

/// Streams a Chrome `trace_event` JSON file: every machine event becomes
/// a thread-scoped instant event with the cycle number as its timestamp,
/// `pid` = core and `tid` = hart. Open the file in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev) to see the per-hart activity of a
/// `parallel for` region on a timeline.
pub struct ChromeSink<W: Write> {
    stream: Stream<W>,
    started: bool,
    finished: bool,
}

impl<W: Write> ChromeSink<W> {
    /// Creates a sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> ChromeSink<W> {
        ChromeSink {
            stream: Stream::new(out),
            started: false,
            finished: false,
        }
    }
}

impl<W: Write> TraceSink for ChromeSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = String::new();
        line.push_str(if self.started {
            ",\n"
        } else {
            "{\"traceEvents\":[\n"
        });
        self.started = true;
        let mut args = vec![("describe".to_owned(), Json::Str(event.describe()))];
        args.extend(event.kind.payload());
        Json::obj([
            ("name", Json::Str(event.kind.name().to_owned())),
            ("ph", Json::Str("i".to_owned())),
            ("s", Json::Str("t".to_owned())),
            ("ts", Json::U64(event.cycle)),
            ("pid", Json::U64(event.hart.core() as u64)),
            ("tid", Json::U64(event.hart.local() as u64)),
            ("args", Json::Obj(args)),
        ])
        .write(&mut line);
        self.stream.write(&line);
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.finished {
            self.finished = true;
            if self.started {
                self.stream.write("\n],\"displayTimeUnit\":\"ns\"}\n");
            } else {
                self.stream
                    .write("{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}\n");
            }
        }
        self.stream.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_matches_the_papers_style() {
        let e = Event {
            cycle: 467171,
            hart: HartId::from_parts(55, 2),
            kind: EventKind::MemRead {
                addr: 106688,
                bank: 13,
            },
        };
        assert_eq!(
            e.describe(),
            "at cycle 467171, core 55, hart 2 sends a memory request to load \
             address 0x1a0c0 from memory bank 13"
        );
    }

    #[test]
    fn traces_compare_bitwise() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.push(1, HartId::new(0), EventKind::Fetch { pc: 0 });
        b.push(1, HartId::new(0), EventKind::Fetch { pc: 0 });
        assert_eq!(a, b);
        b.push(2, HartId::new(0), EventKind::Exit);
        assert_ne!(a, b);
    }

    #[test]
    fn jsonl_roundtrips_an_event() {
        let e = Event {
            cycle: 9,
            hart: HartId::from_parts(3, 1),
            kind: EventKind::MemWrite {
                addr: 0x2000_0004,
                bank: 2,
                value: 42,
            },
        };
        let parsed = Json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(Event::from_json(&parsed), Some(e));
    }

    #[test]
    fn chrome_sink_emits_valid_json() {
        let mut buf = Vec::new();
        {
            let mut sink = ChromeSink::new(&mut buf);
            sink.record(&Event {
                cycle: 1,
                hart: HartId::new(0),
                kind: EventKind::Fetch { pc: 0x40 },
            });
            sink.record(&Event {
                cycle: 2,
                hart: HartId::new(1),
                kind: EventKind::Exit,
            });
            sink.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(|p| p.as_str()), Some("i"));
        assert_eq!(events[0].get("ts").and_then(|t| t.as_u64()), Some(1));
    }

    #[test]
    fn chrome_sink_strict_round_trip() {
        // A realistic stream: every event kind, out-of-order harts,
        // repeated cycles. The emitted file must be strict JSON — the
        // array properly closed, every string escaped, `ts` values
        // monotonically non-decreasing — so it always loads in
        // chrome://tracing.
        let h = |g| HartId::new(g);
        let kinds: Vec<(u64, HartId, EventKind)> = vec![
            (0, h(0), EventKind::Fetch { pc: 0x40 }),
            (1, h(0), EventKind::Commit { pc: 0x40 }),
            (1, h(1), EventKind::Fork { child: h(2) }),
            (2, h(2), EventKind::Start { pc: 0x80 }),
            (
                2,
                h(0),
                EventKind::MemRead {
                    addr: 0x1_0000,
                    bank: 3,
                },
            ),
            (
                3,
                h(0),
                EventKind::MemWrite {
                    addr: 0x1_0004,
                    bank: 3,
                    value: u32::MAX,
                },
            ),
            (4, h(0), EventKind::MemResp { addr: 0x1_0000 }),
            (5, h(2), EventKind::Join { pc: 0x44 }),
            (6, h(2), EventKind::EndSignal),
            (7, h(0), EventKind::Exit),
        ];
        let mut buf = Vec::new();
        {
            let mut sink = ChromeSink::new(&mut buf);
            for (cycle, hart, kind) in &kinds {
                sink.record(&Event {
                    cycle: *cycle,
                    hart: *hart,
                    kind: kind.clone(),
                });
            }
            sink.finish().unwrap();
            // finish() must be idempotent: a second call cannot emit a
            // second closing bracket.
            sink.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("\"traceEvents\"").count(), 1);
        assert!(text.ends_with("}\n"), "file is closed: {text:?}");
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), kinds.len());
        let mut last_ts = 0;
        for ev in events {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event lacks `{key}`");
            }
            let ts = ev.get("ts").and_then(|t| t.as_u64()).unwrap();
            assert!(ts >= last_ts, "ts went backwards: {ts} after {last_ts}");
            last_ts = ts;
            // The describe strings round-trip through the escaper: what
            // the parser reads back must be exactly what was described.
            let describe = ev
                .get("args")
                .and_then(|a| a.get("describe"))
                .and_then(|d| d.as_str())
                .expect("args.describe is a string");
            assert!(describe.starts_with("at cycle "));
            let mut rewritten = String::new();
            Json::Str(describe.to_owned()).write(&mut rewritten);
            assert_eq!(Json::parse(&rewritten).unwrap().as_str(), Some(describe));
        }
        assert_eq!(last_ts, 7);
    }

    #[test]
    fn chrome_sink_escapes_hostile_strings() {
        // The sink writes strings through the shared Json escaper; prove
        // the pairing (writer escape → parser unescape) is lossless for
        // quotes, backslashes and control characters so no describe
        // string can ever corrupt the event array.
        let hostile = "he said \"hi\\\" then\n\tbeeped \u{1} and left";
        let mut out = String::new();
        Json::Str(hostile.to_owned()).write(&mut out);
        assert!(!out.contains('\n'), "raw newline would break JSONL: {out}");
        assert_eq!(Json::parse(&out).unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn empty_chrome_trace_is_valid() {
        let mut buf = Vec::new();
        ChromeSink::new(&mut buf).finish().unwrap();
        let v = Json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(
            v.get("traceEvents").and_then(|e| e.as_arr()).unwrap().len(),
            0
        );
    }

    #[test]
    fn text_sink_streams_describe_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = TextSink::new(&mut buf);
            let e = Event {
                cycle: 5,
                hart: HartId::new(0),
                kind: EventKind::HartEnd,
            };
            sink.record(&e);
            sink.finish().unwrap();
        }
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "at cycle 5, core 0, hart 0 ends and becomes free\n"
        );
    }
}
