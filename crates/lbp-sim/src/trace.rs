//! Cycle-by-cycle event traces.
//!
//! The paper's headline property is *cycle determinism*: "at cycle 467171,
//! core 55, hart 2 sends a memory request to load address 106688 from
//! memory bank 13" holds for every run of the same program on the same
//! data. The trace captures exactly such statements so tests can assert
//! bit-identical replay.

use lbp_isa::HartId;

/// One machine event, stamped with the cycle it occurred on.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// The cycle the event occurred on.
    pub cycle: u64,
    /// The hart the event belongs to.
    pub hart: HartId,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of observable machine events.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// An instruction word was fetched at `pc`.
    Fetch {
        /// The fetch address.
        pc: u32,
    },
    /// An instruction at `pc` retired (committed in order).
    Commit {
        /// The instruction's address.
        pc: u32,
    },
    /// A memory read request left the hart.
    MemRead {
        /// The target address.
        addr: u32,
        /// The bank (core number) serving the request.
        bank: u32,
    },
    /// A memory write request left the hart.
    MemWrite {
        /// The target address.
        addr: u32,
        /// The bank (core number) serving the request.
        bank: u32,
        /// The value written.
        value: u32,
    },
    /// A memory response (or write ack) was written back.
    MemResp {
        /// The original request address.
        addr: u32,
    },
    /// A hart was allocated by `p_fc`/`p_fn`.
    Fork {
        /// The allocated hart.
        child: HartId,
    },
    /// A start pc was delivered to an allocated hart (by `p_jal`/`p_jalr`).
    Start {
        /// The continuation address the hart starts fetching at.
        pc: u32,
    },
    /// A join address was delivered, resuming a waiting hart.
    Join {
        /// The resumption address.
        pc: u32,
    },
    /// The ending-hart signal was forwarded to the team successor.
    EndSignal,
    /// A `p_swre` value was delivered to a result-buffer slot.
    ResultDelivered {
        /// The slot number.
        slot: u32,
        /// The value.
        value: u32,
    },
    /// The hart ended (`p_ret` types 1 and 4) and became free.
    HartEnd,
    /// The machine exited (`p_ret` type 3).
    Exit,
}

impl Event {
    /// Renders the event as one of the paper's invariant statements, e.g.
    /// "at cycle 467171, core 55, hart 2 sends a memory request to load
    /// address 106688 from memory bank 13".
    pub fn describe(&self) -> String {
        let head = format!(
            "at cycle {}, core {}, hart {}",
            self.cycle,
            self.hart.core(),
            self.hart.local()
        );
        match &self.kind {
            EventKind::Fetch { pc } => format!("{head} fetches the instruction at {pc:#x}"),
            EventKind::Commit { pc } => format!("{head} commits the instruction at {pc:#x}"),
            EventKind::MemRead { addr, bank } => format!(
                "{head} sends a memory request to load address {addr:#x} from memory bank {bank}"
            ),
            EventKind::MemWrite { addr, bank, value } => format!(
                "{head} sends a memory request to store {value} at address {addr:#x} in memory bank {bank}"
            ),
            EventKind::MemResp { addr } => {
                format!("{head} writes back the data received for {addr:#x}")
            }
            EventKind::Fork { child } => format!(
                "{head} allocates hart {} of core {}",
                child.local(),
                child.core()
            ),
            EventKind::Start { pc } => format!("{head} starts fetching at {pc:#x}"),
            EventKind::Join { pc } => format!("{head} resumes at {pc:#x} after a join"),
            EventKind::EndSignal => format!("{head} forwards the ending-hart signal"),
            EventKind::ResultDelivered { slot, value } => {
                format!("{head} receives {value} in result buffer {slot}")
            }
            EventKind::HartEnd => format!("{head} ends and becomes free"),
            EventKind::Exit => format!("{head} commits the exiting p_ret"),
        }
    }
}

/// An append-only trace buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records an event.
    pub fn push(&mut self, cycle: u64, hart: HartId, kind: EventKind) {
        self.events.push(Event { cycle, hart, kind });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_matches_the_papers_style() {
        let e = Event {
            cycle: 467171,
            hart: HartId::from_parts(55, 2),
            kind: EventKind::MemRead {
                addr: 106688,
                bank: 13,
            },
        };
        assert_eq!(
            e.describe(),
            "at cycle 467171, core 55, hart 2 sends a memory request to load \
             address 0x1a0c0 from memory bank 13"
        );
    }

    #[test]
    fn traces_compare_bitwise() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.push(1, HartId::new(0), EventKind::Fetch { pc: 0 });
        b.push(1, HartId::new(0), EventKind::Fetch { pc: 0 });
        assert_eq!(a, b);
        b.push(2, HartId::new(0), EventKind::Exit);
        assert_ne!(a, b);
    }
}
