//! Crash dumps: a machine-state snapshot attached to every fatal error.
//!
//! When a run dies — deadlock, timeout, protocol violation, decode or
//! memory fault — the interesting question is always *what was everyone
//! doing*. [`MachineDump`] answers it: the state, pc and wait reason of
//! every allocated hart, every in-flight fabric message, the network and
//! bank-port backlogs, and how many injected faults actually fired. It
//! serializes to JSON under the stable `lbp-dump-v1` schema (`lbp-run
//! --dump-on-error` writes it next to the failing run).

use std::fmt;

use crate::deadlock::{classify, HartProgress};
use crate::error::SimError;
use crate::hart::{HartCtx, HartState, RbWait};
use crate::json::Json;
use crate::machine::Machine;

/// Schema identifier of the dump JSON.
pub const DUMP_SCHEMA: &str = "lbp-dump-v1";

/// Snapshot of one allocated (non-`Free`) hart.
#[derive(Debug, Clone)]
pub struct HartDump {
    /// The hart, as its `cXhY` display name.
    pub hart: String,
    /// The hart's global (flat) index.
    pub global: u32,
    /// Lifecycle state: `reserved`, `running` or `waiting-join`.
    pub state: String,
    /// The next fetch address, if the hart has one.
    pub pc: Option<u32>,
    /// What the hart is waiting for, if it cannot make local progress.
    pub waiting_on: Option<String>,
    /// Occupied reorder-buffer entries.
    pub rob: usize,
    /// The pc of the oldest un-committed instruction.
    pub rob_head_pc: Option<u32>,
    /// Occupied instruction-table (waiting station) entries.
    pub it: usize,
    /// What the single-entry result buffer holds, if occupied.
    pub rb: Option<String>,
    /// Memory accesses issued and not yet completed/acknowledged.
    pub in_flight_mem: u32,
    /// Queued values per `p_swre` receive slot.
    pub recv: Vec<usize>,
    /// Whether the team predecessor's ending signal has arrived.
    pub end_signal: bool,
}

impl HartDump {
    fn capture(h: &HartCtx) -> HartDump {
        let state = match h.state {
            HartState::Free => "free",
            HartState::Reserved => "reserved",
            HartState::Running => "running",
            HartState::WaitingJoin => "waiting-join",
        };
        let rb = h.rb.as_ref().map(|rb| match rb.wait {
            RbWait::Until { at, .. } => format!("functional unit until cycle {at}"),
            RbWait::Mem => "waiting for a memory response".to_owned(),
            RbWait::Fork => "waiting for a fork allocation".to_owned(),
            RbWait::Done { .. } => "complete, awaiting write-back".to_owned(),
        });
        let waiting_on = match classify(h) {
            HartProgress::Blocked(reason) => Some(reason),
            HartProgress::Inert | HartProgress::Ready => None,
        };
        HartDump {
            hart: h.id.to_string(),
            global: h.id.global(),
            state: state.to_owned(),
            pc: h.pc,
            waiting_on,
            rob: h.rob.len(),
            rob_head_pc: h.rob.front().map(|e| e.pc),
            it: h.it.len(),
            rb,
            in_flight_mem: h.in_flight_mem,
            recv: h.recv.iter().map(|q| q.len()).collect(),
            end_signal: h.end_signal,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("hart", Json::Str(self.hart.clone())),
            ("global", Json::U64(self.global as u64)),
            ("state", Json::Str(self.state.clone())),
            ("pc", self.pc.map_or(Json::Null, |pc| Json::U64(pc as u64))),
            (
                "waiting_on",
                self.waiting_on.clone().map_or(Json::Null, Json::Str),
            ),
            ("rob", Json::U64(self.rob as u64)),
            (
                "rob_head_pc",
                self.rob_head_pc
                    .map_or(Json::Null, |pc| Json::U64(pc as u64)),
            ),
            ("it", Json::U64(self.it as u64)),
            ("rb", self.rb.clone().map_or(Json::Null, Json::Str)),
            ("in_flight_mem", Json::U64(self.in_flight_mem as u64)),
            (
                "recv",
                Json::Arr(self.recv.iter().map(|&n| Json::U64(n as u64)).collect()),
            ),
            ("end_signal", Json::Bool(self.end_signal)),
        ])
    }
}

/// A whole-machine snapshot taken at the moment of a fatal error.
#[derive(Debug, Clone)]
pub struct MachineDump {
    /// The cycle the error was raised at.
    pub cycle: u64,
    /// The error message.
    pub error: String,
    /// The error's stable class name (see [`SimError::class`]).
    pub error_class: &'static str,
    /// Every allocated (non-`Free`) hart.
    pub harts: Vec<HartDump>,
    /// Harts in the `Free` state (summarized by count only).
    pub free_harts: usize,
    /// Every in-flight fork/join fabric message, with its location.
    pub fabric_in_flight: Vec<String>,
    /// Messages travelling in the r1/r2/r3 memory network.
    pub network_in_flight: usize,
    /// Requests queued at each core's bank ports.
    pub bank_queues: Vec<usize>,
    /// Injected faults that actually fired before the error.
    pub faults_applied: u64,
}

impl MachineDump {
    /// Serializes under the `lbp-dump-v1` schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(DUMP_SCHEMA.to_owned())),
            ("cycle", Json::U64(self.cycle)),
            ("error", Json::Str(self.error.clone())),
            ("error_class", Json::Str(self.error_class.to_owned())),
            (
                "harts",
                Json::Arr(self.harts.iter().map(HartDump::to_json).collect()),
            ),
            ("free_harts", Json::U64(self.free_harts as u64)),
            (
                "fabric_in_flight",
                Json::Arr(
                    self.fabric_in_flight
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "network_in_flight",
                Json::U64(self.network_in_flight as u64),
            ),
            (
                "bank_queues",
                Json::Arr(
                    self.bank_queues
                        .iter()
                        .map(|&n| Json::U64(n as u64))
                        .collect(),
                ),
            ),
            ("faults_applied", Json::U64(self.faults_applied)),
        ])
    }
}

/// A fatal simulation error together with the crash dump taken when it
/// was raised. This is what [`Machine::run_diagnosed`] returns; callers
/// that only want the error use [`Machine::run`].
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The error that ended the run.
    pub error: SimError,
    /// The machine snapshot at that moment.
    pub dump: MachineDump,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)
    }
}

impl std::error::Error for SimFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl Machine {
    /// Takes a crash-dump snapshot of the current machine state for
    /// `error`.
    pub fn dump(&self, error: &SimError) -> MachineDump {
        self.dump_with(error.class(), error.to_string())
    }

    /// Takes a dump for a condition that is not a [`SimError`] — a
    /// watchdog cancellation, a daemon shutdown — so graceful stops can
    /// still emit a valid `lbp-dump-v1` partial report. `error_class`
    /// should be a stable lowercase token (e.g. `"cancelled"`) distinct
    /// from the simulator's own classes.
    pub fn dump_with(&self, error_class: &'static str, error: String) -> MachineDump {
        let mut harts = Vec::new();
        let mut free = 0;
        for core in &self.cores {
            for h in &core.harts {
                if h.state == HartState::Free {
                    free += 1;
                } else {
                    harts.push(HartDump::capture(h));
                }
            }
        }
        MachineDump {
            cycle: self.cycle,
            error,
            error_class,
            harts,
            free_harts: free,
            fabric_in_flight: self.fabric.pending(),
            network_in_flight: self.mem.net.in_flight(),
            bank_queues: (0..self.cfg.cores as u32)
                .map(|c| self.mem.queued_at(c))
                .collect(),
            faults_applied: self.faults_applied + self.fabric.faults_applied,
        }
    }

    /// Packages `error` with a dump taken right now.
    pub fn failure(&self, error: SimError) -> Box<SimFailure> {
        Box::new(SimFailure {
            dump: self.dump(&error),
            error,
        })
    }
}
