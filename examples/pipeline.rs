//! Deterministic MPI-style pipeline (the paper's §8 perspective): four
//! concurrent team members connected by *ordered channels* — each sender
//! precedes its receiver in the sequential referential order, so values
//! only flow forward, and the whole pipeline replays cycle for cycle.
//!
//! ```text
//! cargo run --example pipeline
//! ```

use lbp::asm::Asm;
use lbp::omp::{Channel, DetOmp};
use lbp::sim::{LbpConfig, Machine};

const STAGES: usize = 4;
const ITEMS: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One single-shot channel per (stage boundary, item).
    let chan = |s: usize, i: usize| Channel::new(format!("ch_{s}_{i}"));

    let mut program = DetOmp::new(STAGES).data_space("pipe_out", (ITEMS * 4) as u32);
    for s in 0..STAGES - 1 {
        for i in 0..ITEMS {
            program = program.data_space(format!("ch_{s}_{i}"), 8);
        }
    }

    for stage in 0..STAGES {
        let mut a = Asm::new();
        for item in 0..ITEMS {
            if stage == 0 {
                // Source: produce item^2 + 1.
                a.line(format!("li   a2, {}", item * item + 1));
            } else {
                chan(stage - 1, item).emit_recv(&mut a, "a2");
                // Transform: each stage adds 100*stage.
                a.line(format!("addi a2, a2, {}", 100 * stage));
            }
            if stage < STAGES - 1 {
                chan(stage, item).emit_send(&mut a, "a2");
            } else {
                a.line("la   a3, pipe_out");
                a.line(format!("sw   a2, {}(a3)", 4 * item));
            }
        }
        a.line("p_ret");
        program = program.function(format!("stage{stage}"), a.into_text());
    }
    let names: Vec<String> = (0..STAGES).map(|s| format!("stage{s}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let program = program.parallel_sections(&refs);

    let image = program.build()?;
    let mut machine = Machine::new(LbpConfig::cores(1), &image)?;
    let report = machine.run(10_000_000)?;

    println!("a {STAGES}-stage pipeline over {ITEMS} items, one hart per stage:");
    println!("(stage 0 produces i*i+1; stages 1-3 each add 100)\n");
    let out = image.symbol("pipe_out").unwrap();
    for i in 0..ITEMS as u32 {
        let got = machine.peek_shared(out + 4 * i)?;
        let want = (i * i + 1) + 600;
        println!("  item {i}: {got}");
        assert_eq!(got, want);
    }
    println!(
        "\ncycles: {} (exactly reproducible), retired: {}",
        report.stats.cycles,
        report.stats.retired()
    );
    println!("Values only flow forward in the sequential order — the paper's");
    println!("ordered-communicator rule — so the pipeline cannot deadlock or race.");
    Ok(())
}
