//! The paper's §6 application (Figs. 16-17): non-interruptible sensor
//! fusion on a 4-hart LBP microcontroller.
//!
//! Four sensors answer with arbitrary, jittered latencies. Each round, a
//! `parallel sections` team polls all four in parallel; the hardware
//! barrier closes the round; the sequential part fuses the readings and
//! writes the actuator. LBP takes no interrupts — the polling *is* the
//! synchronization — and the actuator outputs are identical whatever the
//! sensors' timing.
//!
//! ```text
//! cargo run --example sensor_fusion
//! ```

use lbp::kernels::sensor::SensorApp;
use lbp::sim::{LbpConfig, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = SensorApp::new(3);
    let image = app.program().build()?;
    let values = [[12, 20, 28, 40], [5, 5, 5, 5], [100, 0, 0, 0]];

    let run = |label: &str,
               schedules: [Vec<(u64, u32)>; 4]|
     -> Result<Vec<u32>, Box<dyn std::error::Error>> {
        let mut machine = Machine::new(LbpConfig::cores(1), &image)?;
        let out = app.attach_devices(&mut machine, schedules);
        let report = machine.run(10_000_000)?;
        let outputs = machine.io_mut().output(out).values();
        println!(
            "{label:<28} outputs {outputs:?}  ({} cycles)",
            report.stats.cycles
        );
        Ok(outputs)
    };

    println!(
        "three fusion rounds, expected outputs {:?}\n",
        app.expected(&values)
    );
    // Sensors answering promptly, in order.
    let fast = run(
        "sensors fast and in order:",
        [
            vec![(10, 12), (600, 5), (1800, 100)],
            vec![(20, 20), (610, 5), (1810, 0)],
            vec![(30, 28), (620, 5), (1820, 0)],
            vec![(40, 40), (630, 5), (1830, 0)],
        ],
    )?;
    // Sensors answering slowly, out of order, with jitter.
    let jittered = run(
        "sensors jittered, reordered:",
        [
            vec![(950, 12), (3200, 5), (9000, 100)],
            vec![(40, 20), (5000, 5), (7000, 0)],
            vec![(700, 28), (2500, 5), (9500, 0)],
            vec![(5, 40), (6000, 5), (6500, 0)],
        ],
    )?;

    assert_eq!(fast, jittered, "fusion results must not depend on timing");
    assert_eq!(fast, app.expected(&values));
    println!(
        "\nSame outputs in both runs: the static fusion expression fixes the\n\
         semantics; device timing only moves the cycles, never the values."
    );
    Ok(())
}
