//! The paper's Fig. 15: extending the core line beyond one chip.
//!
//! "A line of chips can be built to unboundingly extend the line of
//! cores" — the fork links connect the last core of one chip to the
//! first core of the next, and the shared-memory hierarchy grows a
//! fourth router level. This example runs a 512-hart team across a
//! 128-core (two-chip) machine.
//!
//! ```text
//! cargo run --release --example multichip
//! ```

use lbp::omp::DetOmp;
use lbp::sim::{LbpConfig, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 128;
    let harts = 4 * cores;
    println!("two 64-core LBP chips in a line: {cores} cores, {harts} harts\n");

    let program = DetOmp::new(harts)
        .data_space("v", (harts * 4) as u32)
        .function(
            "thread",
            // Busy-work long enough to outlive the 512-fork spawn wave,
            // so no member's hart is recycled before the team is full.
            "li   a5, 8000
spin:
             addi a5, a5, -1
             bnez a5, spin
             p_set a2
             srli a2, a2, 16         # own global hart number
             andi a2, a2, 0x7ff
             la   a3, v
             slli a4, a0, 2
             add  a3, a3, a4
             sw   a2, 0(a3)          # v[member] = hart that ran it
             p_ret",
        )
        .parallel_for("thread");
    let image = program.build()?;

    let mut cfg = LbpConfig::cores(cores);
    // Size the shared banks so the result vector spans both chips.
    cfg.shared_bank_bytes = 16;
    let mut machine = Machine::new(cfg, &image)?;
    let report = machine.run(50_000_000)?;

    let v = image.symbol("v").unwrap();
    let mut crossings = 0;
    for t in 0..harts as u32 {
        let hart = machine.peek_shared(v + 4 * t)?;
        // Core placement is architectural (every fourth fork is a p_fn);
        // with the busy-work the hart placement is exactly 1:1 too.
        assert_eq!(hart / 4, t / 4, "member {t} must land on core {}", t / 4);
        assert_eq!(hart, t, "member {t} must land on hart {t}");
        if t > 0 && (t / 4) != ((t - 1) / 4) {
            crossings += 1;
        }
    }
    println!("every member landed on its own hart, in order:");
    println!("  members 0..255   -> chip 0 (cores 0-63)");
    println!("  members 256..511 -> chip 1 (cores 64-127)");
    println!("  {crossings} core-to-core fork crossings, one of them chip-to-chip\n");
    println!(
        "cycles: {}, retired: {}, IPC {:.1} (peak {}.0)",
        report.stats.cycles,
        report.stats.retired(),
        report.stats.ipc(),
        cores
    );
    Ok(())
}
