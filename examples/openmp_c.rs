//! Compile a classic OpenMP C program with the Deterministic OpenMP
//! translator (`lbp-cc`) and run it on the LBP simulator — the paper's
//! Fig. 1 promise: "some standard OpenMP programs can be run on LBP
//! simply by replacing the OpenMP header file by our Deterministic
//! OpenMP one".
//!
//! ```text
//! cargo run --example openmp_c
//! ```

use lbp::sim::{LbpConfig, Machine};

const SOURCE: &str = r#"
#define NUM_HART 16
#define N 64
#include <det_omp.h>

int in[N];
int out[N];
int checksum[1];

void fill(int t) {
    int i;
    for (i = t * 4; i < t * 4 + 4; i++) {
        in[i] = i * 3 + 1;
    }
}

void smooth(int t) {
    int i; int left; int right;
    for (i = t * 4; i < t * 4 + 4; i++) {
        if (i == 0 || i == N - 1) {
            out[i] = in[i];
        } else {
            left = in[i - 1];
            right = in[i + 1];
            out[i] = (left + 2 * in[i] + right) / 4;
        }
    }
}

void main(void) {
    int t; int i; int sum;
    omp_set_num_threads(NUM_HART);

#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) fill(t);

#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) smooth(t);

    sum = 0;
    for (i = 0; i < N; i++) sum += out[i];
    checksum[0] = sum;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "compiling a {}-line OpenMP C program...",
        SOURCE.lines().count()
    );
    let compiled = lbp_cc::compile(SOURCE)?;
    println!(
        "generated {} lines of PISC assembly\n",
        compiled.asm.lines().count()
    );

    let mut machine = Machine::new(LbpConfig::cores(4), &compiled.image)?;
    let report = machine.run(10_000_000)?;

    // Host-side reference.
    let input: Vec<i64> = (0..64).map(|i| i * 3 + 1).collect();
    let reference: i64 = (0..64)
        .map(|i| {
            if i == 0 || i == 63 {
                input[i]
            } else {
                (input[i - 1] + 2 * input[i] + input[i + 1]) / 4
            }
        })
        .sum();

    let checksum = machine.peek_shared(compiled.image.symbol("checksum").unwrap())?;
    println!("checksum (LBP):  {checksum}");
    println!("checksum (host): {reference}");
    assert_eq!(checksum as i64, reference);
    println!(
        "\ncycles: {}, retired: {}, IPC: {:.2}",
        report.stats.cycles,
        report.stats.retired(),
        report.stats.ipc()
    );
    println!("two `parallel for` regions, one hardware barrier, zero locks.");
    Ok(())
}
