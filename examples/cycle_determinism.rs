//! Demonstrates the paper's headline property (§1, §5): *cycle
//! determinism*. Two traced runs of the same parallel program produce
//! bit-identical event streams — "at cycle 467171, core 55, hart 2 sends
//! a memory request..." holds for every run.
//!
//! ```text
//! cargo run --example cycle_determinism
//! ```

use lbp::kernels::matmul::{Matmul, Version};
use lbp::sim::{EventKind, Machine, Trace};

fn traced_run(mm: &Matmul) -> Result<(u64, Trace), Box<dyn std::error::Error>> {
    let image = mm.build();
    let mut machine = Machine::new(mm.config().with_trace(), &image)?;
    let layout = mm.layout();
    for i in 0..layout.n {
        for k in 0..layout.m {
            machine.poke_shared(layout.x(i, k), 1)?;
        }
    }
    for k in 0..layout.m {
        for j in 0..layout.n {
            machine.poke_shared(layout.y(k, j), 1)?;
        }
    }
    let report = machine.run(100_000_000)?;
    Ok((report.stats.cycles, machine.trace().clone()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mm = Matmul::new(16, Version::Tiled);
    println!("running the tiled matmul twice on a 4-core LBP, full tracing on...\n");
    let (cycles1, trace1) = traced_run(&mm)?;
    let (cycles2, trace2) = traced_run(&mm)?;

    println!("run 1: {cycles1} cycles, {} events", trace1.len());
    println!("run 2: {cycles2} cycles, {} events", trace2.len());
    assert_eq!(cycles1, cycles2);
    assert_eq!(trace1, trace2, "traces must be bit-identical");
    println!("traces are bit-identical.\n");

    println!("a few invariant statements, in the paper's style:");
    let mut shown = 0;
    for event in trace1.events() {
        if matches!(event.kind, EventKind::MemRead { .. }) {
            println!("  {}", event.describe());
            shown += 1;
            if shown == 3 {
                break;
            }
        }
    }
    for event in trace1.events().iter().rev() {
        if matches!(event.kind, EventKind::Exit) {
            println!("  {}", event.describe());
        }
    }
    println!("\nEvery statement above holds for any run of this program on this input.");
    Ok(())
}
