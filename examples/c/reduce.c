/* A tree-free reduction: members accumulate privately, a sequential tail
 * folds — the shape Deterministic OpenMP favors (ordered, race-free).
 * Run with:  cargo run --bin lbp-run -- examples/c/reduce.c --cores 2 --dump total:1
 */
#define NUM_HART 8
#define N 256
#include <det_omp.h>

int data[N];
int partial[NUM_HART];
int total[1];

void fill(int t) {
    int i;
    for (i = t * 32; i < t * 32 + 32; i++) data[i] = i % 10;
}

void sum_chunk(int t) {
    int i; int s;
    s = 0;
    for (i = t * 32; i < t * 32 + 32; i++) s += data[i];
    partial[t] = s;
}

void main(void) {
    int t; int s;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) fill(t);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) sum_chunk(t);
    s = 0;
    for (t = 0; t < NUM_HART; t++) s += partial[t];
    total[0] = s;
}
