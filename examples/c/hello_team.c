/* The paper's Fig. 1 shape: distribute a thread function over a team.
 * Run with:  cargo run --bin lbp-run -- examples/c/hello_team.c --cores 2 --dump v:8
 */
#define NUM_HART 8
#include <det_omp.h>

int v[NUM_HART];

void thread(int t) {
    v[t] = (t + 1) * (t + 1);
}

void main(void) {
    int t;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread(t);
}
