/* The paper's Fig. 4: a producing region, the hardware barrier, then a
 * consuming region. No locks, no flush, no cache protocol.
 * Run with:  cargo run --bin lbp-run -- examples/c/set_get.c --cores 4 --dump w:16
 */
#define NUM_HART 16
#define SIZE 64
#include <det_omp.h>

int v[SIZE];
int w[SIZE];

void thread_set(int t) {
    int i;
    for (i = t * 4; i < t * 4 + 4; i++) v[i] = i;
}

void thread_get(int t) {
    int i;
    for (i = t * 4; i < t * 4 + 4; i++) w[i] = v[i] * 3;
}

void main(void) {
    int t;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread_set(t);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread_get(t);
}
