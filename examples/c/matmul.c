/* The paper's Fig. 18 matrix multiplication (base version, h = 16).
 * Run with:  cargo run --bin lbp-run -- examples/c/matmul.c --cores 4 --dump Z:16
 */
#define NUM_HART 16
#define COLUMN_X 8
#define COLUMN_Y 16
#define COLUMN_Z 16
#include <det_omp.h>

int X[128] = {[0 ... 127] = 1};
int Y[128] = {[0 ... 127] = 1};
int Z[256];

void thread(int t) {
    int i; int j; int k; int l; int tmp;
    for (l = 0, i = t; l < 1; l++, i++) {
        for (j = 0; j < COLUMN_Z; j++) {
            tmp = 0;
            for (k = 0; k < COLUMN_X; k++) {
                tmp += X[i * COLUMN_X + k] * Y[k * COLUMN_Y + j];
            }
            Z[i * COLUMN_Z + j] = tmp;
        }
    }
}

void main(void) {
    int t;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread(t);
}
