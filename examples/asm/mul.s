# A clean single-hart program (6 * 7 = 42 in a2). Used as the baseline
# for fault-injection and lockstep smoke tests.
main:
    li   a0, 6
    li   a1, 7
    mul  a2, a0, a1
    li   t0, -1
    li   ra, 0
    p_ret
