# Forks one hart onto the next core with the paper's Fig. 8 protocol.
# Needs --cores 2. Dropping its first fabric message (drop-msg:0)
# deadlocks it; delaying the message only shifts timing.
main:
    li    t0, -1
    addi  sp, sp, -8
    sw    ra, 0(sp)
    sw    t0, 4(sp)
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la    a0, thread
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_set t0
    la    a0, thread
    jalr  a0
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    p_ret
rp:
    lw    ra, 0(sp)
    lw    t0, 4(sp)
    addi  sp, sp, 8
    li    t0, -1
    li    ra, 0
    p_ret
thread:
    p_ret
