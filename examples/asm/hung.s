# A protocol-violating program: p_lwre waits on a receive slot that
# no hart ever writes. On real LBP hardware this hangs silently; the
# simulator diagnoses it as a deadlock (exit code 5) within cycles.
main:
    p_lwre a0, 3
    li t0, -1
    li ra, 0
    p_ret
