//! The paper's §6 DMA pattern: one hart acts as a software DMA engine,
//! streaming a structured input from a device into shared memory chunk by
//! chunk, while compute harts wait on `p_lwre` for their chunk's ready
//! token — no interrupts, no polling by the consumers, and the
//! `p_syncm`-before-`p_swre` order makes each chunk globally visible
//! before its token arrives.
//!
//! The DMA engine runs as the *last* team member (like the paper's
//! Fig. 17 input controller on the last core) because the backward result
//! line only carries data toward sequentially earlier harts.
//!
//! ```text
//! cargo run --example dma
//! ```

use lbp::omp::DetOmp;
use lbp::sim::{InputDevice, LbpConfig, Machine};

const CHUNK: usize = 8;
const CONSUMERS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut program = DetOmp::new(CONSUMERS + 1)
        .data_space("buf", (CONSUMERS * CHUNK * 4) as u32)
        .data_space("sums", (CONSUMERS * 4) as u32);
    // Compute sections: wait for the chunk token, then sum the chunk.
    for c in 0..CONSUMERS {
        program = program.function(
            format!("consume{c}"),
            format!(
                "    p_lwre a2, 0              # block until my chunk is ready (token = 0)
    la   a3, buf
    addi a3, a3, {off}
    add  a3, a3, a2           # data-depend the loads on the token: the
                              # out-of-order engine cannot hoist them past
                              # the p_lwre (the paper's synchronization)
    li   a4, 0
    li   a5, {CHUNK}
cs{c}_loop:
    lw   a6, 0(a3)
    add  a4, a4, a6
    addi a3, a3, 4
    addi a5, a5, -1
    bnez a5, cs{c}_loop
    la   a3, sums
    sw   a4, {soff}(a3)
    p_ret",
                off = c * CHUNK * 4,
                soff = c * 4,
            ),
        );
    }
    // The DMA engine: read device values, store a chunk, fence, token.
    let input_addr = lbp::sim::IoBus::input_addr(0);
    let mut dma = format!(
        "    li   a2, {input_addr}
    la   a3, buf
"
    );
    for c in 0..CONSUMERS {
        dma.push_str(&format!(
            "    li   a4, {CHUNK}
dma{c}_chunk:
dma{c}_poll:
    lw   a5, 0(a2)
    bgez a5, dma{c}_poll       # bit 31 set when a value arrives
    slli a5, a5, 1
    srli a5, a5, 1
    sw   a5, 0(a3)
    addi a3, a3, 4
    addi a4, a4, -1
    bnez a4, dma{c}_chunk
    p_syncm                    # chunk globally visible...
    li   a6, {target}
    li   a7, 0
    p_swre a7, a6, 0           # ...then its zero token travels backward
",
            target = (c as u32) << 16,
        ));
    }
    dma.push_str("    p_ret");
    program = program.function("dma_engine", dma);

    let sections: Vec<String> = (0..CONSUMERS)
        .map(|c| format!("consume{c}"))
        .chain(std::iter::once("dma_engine".to_owned()))
        .collect();
    let names: Vec<&str> = sections.iter().map(String::as_str).collect();
    let program = program.parallel_sections(&names);

    let image = program.build()?;
    let mut machine = Machine::new(LbpConfig::cores(1), &image)?;
    // The device delivers 24 values (i*3) with irregular timing.
    let schedule: Vec<(u64, u32)> = (0..(CONSUMERS * CHUNK) as u64)
        .map(|i| (50 + i * 37 + (i % 5) * 5, (i * 3) as u32))
        .collect();
    machine.io_mut().add_input(InputDevice::scripted(schedule));
    let report = machine.run(10_000_000)?;

    println!(
        "software-DMA streamed {} values into 3 chunks;",
        CONSUMERS * CHUNK
    );
    println!("each consumer summed its chunk the moment its token arrived:\n");
    let sums = image.symbol("sums").unwrap();
    for c in 0..CONSUMERS as u32 {
        let got = machine.peek_shared(sums + 4 * c)?;
        let want: u32 = (c * CHUNK as u32..(c + 1) * CHUNK as u32)
            .map(|i| i * 3)
            .sum();
        println!("  chunk {c}: sum = {got} (expected {want})");
        assert_eq!(got, want);
    }
    println!(
        "\ncycles: {}, retired: {}",
        report.stats.cycles,
        report.stats.retired()
    );
    println!("No interrupts were taken — LBP has none to take.");
    Ok(())
}
