//! The paper's §7 experiment from the command line: one matrix
//! multiplication version at one machine size.
//!
//! ```text
//! cargo run --release --example matmul_paper -- tiled 64
//! cargo run --release --example matmul_paper -- base 16
//! ```
//!
//! Sizes are hart counts (16 → 4-core LBP of Fig. 19, 64 → Fig. 20,
//! 256 → Fig. 21). Use `cargo run -p lbp-bench --release --bin figures`
//! to regenerate the full figures.

use lbp::kernels::matmul::{Matmul, Version};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let version = match args.first().map(String::as_str) {
        Some("base") | None => Version::Base,
        Some("copy") => Version::Copy,
        Some("distributed") => Version::Distributed,
        Some("d+c") => Version::DistributedCopy,
        Some("tiled") => Version::Tiled,
        Some(other) => {
            eprintln!("unknown version `{other}` (base|copy|distributed|d+c|tiled)");
            std::process::exit(2);
        }
    };
    let harts: usize = args.get(1).map_or(Ok(16), |s| s.parse())?;

    let mm = Matmul::new(harts, version);
    println!(
        "multiplying X({h} x {m}) by Y({m} x {h}) with {h} harts on {c} cores, version `{v}`...",
        h = harts,
        m = harts / 2,
        c = mm.cores(),
        v = version.name(),
    );
    let mut machine = mm.machine()?;
    let report = machine.run(1_000_000_000)?;
    let ok = mm.verify(&mut machine)?;
    println!(
        "result check:        {}",
        if ok { "Z == h/2 everywhere" } else { "WRONG" }
    );
    println!("cycles:              {}", report.stats.cycles);
    println!(
        "IPC:                 {:.2} / {} peak",
        report.stats.ipc(),
        mm.cores()
    );
    println!("retired:             {}", report.stats.retired());
    println!("local access ratio:  {:.2}", report.stats.locality());
    println!("router + link hops:  {}", report.stats.link_hops);
    if !ok {
        std::process::exit(1);
    }
    Ok(())
}
