//! Quickstart: the paper's Fig. 1 — a Deterministic OpenMP `parallel
//! for` distributing a thread function over a team of eight harts.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lbp::omp::DetOmp;
use lbp::sim::{LbpConfig, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A team of 8 harts; each member writes (index+1)² into its slot.
    let program = DetOmp::new(8)
        .data_space("v", 8 * 4)
        .function(
            "thread",
            "addi a2, a0, 1
             mul  a2, a2, a2
             la   a3, v
             slli a4, a0, 2
             add  a3, a3, a4
             sw   a2, 0(a3)
             p_ret",
        )
        .parallel_for("thread");

    // The runtime generates ordinary PISC assembly — inspect it:
    println!("--- generated program (excerpt) ---");
    for line in program.source().lines().take(20) {
        println!("{line}");
    }
    println!("    ...\n");

    // Assemble and run on a 2-core (8-hart) LBP.
    let image = program.build()?;
    let mut machine = Machine::new(LbpConfig::cores(2), &image)?;
    let report = machine.run(1_000_000)?;

    println!("--- results ---");
    let v = image.symbol("v").expect("v is declared");
    for t in 0..8 {
        println!("v[{t}] = {}", machine.peek_shared(v + 4 * t)?);
    }
    println!("\n--- run statistics ---");
    println!("cycles:   {}", report.stats.cycles);
    println!("retired:  {}", report.stats.retired());
    println!("IPC:      {:.2} (peak 2.0 on 2 cores)", report.stats.ipc());
    println!("forks:    {}", report.stats.forks);
    println!("\nRun it again — every number above is cycle-deterministic.");
    Ok(())
}
